"""Ablation — all-or-nothing vs partial admission in Appro-G.

The paper's Algorithm 2 literally accumulates per-(query, dataset) volume;
its evaluation reports query throughput, implying all-or-nothing
admission.  We ship both semantics (DESIGN.md §3.2); this bench quantifies
the gap: partial admission serves strictly more volume (it keeps servable
pairs of otherwise-rejected queries) while all-or-nothing reflects the
user-visible contract.
"""

from __future__ import annotations

import statistics

from conftest import emit

from repro.core import ApproG, evaluate_solution, verify_solution
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults


def _run(repeats: int, *, partial: bool) -> tuple[float, float]:
    volumes, throughputs = [], []
    for repeat in range(repeats):
        instance = make_instance(TwoTierConfig(), PaperDefaults(), 2019, repeat)
        solution = ApproG(partial_admission=partial).solve(instance)
        verify_solution(instance, solution, all_or_nothing=not partial)
        m = evaluate_solution(instance, solution)
        volumes.append(m.admitted_volume_gb)
        throughputs.append(m.throughput)
    return statistics.fmean(volumes), statistics.fmean(throughputs)


def test_admission_semantics_ablation(benchmark, repeats, results_dir):
    def run_both():
        return _run(repeats, partial=False), _run(repeats, partial=True)

    (aon_v, aon_t), (part_v, part_t) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    table = (
        "=== ablation: Appro-G admission semantics ===\n"
        f"all-or-nothing: volume={aon_v:8.1f} GB  throughput={aon_t:.3f}\n"
        f"partial       : volume={part_v:8.1f} GB  throughput={part_t:.3f}\n"
        f"partial volume uplift: {part_v / aon_v:.2f}x"
    )
    emit(results_dir, "ablation_admission", table)
    # In the mean, partial admission serves more volume and more queries
    # (per-instance dominance does not hold: kept partial pairs can crowd
    # out later full admissions).
    assert part_v >= aon_v * 0.95
    assert part_t >= aon_t
