"""Ablation — does the multiplicative capacity price matter?

DESIGN.md calls out the dynamic price update (``θ_l`` rising with node
utilisation) as the mechanism that keeps low-value queries from crowding
scarce cloudlets.  This bench runs Appro-G with pricing on vs frozen
(``capacity_pricing=False``) on identical instances.
"""

from __future__ import annotations

import statistics

from conftest import emit

from repro.core import ApproG, PrimalDualConfig, evaluate_solution, verify_solution
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults


def _run(repeats: int, *, capacity_pricing: bool) -> tuple[float, float]:
    config = PrimalDualConfig(capacity_pricing=capacity_pricing)
    volumes, throughputs = [], []
    for repeat in range(repeats):
        instance = make_instance(TwoTierConfig(), PaperDefaults(), 2019, repeat)
        solution = ApproG(config).solve(instance)
        verify_solution(instance, solution)
        m = evaluate_solution(instance, solution)
        volumes.append(m.admitted_volume_gb)
        throughputs.append(m.throughput)
    return statistics.fmean(volumes), statistics.fmean(throughputs)


def test_capacity_pricing_ablation(benchmark, repeats, results_dir):
    def run_both():
        return _run(repeats, capacity_pricing=True), _run(
            repeats, capacity_pricing=False
        )

    (on_v, on_t), (off_v, off_t) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    table = (
        "=== ablation: multiplicative capacity pricing (Appro-G) ===\n"
        f"pricing on : volume={on_v:8.1f} GB  throughput={on_t:.3f}\n"
        f"pricing off: volume={off_v:8.1f} GB  throughput={off_t:.3f}\n"
        f"volume uplift: {on_v / off_v:.2f}x"
    )
    emit(results_dir, "ablation_pricing", table)
    # Pricing must never hurt materially; it usually helps.
    assert on_v >= 0.95 * off_v
