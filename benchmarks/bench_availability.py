"""Extension bench — availability under node failures vs K.

The paper motivates replication with availability ("highly available,
reliable and scalable"); this bench quantifies it: fail the most-loaded
placement nodes, repair by failing over to surviving replicas, and report
the served-volume retention per replica bound K.
"""

from __future__ import annotations

import statistics

from conftest import emit

from repro.core import make_algorithm, verify_solution
from repro.core.repair import fail_nodes, repair_placement
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

K_VALUES = (1, 2, 3, 5, 7)
FAILURES = 2  # most-loaded nodes knocked out per trial


def _loaded_nodes(solution, n):
    load: dict[int, float] = {}
    for a in solution.assignments.values():
        load[a.node] = load.get(a.node, 0.0) + a.compute_ghz
    return sorted(load, key=load.get, reverse=True)[:n]


def test_availability_vs_k(benchmark, repeats, results_dir):
    def measure():
        rows = []
        for k in K_VALUES:
            params = PaperDefaults().with_max_replicas(k)
            values, recovered, dropped = [], 0, 0
            for repeat in range(repeats):
                instance = make_instance(TwoTierConfig(), params, 61, repeat)
                solution = make_algorithm("appro-g").solve(instance)
                if not solution.assignments:
                    continue
                impact = fail_nodes(
                    instance, solution, _loaded_nodes(solution, FAILURES)
                )
                report = repair_placement(instance, solution, impact)
                verify_solution(instance, report.solution)
                values.append(report.availability)
                recovered += len(report.recovered_queries)
                dropped += len(report.dropped_queries)
            rows.append(
                (k, statistics.fmean(values) if values else 1.0, recovered, dropped)
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"=== availability after failing the {FAILURES} most-loaded nodes ===",
        " K | volume retention | queries recovered | dropped",
    ]
    for k, avail, rec, drop in rows:
        lines.append(f"{k:2d} | {avail:16.3f} | {rec:17d} | {drop:7d}")
    emit(results_dir, "availability", "\n".join(lines))

    retention = {k: a for k, a, _, _ in rows}
    # Generous replication retains at least as much volume as K = 1.
    assert retention[7] >= retention[1]
    assert all(0.0 <= a <= 1.0 + 1e-9 for a in retention.values())
