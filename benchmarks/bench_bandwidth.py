"""Extension bench — link budgets vs contention-mode deadline misses.

The analytic model admits against node compute only; the contention-aware
event simulator then reveals transfer queueing on shared links.  This
bench sweeps the per-link traffic budget of ``appro-bw-g`` and reports
the admission-vs-violations trade against plain ``appro-g``.
"""

from __future__ import annotations

import statistics

import pytest
from conftest import emit

from repro.core import BandwidthApproG, evaluate_solution, make_algorithm, verify_solution
from repro.experiments.runner import make_instance
from repro.sim import ExecutionConfig, execute_placement
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

BUDGETS = (3.0, 5.0, 10.0, 1e9)


def test_bandwidth_tradeoff(benchmark, repeats, results_dir):
    def measure():
        rows = []
        cfg = ExecutionConfig(contention=True)
        plain_v, plain_x = [], []
        for repeat in range(repeats):
            inst = make_instance(TwoTierConfig(), PaperDefaults(), 81, repeat)
            sol = make_algorithm("appro-g").solve(inst)
            plain_v.append(evaluate_solution(inst, sol).admitted_volume_gb)
            plain_x.append(execute_placement(inst, sol, cfg).deadline_violations)
        rows.append(("plain", statistics.fmean(plain_v), statistics.fmean(plain_x)))
        for budget in BUDGETS:
            vols, viols = [], []
            for repeat in range(repeats):
                inst = make_instance(TwoTierConfig(), PaperDefaults(), 81, repeat)
                sol = BandwidthApproG(link_budget_gb=budget).solve(inst)
                verify_solution(inst, sol)
                vols.append(evaluate_solution(inst, sol).admitted_volume_gb)
                viols.append(
                    execute_placement(inst, sol, cfg).deadline_violations
                )
            rows.append(
                (f"bw={budget:g}", statistics.fmean(vols), statistics.fmean(viols))
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "=== link-budget admission vs contention-mode deadline misses ===",
        "variant    | admitted GB | violations (contention execution)",
    ]
    for name, vol, viol in rows:
        lines.append(f"{name:10s} | {vol:11.1f} | {viol:10.2f}")
    emit(results_dir, "bandwidth", "\n".join(lines))

    by_name = {name: (vol, viol) for name, vol, viol in rows}
    # The tightest budget must not miss more deadlines than plain admission.
    assert by_name[f"bw={BUDGETS[0]:g}"][1] <= by_name["plain"][1]
    # An unbounded budget reproduces plain admission.
    assert by_name["bw=1e+09"][0] == pytest.approx(by_name["plain"][0])
