"""Consistency-maintenance cost vs the §2.4 update threshold and K.

The paper's motivation for bounding replicas: "maintenance of data
consistency between the original dataset and its slave replicas does incur
cost".  This bench quantifies that cost for Appro-G placements across
thresholds and replica bounds: more replicas mean more admitted volume but
strictly more sync traffic — the trade-off K controls.
"""

from __future__ import annotations

from conftest import emit

from repro.cluster.consistency import ConsistencyModel
from repro.core import ApproG, evaluate_solution
from repro.sim.consistency_sim import ConsistencySimConfig, simulate_consistency
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

THRESHOLDS = (0.05, 0.1, 0.2, 0.5)
K_VALUES = (1, 3, 5, 7)


def test_consistency_cost(benchmark, repeats, results_dir):
    def measure():
        table = {}
        for k in K_VALUES:
            params = PaperDefaults().with_max_replicas(k)
            vol = 0.0
            shipped = {t: 0.0 for t in THRESHOLDS}
            syncs = {t: 0.0 for t in THRESHOLDS}
            staleness = {t: 0.0 for t in THRESHOLDS}
            for repeat in range(repeats):
                instance = make_instance(TwoTierConfig(), params, 11, repeat)
                solution = ApproG().solve(instance)
                vol += evaluate_solution(instance, solution).admitted_volume_gb
                for t in THRESHOLDS:
                    model = ConsistencyModel(threshold=t)
                    report = model.report(
                        instance, solution.replicas, horizon_days=30.0
                    )
                    shipped[t] += report.shipped_gb
                    syncs[t] += report.syncs
                    # Event-level replay adds the staleness measurement the
                    # analytic model cannot produce.
                    sim = simulate_consistency(
                        instance,
                        solution.replicas,
                        ConsistencySimConfig(model=model),
                    )
                    staleness[t] += sim.mean_staleness_gb
            table[k] = (
                vol / repeats,
                {t: s / repeats for t, s in shipped.items()},
                {t: s / repeats for t, s in syncs.items()},
                {t: s / repeats for t, s in staleness.items()},
            )
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "=== consistency maintenance cost (30-day horizon, Appro-G) ===",
        " K | admitted GB | sync ops at threshold "
        + " ".join(f"t={t}" for t in THRESHOLDS)
        + " | GB shipped at "
        + " ".join(f"t={t}" for t in THRESHOLDS),
    ]
    lines[1] += " | mean staleness GB at " + " ".join(f"t={t}" for t in THRESHOLDS)
    for k, (vol, shipped, syncs, staleness) in table.items():
        lines.append(
            f"{k:2d} | {vol:11.1f} | "
            + " ".join(f"{syncs[t]:8.1f}" for t in THRESHOLDS)
            + " | "
            + " ".join(f"{shipped[t]:8.1f}" for t in THRESHOLDS)
            + " | "
            + " ".join(f"{staleness[t]:6.3f}" for t in THRESHOLDS)
        )
    emit(results_dir, "consistency", "\n".join(lines))

    # The threshold trades sync *frequency* against staleness: loosening
    # it strictly reduces update operations while measured staleness grows
    # (total shipped volume stays roughly constant).
    for _, _, syncs, staleness in table.values():
        sync_vals = [syncs[t] for t in THRESHOLDS]
        assert all(a >= b for a, b in zip(sync_vals, sync_vals[1:]))
        stale_vals = [staleness[t] for t in THRESHOLDS]
        if stale_vals[0] > 0:
            assert stale_vals[-1] > stale_vals[0]
    # More replicas ⇒ at least as much admitted volume AND more sync traffic.
    vols = [table[k][0] for k in K_VALUES]
    assert vols[-1] > vols[0]
    ship01 = [table[k][1][0.1] for k in K_VALUES]
    assert ship01[-1] > ship01[0]
