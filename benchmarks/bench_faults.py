"""Extension bench — dynamic availability under fault injection vs K.

`bench_availability.py` tests the paper's availability claim statically
(fail a finished placement once, repair once).  This bench tests it
*dynamically*: seeded node crash/recover events land while the online
session is serving arrivals, running queries fail over to surviving
replicas, and the replication premium shows up as recovered-vs-interrupted
queries and degraded-admission throughput per (failure rate × K) cell.

Writes the rendered table to ``results/faults.txt`` and the raw sweep to
``results/faults.json`` (uploaded as a CI artifact by the fault-injection
smoke job).
"""

from __future__ import annotations

import json
import statistics

from conftest import emit

from repro.core import OnlineConfig, OnlineSession, appro_rule
from repro.experiments.runner import make_instance
from repro.sim.faults import FaultConfig
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

MTTF_VALUES = (1.0, 4.0)  # mean seconds between node crashes
K_VALUES = (1, 3, 5)
HOLD_FACTOR = 20.0  # long holds so crashes land on running queries
MEAN_DOWNTIME_S = 1.0


def _run_cell(mttf: float, k: int, repeats: int) -> dict:
    avail, volumes, recovered, interrupted, mttr = [], [], 0, 0, []
    attempted = succeeded = 0
    for repeat in range(repeats):
        instance = make_instance(
            TwoTierConfig(), PaperDefaults().with_max_replicas(k), 71, repeat
        )
        config = OnlineConfig(
            hold_factor=HOLD_FACTOR,
            seed=repeat,
            faults=FaultConfig(
                mean_time_to_failure_s=mttf,
                mean_downtime_s=MEAN_DOWNTIME_S,
                seed=repeat,
            ),
        )
        report = OnlineSession(config).run(instance, appro_rule)
        faults = report.faults
        avail.append(faults.time_weighted_availability)
        volumes.append(report.admitted_volume_gb)
        recovered += faults.queries_recovered
        interrupted += faults.queries_interrupted
        attempted += faults.failovers_attempted
        succeeded += faults.failovers_succeeded
        if faults.failovers_succeeded:
            mttr.append(faults.mttr_s)
    return {
        "mttf_s": mttf,
        "k": k,
        "availability": statistics.fmean(avail),
        "admitted_volume_gb": statistics.fmean(volumes),
        "queries_recovered": recovered,
        "queries_interrupted": interrupted,
        "failovers_attempted": attempted,
        "failovers_succeeded": succeeded,
        "mttr_s": statistics.fmean(mttr) if mttr else 0.0,
    }


def test_faults_vs_k(benchmark, repeats, results_dir):
    def measure():
        return [
            _run_cell(mttf, k, repeats)
            for mttf in MTTF_VALUES
            for k in K_VALUES
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        "=== fault injection: failure rate x K (online session, appro rule) ===",
        "mttf (s) | K | node avail | recovered | interrupted | failover ok | mttr (ms)",
    ]
    for r in rows:
        lines.append(
            f"{r['mttf_s']:8.1f} | {r['k']:1d} | {r['availability']:10.3f} "
            f"| {r['queries_recovered']:9d} | {r['queries_interrupted']:11d} "
            f"| {r['failovers_succeeded']:4d}/{r['failovers_attempted']:<6d} "
            f"| {r['mttr_s'] * 1000:9.2f}"
        )
    emit(results_dir, "faults", "\n".join(lines))
    (results_dir / "faults.json").write_text(json.dumps(rows, indent=2) + "\n")

    by_cell = {(r["mttf_s"], r["k"]): r for r in rows}
    for r in rows:
        assert 0.0 <= r["availability"] <= 1.0 + 1e-9
        assert r["failovers_succeeded"] <= r["failovers_attempted"]
    for mttf in MTTF_VALUES:
        # The replication premium, dynamically: generous K recovers at
        # least as many crashed queries as K = 1 (where a pair whose only
        # copy died has nowhere to fail over until the node returns).
        assert (
            by_cell[(mttf, K_VALUES[-1])]["queries_recovered"]
            >= by_cell[(mttf, 1)]["queries_recovered"]
        )
