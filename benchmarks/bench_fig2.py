"""Fig. 2 — special case vs network size (Appro-S / Greedy-S / Graph-S).

Regenerates both panels: (a) admitted volume, (b) system throughput.
Expected shape (paper §4.2): Appro-S well above Greedy-S (≈4× volume in
the paper) and above Graph-S, with a slight dip at the largest network
size as longer paths start violating deadlines.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figure2, render_figure


def test_figure2(benchmark, experiment_config, results_dir):
    series = benchmark.pedantic(
        figure2, args=(experiment_config,), rounds=1, iterations=1
    )
    emit(results_dir, "fig2", render_figure(series))

    appro_v = series.volume["appro-s"]
    greedy_v = series.volume["greedy-s"]
    appro_t = series.throughput["appro-s"]
    greedy_t = series.throughput["greedy-s"]
    # Appro dominates Greedy at every network size, on both metrics.
    assert all(a > g for a, g in zip(appro_v, greedy_v))
    assert all(a > g for a, g in zip(appro_t, greedy_t))
    # Appro is at least competitive with Graph everywhere.
    assert all(
        a >= 0.9 * g for a, g in zip(appro_v, series.volume["graph-s"])
    )
