"""Fig. 3 — general case vs network size (Appro-G / Greedy-G / Graph-G).

Expected shape (paper §4.2): Appro-G above both baselines on volume (≈5×
Greedy-G, ≈1.7× Graph-G in the paper) and throughput (≈2.1× / ≈1.5×).
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figure3, render_figure


def test_figure3(benchmark, experiment_config, results_dir):
    series = benchmark.pedantic(
        figure3, args=(experiment_config,), rounds=1, iterations=1
    )
    emit(results_dir, "fig3", render_figure(series))

    for metric in (series.volume, series.throughput):
        appro = metric["appro-g"]
        assert all(a > g for a, g in zip(appro, metric["greedy-g"]))
        assert all(a >= 0.9 * g for a, g in zip(appro, metric["graph-g"]))
    # The paper's greedy gap is large: check a clear multiple on volume.
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(series.volume["appro-g"]) > 1.5 * mean(series.volume["greedy-g"])
