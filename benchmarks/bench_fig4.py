"""Fig. 4 — impact of F, the max datasets demanded per query (general case).

Expected shape (paper §4.2): throughput decreases monotonically in F for
every algorithm (all-or-nothing admission gets harder); admitted volume
grows with F and flattens or dips near F = 5–6.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figure4, render_figure


def test_figure4(benchmark, experiment_config, results_dir):
    series = benchmark.pedantic(
        figure4, args=(experiment_config,), rounds=1, iterations=1
    )
    emit(results_dir, "fig4", render_figure(series))

    for alg in series.algorithms:
        t = series.throughput[alg]
        # Broad monotone decrease: endpoints drop and no large up-jumps.
        assert t[0] > t[-1]
        assert all(t[i + 1] <= t[i] * 1.15 for i in range(len(t) - 1))
    # Volume grows from F=1 toward the F≈5 region for the proposed algorithm.
    v = series.volume["appro-g"]
    assert max(v[3:]) > v[0]
    # Appro dominates Greedy everywhere.
    assert all(
        a > g
        for a, g in zip(series.volume["appro-g"], series.volume["greedy-g"])
    )
