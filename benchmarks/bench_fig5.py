"""Fig. 5 — impact of K, the max replicas per dataset (general case).

Expected shape (paper §4.2): both admitted volume and throughput increase
with K for every algorithm (more replicas make deadlines easier to meet),
with Appro-G significantly above Greedy-G and Graph-G throughout.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import figure5, render_figure


def test_figure5(benchmark, experiment_config, results_dir):
    series = benchmark.pedantic(
        figure5, args=(experiment_config,), rounds=1, iterations=1
    )
    emit(results_dir, "fig5", render_figure(series))

    for alg in series.algorithms:
        v = series.volume[alg]
        t = series.throughput[alg]
        # Clear growth from K=1 to K=7, allowing small local noise.
        assert v[-1] > v[0]
        assert t[-1] > t[0]
        assert all(v[i + 1] >= v[i] * 0.9 for i in range(len(v) - 1))
    assert all(
        a >= g
        for a, g in zip(series.volume["appro-g"], series.volume["greedy-g"])
    )
