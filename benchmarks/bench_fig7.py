"""Fig. 7 — geo testbed, impact of F (Appro vs Popularity).

Runs the full §4.3 pipeline per point: synthetic usage trace → time-window
datasets → analytics queries → placement → contention-aware event
execution → replica-vs-origin result check.

Expected shape (paper §4.3): Appro above Popularity on both metrics;
volume grows with F; throughput decreases with F.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import ExperimentConfig, figure7, render_figure


def test_figure7(benchmark, repeats, results_dir):
    config = ExperimentConfig(repeats=min(repeats, 5))
    series = benchmark.pedantic(
        figure7, args=(config,), rounds=1, iterations=1
    )
    emit(results_dir, "fig7", render_figure(series))

    appro_v = series.volume["appro-g"]
    pop_v = series.volume["popularity-g"]
    appro_t = series.throughput["appro-g"]
    pop_t = series.throughput["popularity-g"]
    mean = lambda xs: sum(xs) / len(xs)
    # Appro dominates on average; per point allow single-seed noise.
    assert mean(appro_v) > mean(pop_v)
    assert mean(appro_t) > mean(pop_t)
    assert all(a >= 0.85 * p for a, p in zip(appro_v, pop_v))
    assert all(a >= 0.85 * p for a, p in zip(appro_t, pop_t))
    # Volume grows with F; throughput shrinks with F.
    assert max(appro_v[3:]) > appro_v[0]
    assert appro_t[-1] < appro_t[0]
