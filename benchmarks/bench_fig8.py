"""Fig. 8 — geo testbed, impact of K (Appro-G vs Popularity-G).

Expected shape (paper §4.3): both metrics increase with K and Appro-G
stays above Popularity-G throughout.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import ExperimentConfig, figure8, render_figure


def test_figure8(benchmark, repeats, results_dir):
    config = ExperimentConfig(repeats=min(repeats, 5))
    series = benchmark.pedantic(
        figure8, args=(config,), rounds=1, iterations=1
    )
    emit(results_dir, "fig8", render_figure(series))

    appro_v = series.volume["appro-g"]
    pop_v = series.volume["popularity-g"]
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(appro_v) > mean(pop_v)
    assert mean(series.throughput["appro-g"]) > mean(
        series.throughput["popularity-g"]
    )
    assert all(a >= 0.85 * p for a, p in zip(appro_v, pop_v))
    # More replicas help: clear growth from K=1 to K=7.
    assert appro_v[-1] > appro_v[0]
    assert series.throughput["appro-g"][-1] > series.throughput["appro-g"][0]
