"""Micro-benchmarks of the hot paths (performance regression tracking).

These measure the components the profiling pass identified as dominant:
path-cache construction, vectorised candidate enumeration, the primal-dual
pair step, coverage precomputation and LP model building.  Unlike the
figure benches these use pytest-benchmark's statistics directly.
"""

from __future__ import annotations

import pytest

from repro.cluster.state import ClusterState
from repro.core.feasibility import candidate_nodes, candidate_set
from repro.core.graph_partition import partition_placement_nodes
from repro.core.ilp import build_lp_model
from repro.core.primal_dual import PrimalDualConfig, _Kernel
from repro.experiments.runner import make_instance
from repro.network.paths import PathCache
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults


@pytest.fixture(scope="module")
def instance():
    inst = make_instance(
        TwoTierConfig(), PaperDefaults().with_num_queries(80), 99, 0
    )
    inst.paths  # warm the cache for the non-path benches
    inst.home_delay_vectors
    return inst


def test_path_cache_build(benchmark, instance):
    benchmark(lambda: PathCache(instance.topology))


def test_candidate_enumeration(benchmark, instance):
    state = ClusterState(instance)
    query = instance.queries[0]
    dataset = instance.dataset(query.demanded[0])
    benchmark(lambda: candidate_nodes(state, query, dataset))


def test_candidate_set_vectorized(benchmark, instance):
    state = ClusterState(instance)
    query = instance.queries[0]
    dataset = instance.dataset(query.demanded[0])
    benchmark(lambda: candidate_set(state, query, dataset))


def test_cost_vector(benchmark, instance):
    kernel = _Kernel(PrimalDualConfig(), instance)
    state = ClusterState(instance)
    query = instance.queries[0]
    dataset = instance.dataset(query.demanded[0])
    cs = candidate_set(state, query, dataset)

    benchmark(
        lambda: kernel.cost_vector(state, query, cs, dataset.dataset_id)
    )


def test_graph_partition_fast(benchmark, instance):
    benchmark(lambda: partition_placement_nodes(instance, 4, 0))


def test_coverage_precompute(benchmark, instance):
    benchmark(lambda: _Kernel(PrimalDualConfig(), instance))


def test_place_pair_step(benchmark, instance):
    kernel = _Kernel(PrimalDualConfig(), instance)
    query = instance.queries[0]

    def step():
        state = ClusterState(instance)
        return kernel.place_pair(state, query, query.demanded[0])

    benchmark(step)


def test_lp_model_build(benchmark, instance):
    benchmark(lambda: build_lp_model(instance))
