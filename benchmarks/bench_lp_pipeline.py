"""LP/ILP pipeline micro-benchmarks: model build, shared-model solve, B&B.

Trajectory benches for the vectorised pipeline (see
``docs/performance.md`` and ``benchmarks/results/perf_lp_pipeline.json``
for point-in-time numbers).  Parity assertions ride along — they are
noise-free and catch drift between the vector path and the scalar
reference even on shared runners.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ilp import (
    build_lp_model,
    build_lp_model_scalar,
    solve_ilp,
    solve_lp_from_model,
)
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

GAP_TOPOLOGY = TwoTierConfig(
    num_data_centers=2, num_cloudlets=8, num_switches=2, num_base_stations=3
)
GAP_PARAMS = (
    PaperDefaults()
    .with_num_queries(12)
    .with_num_datasets(5)
    .with_max_datasets_per_query(2)
)


@pytest.fixture(scope="module")
def fig3_instance():
    return make_instance(TwoTierConfig().scaled_to(200), PaperDefaults(), 23, 0)


def test_model_build_vector(benchmark, fig3_instance):
    model = benchmark(lambda: build_lp_model(fig3_instance))
    reference = build_lp_model_scalar(fig3_instance)
    assert model.triples == reference.triples
    assert model.placements == reference.placements
    assert np.array_equal(model.costs, reference.costs)
    assert np.array_equal(model.bounds, reference.bounds)


def test_model_build_scalar_reference(benchmark, fig3_instance):
    benchmark(lambda: build_lp_model_scalar(fig3_instance))


def test_shared_model_relaxation(benchmark, fig3_instance):
    # Build once, solve from the shared model (the LpRoundingG prologue).
    lp = benchmark.pedantic(
        lambda: solve_lp_from_model(build_lp_model(fig3_instance)),
        rounds=1,
        iterations=1,
    )
    assert lp.objective > 0.0


def test_warm_branch_and_bound(benchmark):
    # Relaxation + exact B&B sharing one model; children hot-start in
    # HiGHS, so thousands of nodes cost seconds, not minutes.
    def pipeline():
        total_nodes = 0
        for repeat in range(3):
            instance = make_instance(GAP_TOPOLOGY, GAP_PARAMS, 7, repeat)
            model = build_lp_model(instance)
            root = solve_lp_from_model(model)
            result = solve_ilp(instance, model=model, root=root)
            assert result.objective <= root.objective + 1e-9
            total_nodes += result.nodes_explored
        return total_nodes

    nodes = benchmark.pedantic(pipeline, rounds=1, iterations=1)
    assert nodes >= 3
