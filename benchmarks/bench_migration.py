"""Extension bench — replica migration strategies under workload drift.

Plans four epochs of drifting queries over a fixed topology + dataset
collection and compares the three strategies: ``carry`` (adapt + GC),
``fresh`` (replan from scratch) and ``frozen`` (epoch-0 placement
forever).  The interesting trade is served volume vs migration traffic.
"""

from __future__ import annotations

from conftest import emit

from repro.core import MigrationPlanner
from repro.core.instance import ProblemInstance
from repro.topology.twotier import generate_two_tier
from repro.util.rng import derive_seed, spawn_rng
from repro.workload.datasets import generate_datasets
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_queries

EPOCHS = 4
STRATEGIES = ("carry", "fresh", "frozen")


def _epoch_sequence(seed: int) -> list[ProblemInstance]:
    topology = generate_two_tier(seed=seed)
    params = PaperDefaults()
    datasets = generate_datasets(
        topology, spawn_rng(seed, "ds"), params, count=12
    )
    return [
        ProblemInstance(
            topology=topology,
            datasets=datasets,
            queries=generate_queries(
                topology, datasets, spawn_rng(seed, f"q{e}"), params, count=60
            ),
            max_replicas=3,
        )
        for e in range(EPOCHS)
    ]


def test_migration_strategies(benchmark, repeats, results_dir):
    def measure():
        table = {s: [0.0, 0.0] for s in STRATEGIES}  # volume, traffic
        for repeat in range(repeats):
            epochs = _epoch_sequence(derive_seed(71, f"mig/{repeat}"))
            for s in STRATEGIES:
                reports = MigrationPlanner(s).run(epochs)
                table[s][0] += sum(r.admitted_volume_gb for r in reports) / repeats
                table[s][1] += sum(r.migration_gb for r in reports[1:]) / repeats
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"=== migration strategies over {EPOCHS} drifting epochs ===",
        "strategy | served GB (all epochs) | steady-state migration GB",
    ]
    for s in STRATEGIES:
        vol, traffic = table[s]
        lines.append(f"{s:8s} | {vol:22.1f} | {traffic:26.1f}")
    emit(results_dir, "migration", "\n".join(lines))

    # carry adapts (≥ frozen volume) at a fraction of fresh's traffic.
    assert table["carry"][0] >= table["frozen"][0]
    assert table["carry"][1] < table["fresh"][1]
    # fresh is the volume ceiling per epoch; carry should be close.
    assert table["carry"][0] >= 0.85 * table["fresh"][0]
