"""Extension bench — serving under link dynamics: failure rate x inflation.

`bench_faults.py` churns *nodes*; this bench churns the *network*.
Seeded link degrade/sever/restore events (with correlated partitions)
land while the online session is serving arrivals: every event recomputes
the path cache, inflight queries whose serving path was cut fail over to
reachable replicas or are interrupted, and survivors are re-priced
against the inflated delays.  The sweep crosses link failure rate
(mean time between link events) with the degrade inflation factor and
reports link availability, served volume, the rerouted / recovered /
interrupted split, and the p99 path-recompute latency — the cost of a
mobility-scale network epoch.

Writes the rendered table to ``results/netfault.txt`` and the raw sweep
to ``results/netfault.json`` (uploaded as a CI artifact by the
net-dynamics job).

Reduced-scale knobs for CI: ``REPRO_BENCH_REPEATS`` (repeats per cell),
``REPRO_NETFAULT_MTTF`` / ``REPRO_NETFAULT_INFLATION`` (comma-separated
sweep overrides).
"""

from __future__ import annotations

import json
import os
import statistics

from conftest import emit

from repro.core import OnlineConfig, OnlineSession, appro_rule
from repro.experiments.runner import make_instance
from repro.network.dynamics import LinkFaultConfig
from repro.obs import MetricsRegistry, use_registry
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults


def _sweep(env: str, default: tuple[float, ...]) -> tuple[float, ...]:
    raw = os.environ.get(env)
    if not raw:
        return default
    return tuple(float(tok) for tok in raw.split(",") if tok.strip())


MTTF_VALUES = _sweep("REPRO_NETFAULT_MTTF", (0.5, 2.0, 8.0))
INFLATION_VALUES = _sweep("REPRO_NETFAULT_INFLATION", (2.0, 8.0))
HOLD_FACTOR = 20.0  # long holds so link cuts land on running queries
MEAN_REPAIR_S = 1.0
PARTITION_PROB = 0.25


def _run_cell(mttf: float, inflation: float, repeats: int) -> dict:
    avail, volumes, recompute_p99 = [], [], []
    rerouted = recovered = interrupted = recomputes = partitions = 0
    for repeat in range(repeats):
        instance = make_instance(TwoTierConfig(), PaperDefaults(), 71, repeat)
        config = OnlineConfig(
            hold_factor=HOLD_FACTOR,
            seed=repeat,
            link_faults=LinkFaultConfig(
                mean_time_to_event_s=mttf,
                mean_repair_s=MEAN_REPAIR_S,
                inflation=inflation,
                partition_prob=PARTITION_PROB,
                seed=repeat,
            ),
        )
        registry = MetricsRegistry()
        with use_registry(registry):
            report = OnlineSession(config).run(instance, appro_rule)
        net = report.netfaults
        avail.append(net.time_weighted_link_availability)
        volumes.append(report.admitted_volume_gb)
        rerouted += net.queries_rerouted
        recovered += net.queries_recovered
        interrupted += net.queries_interrupted
        recomputes += net.recomputes
        partitions += net.partitions
        timer = registry.summary("pathcache.recompute_s")
        if timer is not None and timer.count:
            recompute_p99.append(timer.quantile(0.99))
    return {
        "mttf_s": mttf,
        "inflation": inflation,
        "link_availability": statistics.fmean(avail),
        "admitted_volume_gb": statistics.fmean(volumes),
        "queries_rerouted": rerouted,
        "queries_recovered": recovered,
        "queries_interrupted": interrupted,
        "partitions": partitions,
        "recomputes": recomputes,
        "recompute_p99_ms": (
            statistics.fmean(recompute_p99) * 1000 if recompute_p99 else 0.0
        ),
    }


def test_netfault_sweep(benchmark, repeats, results_dir):
    def measure():
        return [
            _run_cell(mttf, inflation, repeats)
            for mttf in MTTF_VALUES
            for inflation in INFLATION_VALUES
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        "=== link dynamics: failure rate x inflation (online session, appro rule) ===",
        "mttf (s) | infl | link avail | served GB | rerouted | recovered "
        "| interrupted | partitions | recompute p99 (ms)",
    ]
    for r in rows:
        lines.append(
            f"{r['mttf_s']:8.1f} | {r['inflation']:4.1f} "
            f"| {r['link_availability']:10.3f} | {r['admitted_volume_gb']:9.1f} "
            f"| {r['queries_rerouted']:8d} | {r['queries_recovered']:9d} "
            f"| {r['queries_interrupted']:11d} | {r['partitions']:10d} "
            f"| {r['recompute_p99_ms']:18.2f}"
        )
    emit(results_dir, "netfault", "\n".join(lines))
    (results_dir / "netfault.json").write_text(json.dumps(rows, indent=2) + "\n")

    by_cell = {(r["mttf_s"], r["inflation"]): r for r in rows}
    for r in rows:
        assert 0.0 <= r["link_availability"] <= 1.0 + 1e-9
        assert r["recomputes"] > 0  # the dynamics actually fired
    if len(MTTF_VALUES) > 1:
        for inflation in INFLATION_VALUES:
            # Faster link churn (smaller mttf) keeps fewer links up.
            assert (
                by_cell[(MTTF_VALUES[0], inflation)]["link_availability"]
                <= by_cell[(MTTF_VALUES[-1], inflation)]["link_availability"]
                + 1e-9
            )
