"""Extension bench — online arrivals with compute churn.

The paper's placement is a static batch; this bench plays the same
workloads as Poisson arrival streams where admitted queries release their
compute on completion.  Shows (a) how much volume churn unlocks relative
to the batch bound and (b) that the primal-dual rule's advantage over the
greedy walk widens online.
"""

from __future__ import annotations

import statistics

from conftest import emit

from repro.core import (
    OnlineConfig,
    OnlineSession,
    appro_rule,
    evaluate_solution,
    greedy_rule,
    make_algorithm,
)
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

ARRIVAL_RATES = (0.05, 0.2, 1.0)  # mean inter-arrival seconds


def test_online_vs_batch(benchmark, repeats, results_dir):
    def measure():
        rows = []
        for gap in ARRIVAL_RATES:
            appro_v, greedy_v, batch_v = [], [], []
            for repeat in range(repeats):
                instance = make_instance(
                    TwoTierConfig(), PaperDefaults(), 51, repeat
                )
                cfg = OnlineConfig(mean_interarrival_s=gap, seed=repeat)
                appro_v.append(
                    OnlineSession(cfg).run(instance, appro_rule).admitted_volume_gb
                )
                greedy_v.append(
                    OnlineSession(cfg).run(instance, greedy_rule).admitted_volume_gb
                )
                batch_v.append(
                    evaluate_solution(
                        instance, make_algorithm("appro-g").solve(instance)
                    ).admitted_volume_gb
                )
            rows.append(
                (
                    gap,
                    statistics.fmean(appro_v),
                    statistics.fmean(greedy_v),
                    statistics.fmean(batch_v),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "=== online arrivals: admitted volume (GB) vs arrival gap ===",
        "gap (s) | online appro | online greedy | batch appro-g",
    ]
    for gap, a, g, b in rows:
        lines.append(f"{gap:7.2f} | {a:12.1f} | {g:13.1f} | {b:13.1f}")
    emit(results_dir, "online", "\n".join(lines))

    for gap, a, g, _ in rows:
        assert a > g  # the price-aware rule dominates at every arrival rate
    # Slower arrivals (more churn headroom) admit at least as much volume.
    assert rows[-1][1] >= rows[0][1] * 0.95
