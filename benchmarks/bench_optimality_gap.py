"""Optimality gap on small instances: Appro vs LP bound vs exact ILP.

The paper proves a worst-case ratio of ``max(|Q|·|S|, |V|·|S|/K)``; this
bench measures the *empirical* gap on instances small enough for exact
branch-and-bound.  Partial-admission Appro-G is the comparable primal
(the ILP's per-pair semantics).
"""

from __future__ import annotations

import statistics

from conftest import emit

from repro.core import (
    ApproG,
    build_lp_model,
    evaluate_solution,
    solve_ilp,
    solve_lp_from_model,
    verify_solution,
)
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

SMALL_TOPOLOGY = TwoTierConfig(
    num_data_centers=2, num_cloudlets=6, num_switches=1, num_base_stations=2
)
SMALL_PARAMS = (
    PaperDefaults()
    .with_num_queries(8)
    .with_num_datasets(4)
    .with_max_datasets_per_query(2)
)
# A step beyond what the cold per-node branch-and-bound could reach in a
# smoke bench: feasible now that children hot-start from the parent basis.
MEDIUM_TOPOLOGY = TwoTierConfig(
    num_data_centers=2, num_cloudlets=8, num_switches=2, num_base_stations=3
)
MEDIUM_PARAMS = (
    PaperDefaults()
    .with_num_queries(12)
    .with_num_datasets(5)
    .with_max_datasets_per_query(2)
)
# Medium instances occasionally have a large integrality gap (repeat 13
# of seed 7 exceeds the 20k-node budget), so this point runs a fixed
# repeat count instead of honouring REPRO_BENCH_REPEATS.
MEDIUM_REPEATS = 5


def _gap_rows(topology, params, repeats):
    rows = []
    for repeat in range(repeats):
        instance = make_instance(topology, params, 7, repeat)
        # One model shared by the relaxation and the branch-and-bound
        # (the root solve is reused too, not repeated).
        model = build_lp_model(instance)
        lp = solve_lp_from_model(model)
        ilp = solve_ilp(instance, model=model, root=lp)
        solution = ApproG(partial_admission=True).solve(instance)
        verify_solution(instance, solution, all_or_nothing=False)
        primal = evaluate_solution(instance, solution).admitted_volume_gb
        rows.append((primal, ilp.objective, lp.objective))
    return rows


def _report_and_check(rows, title):
    lines = [f"=== optimality gap ({title}) ===",
             "repeat |  appro-G(part)   exact ILP     LP bound   appro/OPT"]
    ratios = []
    for i, (primal, opt, lp) in enumerate(rows):
        ratio = primal / opt if opt > 0 else 1.0
        ratios.append(ratio)
        lines.append(
            f"{i:6d} | {primal:12.2f} {opt:12.2f} {lp:12.2f} {ratio:10.2f}"
        )
    lines.append(f"mean appro/OPT ratio: {statistics.fmean(ratios):.3f}")
    for primal, opt, lp in rows:
        assert primal <= opt + 1e-6  # weak duality sanity
        assert opt <= lp + 1e-6
    # Empirically the primal-dual lands far above its loose worst case.
    assert statistics.fmean(ratios) >= 0.5
    return lines


def test_optimality_gap(benchmark, repeats, results_dir):
    rows = benchmark.pedantic(
        lambda: _gap_rows(SMALL_TOPOLOGY, SMALL_PARAMS, repeats),
        rounds=1,
        iterations=1,
    )
    emit(
        results_dir,
        "optimality_gap",
        "\n".join(_report_and_check(rows, "small instances")),
    )


def test_optimality_gap_medium(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: _gap_rows(MEDIUM_TOPOLOGY, MEDIUM_PARAMS, MEDIUM_REPEATS),
        rounds=1,
        iterations=1,
    )
    emit(
        results_dir,
        "optimality_gap_medium",
        "\n".join(_report_and_check(rows, "medium instances")),
    )
