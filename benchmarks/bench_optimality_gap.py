"""Optimality gap on small instances: Appro vs LP bound vs exact ILP.

The paper proves a worst-case ratio of ``max(|Q|·|S|, |V|·|S|/K)``; this
bench measures the *empirical* gap on instances small enough for exact
branch-and-bound.  Partial-admission Appro-G is the comparable primal
(the ILP's per-pair semantics).
"""

from __future__ import annotations

import statistics

from conftest import emit

from repro.core import (
    ApproG,
    evaluate_solution,
    solve_ilp,
    solve_lp_relaxation,
    verify_solution,
)
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

SMALL_TOPOLOGY = TwoTierConfig(
    num_data_centers=2, num_cloudlets=6, num_switches=1, num_base_stations=2
)
SMALL_PARAMS = (
    PaperDefaults()
    .with_num_queries(8)
    .with_num_datasets(4)
    .with_max_datasets_per_query(2)
)


def test_optimality_gap(benchmark, repeats, results_dir):
    def measure():
        rows = []
        for repeat in range(repeats):
            instance = make_instance(SMALL_TOPOLOGY, SMALL_PARAMS, 7, repeat)
            lp = solve_lp_relaxation(instance)
            ilp = solve_ilp(instance)
            solution = ApproG(partial_admission=True).solve(instance)
            verify_solution(instance, solution, all_or_nothing=False)
            primal = evaluate_solution(instance, solution).admitted_volume_gb
            rows.append((primal, ilp.objective, lp.objective))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["=== optimality gap (small instances) ===",
             "repeat |  appro-G(part)   exact ILP     LP bound   appro/OPT"]
    ratios = []
    for i, (primal, opt, lp) in enumerate(rows):
        ratio = primal / opt if opt > 0 else 1.0
        ratios.append(ratio)
        lines.append(
            f"{i:6d} | {primal:12.2f} {opt:12.2f} {lp:12.2f} {ratio:10.2f}"
        )
    lines.append(f"mean appro/OPT ratio: {statistics.fmean(ratios):.3f}")
    emit(results_dir, "optimality_gap", "\n".join(lines))

    for primal, opt, lp in rows:
        assert primal <= opt + 1e-6  # weak duality sanity
        assert opt <= lp + 1e-6
    # Empirically the primal-dual lands far above its loose worst case.
    assert statistics.fmean(ratios) >= 0.5
