"""Extension bench — predictive pre-placement ahead of demand bursts.

Drives three contenders over identical non-stationary query streams
(burst, diurnal, flash-crowd — the :class:`QueryFactory` trace modes),
all through the same gateway under the ``greedy-ship`` placement rule,
where admission-time replication ships the dataset from its nearest
holder and the transfer counts against the query's deadline:

* **reactive** — the bare gateway: replicas appear only when an
  admission can still afford the freight inside its deadline;
* **popularity** — the Popularity-S/G policy transplanted into the same
  freight-paying world: rich-get-richer pre-placement that copies the
  *historically* hottest datasets onto the nodes with the highest
  replica share (:func:`repro.core.popularity.node_popularity`), at the
  same cadence and under the same churn guards as the predictor
  (the batch Popularity solvers assume free instantaneous replication
  at admission time, which no serving gateway gets — replaying their
  policy through the gateway is the like-for-like comparison);
* **predictive** — the gateway with the pre-placement daemon: the
  per-(region, dataset) demand forecast decides *what* to copy and
  *where*, through the same transactional apply path.

The trade this pins: under bursty demand, copies shipped *ahead* of the
burst admit queries whose deadlines cannot absorb the shipping latency
at admission time — so the predictive gateway must admit strictly more
GB than the reactive one on the flash-crowd trace, and at least as much
as the popularity policy on all three traces (averaged over repeats).

Writes the rendered table to ``results/predictive.txt`` and the raw
per-trace numbers to ``results/predictive.json`` (uploaded as a CI
artifact by the serve-predict smoke job).
"""

from __future__ import annotations

import asyncio
import json

from conftest import emit

from repro.core.migration import MigrationStep
from repro.core.popularity import node_popularity
from repro.serve import (
    AdmissionGateway,
    GatewayClient,
    GatewayConfig,
    PreplacerConfig,
    QueryFactory,
)
from repro.serve.reoptimizer import apply_step
from repro.topology.twotier import TwoTierConfig, generate_two_tier
from repro.util.rng import derive_seed, spawn_rng
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_workload

TRACES = ("burst", "diurnal", "flash-crowd")
NUM_QUERIES = 150
#: Submissions per trace phase (burst flips, diurnal rotates, the flash
#: crowd hits at this index).
PERIOD = 40
#: Pre-placement cadence: one forced cycle per this many submissions,
#: identical for the predictive daemon and the popularity policy.
CYCLE_EVERY = 5
SEED = 92

#: Deadlines sit where placement decides admission: a copy on a nearby
#: cloudlet meets them, the same copy behind the data-center uplink (or
#: freshly shipped at admission time) usually does not.  Compute rates
#: are scaled down so capacity does not mask that placement signal.
PARAMS = PaperDefaults(
    deadline_s_per_gb=(0.06, 0.2), compute_rate=(0.05, 0.15)
)
TOPOLOGY = TwoTierConfig(
    num_data_centers=2, num_cloudlets=6, num_switches=2, num_base_stations=2
)
NUM_DATASETS = 12

#: Shared churn guards: both proactive contenders get the same budget.
PREPLACE = PreplacerConfig(
    interval_s=1e9,  # the timer never fires; cycles are forced explicitly
    window=48,
    min_window=12,
    num_buckets=6,
    alpha=0.8,
    threshold=0.01,
    max_preplace_gb=25.0,
    max_adds_per_dataset=2,
    slot_slack=1,
)


def _instance(seed: int):
    topology = generate_two_tier(TOPOLOGY, seed=seed)
    return generate_workload(
        topology, spawn_rng(seed, "predictive"), PARAMS,
        num_datasets=NUM_DATASETS,
    )


def _stream(instance, seed: int, mode: str):
    factory = QueryFactory(
        instance, seed=seed, params=PARAMS, mode=mode, period=PERIOD
    )
    return [factory.make() for _ in range(NUM_QUERIES)]


def _popularity_cycle(instance, gateway, counts, config) -> None:
    """One rich-get-richer pre-placement cycle (the Popularity policy).

    Datasets ranked by observed historical demand, targets ranked by
    replica share; applied through the same transactional
    :func:`apply_step` path and bounded by the same churn guards as the
    predictive daemon.
    """
    state = gateway.state
    total = sum(counts.values())
    if total == 0:
        return
    inflight = tuple(
        a for group in gateway._inflight.values() for a in group
    )
    popularity = node_popularity(state)
    shipped = 0.0
    for d_id in sorted(counts, key=lambda d: (-counts[d], d)):
        if counts[d_id] / total < config.threshold:
            break
        dataset = instance.dataset(d_id)
        for _ in range(config.max_adds_per_dataset):
            if state.replicas.remaining_slots(d_id) <= config.slot_slack:
                break
            if shipped + dataset.volume_gb > config.max_preplace_gb:
                break
            holders = [
                v for v in state.replicas.nodes(d_id) if state.is_up(v)
            ]
            candidates = [
                v for v in state.nodes
                if state.is_up(v) and not state.replicas.has(d_id, v)
            ]
            if not holders or not candidates:
                break
            target = max(candidates, key=lambda v: (popularity[v], -v))
            source = min(
                holders, key=lambda h: instance.paths.delay(h, target)
            )
            step = MigrationStep(
                dataset_id=d_id,
                add_node=target,
                drop_node=None,
                volume_gb=dataset.volume_gb,
                ship_from=source,
                ship_cost_s=dataset.volume_gb
                * instance.paths.delay(source, target),
            )
            if apply_step(state, step, inflight) != "applied":
                break
            shipped += dataset.volume_gb
            popularity = node_popularity(state)


async def _drive(instance, stream, *, predict=None, popularity=False):
    """Admitted GB for one contender over one stream."""
    gateway = AdmissionGateway(
        instance,
        GatewayConfig(rule="greedy-ship", hold_factor=100.0, predict=predict),
    )
    await gateway.start()
    counts = {d: 0 for d in instance.datasets}
    try:
        host, port = gateway.address
        admitted_gb = 0.0
        async with await GatewayClient.connect(host, port) as client:
            for i, query in enumerate(stream):
                response = await client.submit(query)
                if response.get("result") == "admitted":
                    admitted_gb += sum(
                        instance.dataset(d).volume_gb for d in query.demanded
                    )
                for d in query.demanded:
                    counts[d] += 1
                if (i + 1) % CYCLE_EVERY == 0:
                    if predict is not None:
                        await client.predict(force=True)
                    elif popularity:
                        _popularity_cycle(instance, gateway, counts, PREPLACE)
        return admitted_gb
    finally:
        await gateway.stop()


async def _run_repeat(seed: int):
    rows = {}
    instance = _instance(seed)
    for mode in TRACES:
        stream = _stream(instance, seed, mode)
        rows[mode] = {
            "reactive": await _drive(instance, stream),
            "predictive": await _drive(instance, stream, predict=PREPLACE),
            "popularity": await _drive(instance, stream, popularity=True),
        }
    return rows


def test_predictive_preplacement_beats_reactive(
    benchmark, repeats, results_dir
):
    strategies = ("reactive", "predictive", "popularity")

    def measure():
        table = {m: {s: 0.0 for s in strategies} for m in TRACES}
        for repeat in range(repeats):
            rows = asyncio.run(
                _run_repeat(derive_seed(SEED, f"pred/{repeat}"))
            )
            for mode in TRACES:
                for s in strategies:
                    table[mode][s] += rows[mode][s] / repeats
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        f"=== predictive pre-placement vs reactive admission "
        f"({NUM_QUERIES} queries/trace, {repeats} repeats, "
        f"rule=greedy-ship) ===",
        "trace       | reactive GB | predictive GB | popularity GB",
    ]
    for mode in TRACES:
        row = table[mode]
        lines.append(
            f"{mode:11s} | {row['reactive']:11.1f} | "
            f"{row['predictive']:13.1f} | {row['popularity']:13.1f}"
        )
    flash = table["flash-crowd"]
    lines.append(
        f"flash-crowd lift over reactive: "
        f"{flash['predictive'] / max(flash['reactive'], 1e-9):.1f}x"
    )
    emit(results_dir, "predictive", "\n".join(lines))
    (results_dir / "predictive.json").write_text(
        json.dumps(
            {
                "num_queries": NUM_QUERIES,
                "period": PERIOD,
                "cycle_every": CYCLE_EVERY,
                "repeats": repeats,
                "rule": "greedy-ship",
                "admitted_gb": table,
            },
            indent=1,
        )
        + "\n"
    )

    # The predictor's contract: copies shipped ahead of the burst admit
    # queries whose deadlines cannot absorb admission-time freight.
    assert table["flash-crowd"]["predictive"] > table["flash-crowd"]["reactive"]
    for mode in TRACES:
        assert table[mode]["predictive"] >= table[mode]["popularity"]
