"""Extension bench — live re-optimization vs the migration strategies.

Replays the migration bench's drifting 4-epoch trace and inserts the
serving re-optimizer between epochs: before each epoch the daemon's
planning core (:func:`repro.serve.reoptimizer.plan_cycle`) diffs the
carried replica map against a fresh replan of the incoming demand and
applies a *bounded-churn* migration plan (per-cycle GB cap + per-dataset
move budget) through the same transactional executor the gateway uses.
The carried strategy then admits the epoch on the migrated map.

The trade this pins: ``reopt`` must reclaim at least half of the
``fresh``-vs-``carry`` served-GB gap while shipping less than ``fresh``
and staying under its per-cycle cap — the daemon's reason to exist.
"""

from __future__ import annotations

import json

from conftest import emit

from repro.core import MigrationPlanner
from repro.core.instance import ProblemInstance
from repro.serve.reoptimizer import (
    ReoptimizerConfig,
    _seeded_state,
    apply_step,
    plan_cycle,
)
from repro.topology.twotier import generate_two_tier
from repro.util.rng import derive_seed, spawn_rng
from repro.workload.datasets import generate_datasets
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_queries

EPOCHS = 4
MAX_CYCLE_GB = 80.0
MAX_MOVES = 4


def _epoch_sequence(seed: int) -> list[ProblemInstance]:
    topology = generate_two_tier(seed=seed)
    params = PaperDefaults()
    datasets = generate_datasets(
        topology, spawn_rng(seed, "ds"), params, count=12
    )
    return [
        ProblemInstance(
            topology=topology,
            datasets=datasets,
            queries=generate_queries(
                topology, datasets, spawn_rng(seed, f"q{e}"), params, count=60
            ),
            max_replicas=3,
        )
        for e in range(EPOCHS)
    ]


def _run_reopt(
    epochs: list[ProblemInstance], config: ReoptimizerConfig
) -> tuple[float, float, float]:
    """(served GB, migration GB, max per-cycle migration GB)."""
    planner = MigrationPlanner("carry")
    served = traffic = worst_cycle = 0.0
    for i, instance in enumerate(epochs):
        if i > 0 and planner.carried is not None:
            live = dict(planner.carried)
            plan, _info = plan_cycle(
                instance, list(instance.queries), live, [], config
            )
            state = _seeded_state(instance, live, [])
            cycle_gb = 0.0
            for step in plan.steps:
                if apply_step(state, step) == "applied":
                    cycle_gb += step.volume_gb
            traffic += cycle_gb
            worst_cycle = max(worst_cycle, cycle_gb)
            planner.seed_carry(state.replicas.replica_map())
        report = planner.plan_epoch(instance)
        served += report.admitted_volume_gb
        if i > 0:
            traffic += report.migration_gb
    return served, traffic, worst_cycle


def test_reoptimize_reclaims_drift_gap(benchmark, repeats, results_dir):
    config = ReoptimizerConfig(
        max_migration_gb=MAX_CYCLE_GB, max_moves_per_dataset=MAX_MOVES
    )

    def measure():
        table = {s: [0.0, 0.0] for s in ("carry", "fresh", "reopt")}
        worst_cycle = 0.0
        for repeat in range(repeats):
            epochs = _epoch_sequence(derive_seed(71, f"mig/{repeat}"))
            for s in ("carry", "fresh"):
                reports = MigrationPlanner(s).run(epochs)
                table[s][0] += sum(r.admitted_volume_gb for r in reports) / repeats
                table[s][1] += sum(r.migration_gb for r in reports[1:]) / repeats
            served, traffic, worst = _run_reopt(epochs, config)
            table["reopt"][0] += served / repeats
            table["reopt"][1] += traffic / repeats
            worst_cycle = max(worst_cycle, worst)
        return table, worst_cycle

    (table, worst_cycle) = benchmark.pedantic(measure, rounds=1, iterations=1)
    carry, fresh, reopt = table["carry"], table["fresh"], table["reopt"]
    gap = fresh[0] - carry[0]
    reclaimed = (reopt[0] - carry[0]) / gap if gap > 0 else 1.0
    lines = [
        f"=== live re-optimization over {EPOCHS} drifting epochs "
        f"(cap {MAX_CYCLE_GB:.0f} GB/cycle, {MAX_MOVES} moves/dataset) ===",
        "strategy | served GB (all epochs) | migration GB",
    ]
    for s in ("carry", "fresh", "reopt"):
        vol, traffic = table[s]
        lines.append(f"{s:8s} | {vol:22.1f} | {traffic:12.1f}")
    lines.append(
        f"reopt reclaims {100.0 * reclaimed:.0f}% of the fresh-vs-carry gap "
        f"({gap:.1f} GB); worst cycle shipped {worst_cycle:.1f} GB"
    )
    emit(results_dir, "reoptimize", "\n".join(lines))
    (results_dir / "reoptimize.json").write_text(
        json.dumps(
            {
                "epochs": EPOCHS,
                "max_cycle_gb": MAX_CYCLE_GB,
                "max_moves_per_dataset": MAX_MOVES,
                "served_gb": {s: table[s][0] for s in table},
                "migration_gb": {s: table[s][1] for s in table},
                "gap_gb": gap,
                "reclaimed_fraction": reclaimed,
                "worst_cycle_gb": worst_cycle,
            },
            indent=1,
        )
        + "\n"
    )

    # The daemon's contract: most of the drift gap back, bounded churn.
    assert reclaimed >= 0.5
    assert worst_cycle <= MAX_CYCLE_GB * (1.0 + 1e-9)
    assert reopt[1] < fresh[1]
    assert reopt[0] >= carry[0]
