"""Algorithm wall-clock scaling vs network size and query count.

Measures the placement algorithms themselves (not the figure harness) so
regressions in the hot path show up as timing changes.  These are the only
benches where the pytest-benchmark statistics are the point.
"""

from __future__ import annotations

import pytest

from repro.core import make_algorithm
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults


def _instance(core_size: int, num_queries: int):
    topology = TwoTierConfig().scaled_to(core_size)
    params = PaperDefaults().with_num_queries(num_queries)
    return make_instance(topology, params, 23, 0)


@pytest.mark.parametrize("core_size", [32, 100, 200])
def test_appro_g_scaling_network(benchmark, core_size):
    instance = _instance(core_size, 60)
    benchmark(lambda: make_algorithm("appro-g").solve(instance))


@pytest.mark.parametrize("num_queries", [25, 100, 400])
def test_appro_g_scaling_queries(benchmark, num_queries):
    instance = _instance(32, num_queries)
    benchmark(lambda: make_algorithm("appro-g").solve(instance))


@pytest.mark.parametrize(
    "name", ["appro-g", "greedy-g", "graph-g", "popularity-g"]
)
def test_algorithm_comparison_time(benchmark, name):
    instance = _instance(32, 100)
    benchmark(lambda: make_algorithm(name).solve(instance))


@pytest.mark.parametrize("core_size", [32, 100, 200])
def test_lp_rounding_scaling_network(benchmark, core_size):
    # The LP baseline at sizes the scalar model build used to make
    # painful; the solve is dominated by HiGHS, the build is vectorised.
    instance = _instance(core_size, 60)
    benchmark.pedantic(
        lambda: make_algorithm("lp-rounding-g").solve(instance),
        rounds=1,
        iterations=1,
    )
