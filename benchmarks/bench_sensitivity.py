"""Ablation — sensitivity of Appro-G to its primal-dual knobs.

Sweeps each tunable of :class:`~repro.core.primal_dual.PrimalDualConfig`
around its default while holding the others fixed, so a calibration
regression (a knob silently becoming load-bearing) is visible in one
table.
"""

from __future__ import annotations

import statistics

from conftest import emit

from repro.core import ApproG, PrimalDualConfig, evaluate_solution
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

SWEEPS: dict[str, tuple] = {
    "gamma_delay": (0.05, 0.1, 0.3, 1.0),
    "gamma_replica": (0.1, 0.5, 1.0, 2.0),
    "beta": (0.8, 1.2, 1.6, 3.0),
    "theta_floor": (0.001, 0.01, 0.1),
}


def _volume(config: PrimalDualConfig, repeats: int) -> float:
    values = []
    for repeat in range(repeats):
        instance = make_instance(TwoTierConfig(), PaperDefaults(), 91, repeat)
        values.append(
            evaluate_solution(
                instance, ApproG(config).solve(instance)
            ).admitted_volume_gb
        )
    return statistics.fmean(values)


def test_config_sensitivity(benchmark, repeats, results_dir):
    def measure():
        table: dict[str, list[tuple[float, float]]] = {}
        for knob, values in SWEEPS.items():
            rows = []
            for value in values:
                config = PrimalDualConfig(**{knob: value})
                rows.append((value, _volume(config, repeats)))
            table[knob] = rows
        table["default"] = [(0.0, _volume(PrimalDualConfig(), repeats))]
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    default = table["default"][0][1]
    lines = [
        "=== Appro-G knob sensitivity (admitted GB; default "
        f"{default:.1f}) ===",
    ]
    for knob, rows in table.items():
        if knob == "default":
            continue
        cells = "  ".join(f"{v:g}:{vol:7.1f}" for v, vol in rows)
        lines.append(f"{knob:13s} {cells}")
    emit(results_dir, "sensitivity", "\n".join(lines))

    # The default should sit within 15% of the best value of every sweep —
    # i.e. no knob is badly mis-calibrated.
    for knob, rows in table.items():
        if knob == "default":
            continue
        best = max(vol for _, vol in rows)
        assert default >= 0.85 * best, (knob, default, best)
