"""Extension bench — admission-gateway latency under load.

Two phases, both at the paper-topology scale the figure benches use and
driven by the same Zipf load generator:

* **drain** — the micro-batching claim, measured where it lives: a
  standing backlog of queries is pushed straight into the gateway's
  batcher and drained by the admission worker alone (no TCP, no client
  thread), with the micro-batch size swept.  Per-item admission latency
  (enqueue → decision) falls as the batch grows because the worker
  wake-up and the vectorised feasibility screen amortise over the
  batch.  This cell is the acceptance gate: batched p99 must beat the
  one-at-a-time baseline on an identical backlog (the decisions
  themselves are pinned equal by ``tests/serve/test_gateway.py``).
* **wire** — end-to-end behaviour over real TCP: closed-loop load
  (fixed in-flight window) and open-loop Poisson load (fixed offered
  rate) across batch sizes, plus a backpressure cell where a tight
  queue bound under open-loop overload forces reject-newest shedding.
  These rows are recorded for the latency/shed profile; the end-to-end
  tail is dominated by per-request protocol costs shared by every
  configuration, so no ordering is asserted between them.

Writes the rendered table to ``results/serve.txt`` and the raw sweep to
``results/serve.json`` (uploaded as a CI artifact by the serve smoke
job).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import time

import numpy as np

from conftest import emit

from repro.experiments.runner import make_instance
from repro.experiments.stats import mean_ci
from repro.serve import (
    AdmissionGateway,
    GatewayConfig,
    GatewayThread,
    QueryFactory,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.gateway import _Pending
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

BATCH_SIZES = (1, 4, 16)
NUM_REQUESTS = 600
CLOSED_CONCURRENCY = 32
#: Offered open-loop rate, chosen above the one-at-a-time service rate so
#: a backlog forms and shedding/latency tails are visible.
OPEN_RATE_RPS = 4000.0
SEED = 71
#: Measured runs aggregated per cell (after one discarded warmup run).
#: Identical seeds make decisions deterministic across runs; only the
#: timing columns vary, and those are averaged with a Student-t mean.
CELL_REPEATS = int(os.environ.get("REPRO_SERVE_REPEATS", "3"))

#: Columns carrying measurements (averaged over repeats via ``mean_ci``);
#: every other column is identity/config and must agree across repeats.
_MEASURED_KEYS = frozenset(
    {
        "duration_s",
        "throughput_rps",
        "shed_rate",
        "latency_p50_ms",
        "latency_p99_ms",
        "mean_batch",
        "admitted",
        "rejected",
        "shed",
        "batches",
    }
)


def _aggregate(runs: list[dict]) -> dict:
    """Fold repeated cell runs into one row with the original schema.

    Measured columns become the ``mean_ci`` point estimate over the
    repeats; identity columns are taken from the first run (and checked
    to agree, which they must — the workload seed is fixed).
    """
    row = dict(runs[0])
    for key, first in runs[0].items():
        if key in _MEASURED_KEYS:
            row[key] = mean_ci([r[key] for r in runs]).estimate
        else:
            assert all(r[key] == first for r in runs), key
    return row


async def _drain_scenario(instance, max_batch: int, *, load_seed: int) -> dict:
    """Drain one pre-loaded backlog through the admission worker.

    Queries, arrival order and cluster state are identical across batch
    sizes; only the worker's flush size differs, so the latency delta is
    purely the admission path.  Holds are made effectively infinite so no
    release fires mid-drain.
    """
    gateway = AdmissionGateway(
        instance,
        GatewayConfig(
            max_batch=max_batch, queue_bound=NUM_REQUESTS, hold_factor=1e6
        ),
    )
    loop = asyncio.get_running_loop()
    factory = QueryFactory(instance, seed=load_seed)
    done_at = [0.0] * NUM_REQUESTS
    pendings = []
    for i in range(NUM_REQUESTS):
        future = loop.create_future()
        future.add_done_callback(
            lambda _f, i=i: done_at.__setitem__(i, time.perf_counter())
        )
        pendings.append(_Pending(factory.make(), future))
    started = time.perf_counter()
    for pending in pendings:
        pending.enqueued_at = started
        assert gateway._batcher.offer(pending)
    worker = asyncio.create_task(gateway._admission_worker())
    await asyncio.gather(*(p.future for p in pendings))
    worker.cancel()
    with contextlib.suppress(asyncio.CancelledError):
        await worker
    duration = time.perf_counter() - started
    for handle in gateway._holds.values():
        handle.cancel()
    latencies_ms = (np.asarray(done_at) - started) * 1e3
    return {
        "mode": "drain",
        "shed_cell": False,
        "max_batch": max_batch,
        "submitted": NUM_REQUESTS,
        "admitted": gateway.counters["admitted"],
        "rejected": gateway.counters["rejected"],
        "shed": 0,
        "protocol_errors": 0,
        "duration_s": duration,
        "throughput_rps": NUM_REQUESTS / duration,
        "shed_rate": 0.0,
        "latency_p50_ms": float(np.percentile(latencies_ms, 50)),
        "latency_p99_ms": float(np.percentile(latencies_ms, 99)),
        "batches": gateway.counters["batches"],
        "mean_batch": NUM_REQUESTS / gateway.counters["batches"],
    }


def _wire_cell(
    instance, mode: str, *, load_seed: int, shed_cell: bool = False, **config
) -> dict:
    """Run one TCP load scenario against a fresh gateway; return its summary."""
    gateway = AdmissionGateway(instance, GatewayConfig(**config))
    thread = GatewayThread(gateway)
    host, port = thread.start()
    try:
        factory = QueryFactory(instance, seed=load_seed)
        if mode == "closed":
            report = asyncio.run(
                run_closed_loop(
                    host,
                    port,
                    factory,
                    num_requests=NUM_REQUESTS,
                    concurrency=CLOSED_CONCURRENCY,
                )
            )
        else:
            report = asyncio.run(
                run_open_loop(
                    host,
                    port,
                    factory,
                    num_requests=NUM_REQUESTS,
                    rate_rps=OPEN_RATE_RPS,
                    seed=load_seed,
                )
            )
    finally:
        thread.stop()
    row = {
        "mode": mode,
        "shed_cell": shed_cell,
        **{k: v for k, v in config.items()},
        **report.summary(),
    }
    row["batches"] = gateway.counters["batches"]
    row["mean_batch"] = (
        report.submitted / gateway.counters["batches"]
        if gateway.counters["batches"]
        else 0.0
    )
    return row


def test_serve_batching_and_backpressure(benchmark, results_dir):
    instance = make_instance(TwoTierConfig(), PaperDefaults(), SEED, 0)

    def repeat_cell(run_once) -> dict:
        """One discarded warmup run, then ``CELL_REPEATS`` measured runs."""
        run_once()  # warmup: page in code paths, caches, the allocator
        return _aggregate([run_once() for _ in range(CELL_REPEATS)])

    def measure():
        rows = []
        for batch in BATCH_SIZES:
            rows.append(
                repeat_cell(
                    lambda b=batch: asyncio.run(
                        _drain_scenario(instance, b, load_seed=5)
                    )
                )
            )
        for mode in ("closed", "open"):
            for batch in BATCH_SIZES:
                rows.append(
                    repeat_cell(
                        lambda m=mode, b=batch: _wire_cell(
                            instance,
                            m,
                            load_seed=5,
                            max_batch=b,
                            queue_bound=256,
                            hold_factor=1.0,
                        )
                    )
                )
        # Backpressure cell: a tight queue bound under the same offered
        # load forces reject-newest shedding (one-at-a-time service so
        # the queue actually overflows).
        rows.append(
            repeat_cell(
                lambda: _wire_cell(
                    instance,
                    "open",
                    load_seed=5,
                    max_batch=1,
                    queue_bound=16,
                    hold_factor=1.0,
                    shed_cell=True,
                )
            )
        )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        "=== admission gateway: micro-batching x load shape "
        f"(paper topology, {NUM_REQUESTS} requests/cell) ===",
        "mode   | batch | p50 (ms) | p99 (ms) | rps    | shed | mean batch",
    ]
    for r in rows:
        label = f"{'shed' if r['shed_cell'] else r['mode']:6s} | {r['max_batch']:5d}"
        lines.append(
            f"{label} | {r['latency_p50_ms']:8.3f} | {r['latency_p99_ms']:8.3f} "
            f"| {r['throughput_rps']:6.0f} | {r['shed_rate']:4.2f} "
            f"| {r['mean_batch']:6.1f}"
        )
    emit(results_dir, "serve", "\n".join(lines))
    (results_dir / "serve.json").write_text(json.dumps(rows, indent=2) + "\n")

    by_key = {
        (r["mode"], r["max_batch"]): r for r in rows if not r["shed_cell"]
    }
    for r in rows:
        assert r["protocol_errors"] == 0
        assert r["submitted"] == NUM_REQUESTS
    # The tentpole claim, measured on the admission path itself: draining
    # an identical standing backlog, micro-batching beats one-at-a-time
    # admission on p99 enqueue-to-decision latency — the worker wake-up
    # and the stacked feasibility screen amortise over the batch.
    serial = by_key[("drain", 1)]
    batched = by_key[("drain", 16)]
    assert batched["latency_p99_ms"] < serial["latency_p99_ms"]
    assert batched["mean_batch"] > 1.5  # batching actually engaged
    # Same backlog, same state: the batched worker must reach the same
    # decisions as the serial one (the prefilter is a screen, not a
    # different policy).
    assert batched["admitted"] == serial["admitted"]
    # Backpressure engaged: the tight-queue cell shed a visible share of
    # offered load and stayed protocol-clean while doing it.
    shed_row = next(r for r in rows if r["shed_cell"])
    assert shed_row["shed_rate"] > 0.1
