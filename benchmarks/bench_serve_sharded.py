"""Extension bench — sharded control-plane scaling.

One admission gateway serializes every decision through a single event
loop; the sharded control plane (``repro.serve.shard``) splits the
placement nodes across ``N`` gateways behind a front router so shards
decide concurrently.  This bench records the aggregate decision
throughput of the whole ensemble — router included — at shard counts
{1, 2, 4} on the paper topology, driven closed-loop over real TCP by
``REPRO_SERVE_SHARD_CLIENTS`` independent connections.

Two columns matter beyond raw decisions/s:

* **cross-shard fraction** — how often the router had to run the
  two-phase reserve/commit path because a query's datasets resolved to
  different shards.  Scale-out only pays when this stays small; the
  Zipf workload on the paper topology keeps it in the mid
  single-digit percents because most queries' argmin-latency nodes
  for every demanded dataset land in one DC group.
* **host CPUs** — shard gateways are Python *threads*.  On a single-CPU
  host the curve measures coordination overhead (router hop, thread
  switching), not parallel speedup, so no ordering between shard counts
  is asserted; the JSON records ``host_cpus`` so readers can interpret
  the curve (the CI container is single-CPU — see the REPORT note).

Writes ``results/serve_sharded.txt`` (rendered table) and
``results/serve_sharded.json`` (raw rows; uploaded as a CI artifact by
the serve-shard job).  Reduced-scale knobs for CI:
``REPRO_SERVE_SHARD_REQUESTS``, ``REPRO_SERVE_SHARD_CLIENTS``,
``REPRO_SERVE_SHARD_COUNTS``, ``REPRO_SERVE_SHARD_ROUNDS``.
"""

from __future__ import annotations

import asyncio
import json
import os

from conftest import emit

from repro.experiments.runner import make_instance
from repro.serve import (
    GatewayConfig,
    QueryFactory,
    RouterConfig,
    ShardCluster,
    ShardPlan,
    run_closed_loop,
)
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

SEED = 71
LOAD_SEED = 9
#: Total closed-loop submissions per cell (shared across clients).
NUM_REQUESTS = int(os.environ.get("REPRO_SERVE_SHARD_REQUESTS", "1500"))
#: Independent TCP connections driving the router concurrently.
NUM_CLIENTS = int(os.environ.get("REPRO_SERVE_SHARD_CLIENTS", "4"))
#: In-flight window per connection.
CONCURRENCY = 8
SHARD_COUNTS = tuple(
    int(n)
    for n in os.environ.get("REPRO_SERVE_SHARD_COUNTS", "1,2,4").split(",")
)
#: Measured rounds per cell; the best round is reported (the cells are
#: decision-deterministic per connection, only timing varies).
ROUNDS = int(os.environ.get("REPRO_SERVE_SHARD_ROUNDS", "2"))


async def _drive(address: tuple[str, int], factory: QueryFactory) -> list:
    """Fan ``NUM_REQUESTS`` over ``NUM_CLIENTS`` connections, one shared
    factory (single loop, so ids stay unique across connections)."""
    per_client = NUM_REQUESTS // NUM_CLIENTS
    return list(
        await asyncio.gather(
            *(
                run_closed_loop(
                    *address,
                    factory,
                    num_requests=per_client,
                    concurrency=CONCURRENCY,
                )
                for _ in range(NUM_CLIENTS)
            )
        )
    )


def _cell(instance, num_shards: int) -> dict:
    plan = ShardPlan.build(instance, num_shards)
    cluster = ShardCluster(
        instance,
        plan,
        GatewayConfig(max_batch=16, hold_factor=1e6),
        RouterConfig(),
    )
    with cluster:
        address = cluster.router.address
        reports = asyncio.run(
            _drive(address, QueryFactory(instance, seed=LOAD_SEED))
        )
        counters = dict(cluster.router.counters)
    submitted = sum(r.submitted for r in reports)
    duration = max(r.duration_s for r in reports)
    latencies = [v for r in reports for v in r.latencies_s]
    latencies.sort()

    def pct(q: float) -> float:
        return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

    return {
        "num_shards": num_shards,
        "method": plan.method,
        "shard_sizes": [len(nodes) for nodes in plan.members],
        "submitted": submitted,
        "admitted": sum(r.admitted for r in reports),
        "rejected": sum(r.rejected for r in reports),
        "shed": sum(r.shed for r in reports),
        "duration_s": duration,
        "throughput_rps": submitted / duration,
        "latency_p50_ms": pct(0.50) * 1e3,
        "latency_p99_ms": pct(0.99) * 1e3,
        "routed_local": counters["routed_local"],
        "routed_cross": counters["routed_cross"],
        "cross_fraction": counters["routed_cross"] / max(1, submitted),
        "two_phase_commits": counters["two_phase_commits"],
        "two_phase_aborts": counters["two_phase_aborts"],
    }


def test_serve_sharded_scaling(benchmark, results_dir):
    instance = make_instance(TwoTierConfig(), PaperDefaults(), SEED, 0)
    host_cpus = os.cpu_count() or 1

    def measure():
        best: dict[int, dict] = {}
        for _ in range(ROUNDS):
            for n in SHARD_COUNTS:
                row = _cell(instance, n)
                if (
                    n not in best
                    or row["throughput_rps"] > best[n]["throughput_rps"]
                ):
                    best[n] = row
        return [best[n] for n in SHARD_COUNTS]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        "=== sharded control plane: aggregate decisions/s through the "
        f"router (closed loop, {NUM_CLIENTS} connections x "
        f"{CONCURRENCY} in flight, best of {ROUNDS} rounds, "
        "paper topology) ===",
        "shards | plan        | decisions/s | p50 (ms) | p99 (ms) "
        "| cross-shard | admitted",
    ]
    for r in rows:
        lines.append(
            f"{r['num_shards']:6d} | {r['method']:11s} "
            f"| {r['throughput_rps']:11.0f} | {r['latency_p50_ms']:8.2f} "
            f"| {r['latency_p99_ms']:8.2f} | {r['cross_fraction']:10.2%} "
            f"| {r['admitted']:8d}"
        )
    if host_cpus < 2:
        lines.append(
            f"NOTE: single-CPU host ({host_cpus} core): shard gateways are "
            "threads, so this curve measures coordination overhead, not "
            "parallel speedup."
        )
    emit(results_dir, "serve_sharded", "\n".join(lines))
    payload = {
        "host_cpus": host_cpus,
        "num_requests": NUM_REQUESTS,
        "num_clients": NUM_CLIENTS,
        "concurrency": CONCURRENCY,
        "rounds": ROUNDS,
        "shard_counts": list(SHARD_COUNTS),
        "cells": rows,
    }
    (results_dir / "serve_sharded.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Every cell must have served the full budget and decided every
    # submission one way or the other; nothing may be lost in routing.
    per_client = NUM_REQUESTS // NUM_CLIENTS
    for r in rows:
        assert r["submitted"] == per_client * NUM_CLIENTS
        assert r["admitted"] + r["rejected"] + r["shed"] == r["submitted"]
        assert r["routed_local"] + r["routed_cross"] == r["submitted"]
        assert r["admitted"] > 0
