"""Tentpole bench — sustained admission throughput toward 10⁵ decisions/s.

Where ``bench_serve.py`` measures short drains and wire-level latency,
this bench measures the *steady state* of the admission path: a feeder
keeps a standing backlog in front of the admission worker for multiple
seconds per cell (open-loop, saturated — offered load always exceeds
service rate), and every decision's enqueue→decision latency lands in a
full histogram.

The harness is built so the cell measures the gateway, not the feeder:

* Queries are pre-generated once and recycled via a ``__dict__``-level
  clone (~0.6 µs) instead of ``dataclasses.replace`` (~4 µs — it would
  dominate the loop).  Each clone gets a fresh ``query_id`` (hold
  allocation tags are keyed by id, so ids must never repeat within a
  cell) and a minutely perturbed ``selectivity`` so the legacy engine's
  per-pair latency cache sees an always-fresh key, exactly as it does
  on live traffic — a recycled pool would otherwise warm that cache and
  inflate the baseline.
* Decisions resolve a two-method future stand-in (the admission worker
  only ever calls ``done()`` and ``set_result()``) that stamps the
  decision time; real ``asyncio.Future`` callback machinery costs more
  than the screen itself at these rates.
* Draining polls the gateway's own decision counters (and surfaces a
  crashed admission worker instead of spinning forever).
* The cyclic GC is paused over the measured window (pyperf-style): the
  retained-pending population is harness bookkeeping, and letting the
  collector scan it repeatedly costs ~30 % of throughput by the end of
  a multi-second window.

Cells
-----
* ``legacy`` — the original per-pair prefilter, recorded as the in-run
  reference point.
* ``batch @ 16/256/1024`` — the stacked screening kernel
  (:mod:`repro.serve.screenpool`) across micro-batch sizes.  The kernel
  is decision-identical to ``legacy`` (pinned by
  ``tests/serve/test_screenpool.py``); only the screen's cost differs.
* optionally ``pool @ N`` (``REPRO_SERVE_SCREEN_WORKERS=N``) — the
  prefork screening pool, recorded for the shared-memory/IPC cost
  profile (on a single-CPU host the pool cannot beat inline).

Each cell runs ``REPRO_SUSTAINED_ROUNDS`` times and keeps its best
round: virtualised hosts throttle sustained 100 %-CPU loops (burst
credits), and a capability bench wants the unthrottled figure.

The acceptance gate is *absolute*: the best batch cell must sustain at
least ``REPRO_SUSTAINED_MIN_SPEEDUP`` (default 4×) the recorded
23,503 decisions/s drain-mode baseline (``results/serve.json``,
drain @ 16, pre-kernel gateway).  The in-run legacy cell is reported
alongside for a same-machine comparison.  See the "Serving throughput"
section of ``docs/performance.md``.

Environment knobs (CI runs a reduced scale):
``REPRO_SUSTAINED_SECONDS`` (measured window per cell, default 3.0),
``REPRO_SUSTAINED_WARMUP`` (discarded warmup window, default 0.5),
``REPRO_SUSTAINED_ROUNDS`` (best-of rounds per cell, default 2),
``REPRO_SUSTAINED_MIN_SPEEDUP`` (default 4.0),
``REPRO_SERVE_SCREEN_WORKERS`` (default 0 = no pooled cell).
"""

from __future__ import annotations

import asyncio
import contextlib
import gc
import json
import os
import time

import numpy as np

from conftest import emit

from repro.core.types import Query
from repro.experiments.runner import make_instance
from repro.serve import AdmissionGateway, GatewayConfig, QueryFactory, ScreenPool
from repro.serve.gateway import _Pending
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

SEED = 71
LOAD_SEED = 9
#: Pre-generated queries recycled (with fresh ids/selectivity) by the feeder.
QUERY_POOL = 4096
#: Standing-backlog bound; the feeder refills it whenever it drains.
QUEUE_BOUND = 4096
#: Recorded drain-mode throughput of the pre-kernel gateway
#: (``results/serve.json``, drain @ 16) — the speedup gate's baseline.
BASELINE_RPS = 23_503.0

DURATION_S = float(os.environ.get("REPRO_SUSTAINED_SECONDS", "3.0"))
WARMUP_S = float(os.environ.get("REPRO_SUSTAINED_WARMUP", "0.5"))
ROUNDS = int(os.environ.get("REPRO_SUSTAINED_ROUNDS", "2"))
MIN_SPEEDUP = float(os.environ.get("REPRO_SUSTAINED_MIN_SPEEDUP", "4.0"))
SCREEN_WORKERS = int(os.environ.get("REPRO_SERVE_SCREEN_WORKERS", "0"))

#: Latency histogram bucket upper bounds (ms, "le"; final bucket +inf).
HIST_BUCKETS_MS = np.array(
    [0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0]
)


class _BenchFuture:
    """Two-method stand-in for the pending future.

    The admission worker only calls ``done()`` and ``set_result()``;
    resolving stamps the decision time so latency needs no per-future
    event-loop callback.
    """

    __slots__ = ("done_at",)

    def __init__(self) -> None:
        self.done_at = 0.0

    def done(self) -> bool:
        return self.done_at > 0.0

    def set_result(self, _response) -> None:
        self.done_at = time.perf_counter()


def _clone(query: Query, query_id: int) -> Query:
    """Recycle a pre-generated query under a fresh identity.

    ``dataclasses.replace`` would re-run validation (~4 µs); a
    ``__dict__`` copy keeps the feeder out of the measurement.  The
    selectivity perturbation (≤ 1e-12 relative per id — far below any
    deadline margin) guarantees the legacy latency cache never sees a
    repeated key, matching live traffic where every query draws a fresh
    alpha.
    """
    clone = object.__new__(Query)
    fields = clone.__dict__
    fields.update(query.__dict__)
    fields["query_id"] = query_id
    jitter = 1.0 + 1e-12 * query_id
    fields["selectivity"] = tuple(a * jitter for a in query.selectivity)
    return clone


async def _sustained_cell(
    instance,
    base_queries: list[Query],
    *,
    label: str,
    engine: str,
    max_batch: int,
    workers: int = 1,
) -> dict:
    """Feed a standing backlog through the admission worker for a while.

    Runs a discarded warmup window, then a measured window: decisions
    counted from the gateway's own counters, latencies recorded per
    decision made on queries enqueued during the window.
    """
    gateway = AdmissionGateway(
        instance,
        GatewayConfig(
            max_batch=max_batch,
            queue_bound=QUEUE_BOUND,
            hold_factor=1e6,  # holds never release: pure admission path
            screen_engine=engine,
            screen_workers=workers,
        ),
    )
    if workers > 1:
        # Drain mode bypasses start() (no TCP listener), so arm the
        # screening pool the way start() would.
        gateway._pool = ScreenPool(gateway._statics, workers)
        gateway._pool.start()
    pool_size = len(base_queries)
    next_id = pool_size  # ids must never repeat: hold tags are keyed by id
    offered = 0
    recorded: list[_Pending] = []

    def make_pending() -> _Pending:
        nonlocal next_id
        pending = _Pending(
            _clone(base_queries[next_id % pool_size], next_id), _BenchFuture()
        )
        next_id += 1
        return pending

    def decided() -> int:
        return gateway.counters["admitted"] + gateway.counters["rejected"]

    worker = asyncio.create_task(gateway._admission_worker())

    async def feed_for(seconds: float, record: bool) -> None:
        """Keep the backlog full until ``seconds`` elapse, then drain."""
        nonlocal offered
        end = time.perf_counter() + seconds
        pending = make_pending()
        while True:
            now = time.perf_counter()
            if now >= end:
                break
            pending.enqueued_at = now  # stamp the *accepted* enqueue time
            if gateway._batcher.offer(pending):
                offered += 1
                if record:
                    recorded.append(pending)
                pending = make_pending()
            else:
                await asyncio.sleep(0)  # backlog full: let the worker run
        while decided() < offered:
            if worker.done():
                worker.result()  # surface a crashed admission worker
            await asyncio.sleep(0)

    try:
        await feed_for(WARMUP_S, False)  # discarded: pages in caches
        gc.collect()
        gc.disable()  # harness-side retention would dominate gen2 scans
        before = decided()
        started = time.perf_counter()
        await feed_for(DURATION_S, True)
        duration = time.perf_counter() - started
    finally:
        gc.enable()
        worker.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await worker
        for handle in gateway._holds.values():
            handle.cancel()
        if gateway._pool is not None:
            gateway._pool.close()
            gateway._pool = None

    decisions = decided() - before
    lat_ms = np.asarray(
        [p.future.done_at - p.enqueued_at for p in recorded]
    ) * 1e3
    counts = np.bincount(
        np.searchsorted(HIST_BUCKETS_MS, lat_ms, side="left"),
        minlength=HIST_BUCKETS_MS.size + 1,
    )
    batches = gateway.counters["batches"]
    return {
        "cell": label,
        "engine": engine,
        "max_batch": max_batch,
        "screen_workers": workers,
        "duration_s": duration,
        "decisions": int(decisions),
        "throughput_rps": decisions / duration,
        "admitted": gateway.counters["admitted"],
        "rejected": gateway.counters["rejected"],
        "batches": int(batches),
        "mean_batch": decided() / batches if batches else 0.0,
        "stale_rescreens": gateway.screen_stale_rescreens,
        "latency_ms": {
            "mean": float(lat_ms.mean()),
            "p50": float(np.percentile(lat_ms, 50)),
            "p90": float(np.percentile(lat_ms, 90)),
            "p99": float(np.percentile(lat_ms, 99)),
            "p999": float(np.percentile(lat_ms, 99.9)),
            "max": float(lat_ms.max()),
        },
        "histogram": {
            "buckets_le_ms": HIST_BUCKETS_MS.tolist(),
            "counts": counts.tolist(),
        },
    }


def test_serve_sustained_throughput(benchmark, results_dir):
    instance = make_instance(TwoTierConfig(), PaperDefaults(), SEED, 0)
    factory = QueryFactory(instance, seed=LOAD_SEED)
    base_queries = [factory.make() for _ in range(QUERY_POOL)]

    cells = [
        ("legacy @ 16", dict(engine="legacy", max_batch=16)),
        ("batch @ 16", dict(engine="batch", max_batch=16)),
        ("batch @ 256", dict(engine="batch", max_batch=256)),
        ("batch @ 1024", dict(engine="batch", max_batch=1024)),
    ]
    if SCREEN_WORKERS > 1:
        cells.append(
            (
                f"pool @ {SCREEN_WORKERS}x256",
                dict(engine="batch", max_batch=256, workers=SCREEN_WORKERS),
            )
        )

    def measure():
        best: dict[str, dict] = {}
        for round_idx in range(ROUNDS):
            for label, kw in cells:
                row = asyncio.run(
                    _sustained_cell(instance, base_queries, label=label, **kw)
                )
                row["round"] = round_idx
                if (
                    label not in best
                    or row["throughput_rps"] > best[label]["throughput_rps"]
                ):
                    best[label] = row
        return [best[label] for label, _ in cells]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    legacy = next(r for r in rows if r["engine"] == "legacy")
    batch_rows = [
        r for r in rows if r["engine"] == "batch" and r["screen_workers"] == 1
    ]
    best = max(batch_rows, key=lambda r: r["throughput_rps"])
    speedup = best["throughput_rps"] / BASELINE_RPS
    speedup_vs_legacy = best["throughput_rps"] / legacy["throughput_rps"]

    lines = [
        "=== sustained admission throughput "
        f"(standing backlog, {DURATION_S:.1f}s windows, best of {ROUNDS} "
        "rounds, paper topology) ===",
        "cell          | decisions/s | p50 (ms) | p99 (ms) | p999 (ms) | mean batch",
    ]
    for r in rows:
        lines.append(
            f"{r['cell']:13s} | {r['throughput_rps']:11.0f} "
            f"| {r['latency_ms']['p50']:8.2f} | {r['latency_ms']['p99']:8.2f} "
            f"| {r['latency_ms']['p999']:9.2f} | {r['mean_batch']:7.1f}"
        )
    lines.append(
        f"best batch cell: {best['cell']} at {best['throughput_rps']:.0f} rps "
        f"= {speedup:.1f}x the recorded {BASELINE_RPS:.0f} rps baseline "
        f"({speedup_vs_legacy:.1f}x the in-run legacy cell)"
    )
    host_cpus = os.cpu_count() or 1
    if SCREEN_WORKERS > 1 and host_cpus < 2:
        lines.append(
            f"WARNING: pool cell armed on a single-CPU host ({host_cpus} "
            "core): the prefork pool is correctness-pinned here but not a "
            "measured win — read its row as IPC overhead, not speedup."
        )
    emit(results_dir, "serve_sustained", "\n".join(lines))
    payload = {
        "host_cpus": host_cpus,
        "duration_s": DURATION_S,
        "warmup_s": WARMUP_S,
        "rounds": ROUNDS,
        "baseline_recorded_rps": BASELINE_RPS,
        "legacy_rps": legacy["throughput_rps"],
        "best_rps": best["throughput_rps"],
        "best_cell": best["cell"],
        "speedup": speedup,
        "speedup_vs_legacy": speedup_vs_legacy,
        "cells": rows,
    }
    (results_dir / "serve_sustained.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Decision sanity across cells: every cell replays the same
    # deterministic query stream (same pool, same id order, no
    # releases), so admissions are a monotone function of how many
    # decisions a cell got through — a cell that processed at least as
    # many queries must have admitted at least as many.  (Exact
    # per-query parity is pinned by tests/serve/test_screenpool.py.)
    for r in rows:
        if r["admitted"] + r["rejected"] >= legacy["admitted"] + legacy["rejected"]:
            assert r["admitted"] >= legacy["admitted"]
    # The acceptance gate: the stacked kernel sustains >= MIN_SPEEDUP x
    # the recorded pre-kernel drain baseline on this machine.
    assert speedup >= MIN_SPEEDUP, (
        f"sustained throughput {best['throughput_rps']:.0f} rps is "
        f"{speedup:.2f}x the recorded {BASELINE_RPS:.0f} rps baseline, "
        f"below the {MIN_SPEEDUP:.1f}x gate"
    )
