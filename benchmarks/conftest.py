"""Shared benchmark fixtures.

Set ``REPRO_BENCH_REPEATS`` to trade fidelity for speed (default 5; the
paper averages 15 topologies per point).  Every figure bench writes its
rendered table to ``benchmarks/results/<figure>.txt`` in addition to
printing it, so results survive output capture.

Set ``REPRO_BENCH_PROFILE=1`` to run every bench under a metrics registry
and print a per-span time breakdown afterwards (see
``docs/observability.md``); off by default so bench numbers stay free of
instrumentation overhead.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig
from repro.obs.profile import profiled

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def repeats() -> int:
    """Topologies averaged per sweep point."""
    return int(os.environ.get("REPRO_BENCH_REPEATS", "5"))


@pytest.fixture(scope="session")
def experiment_config(repeats: int) -> ExperimentConfig:
    """Config shared by all figure benches."""
    return ExperimentConfig(repeats=repeats)


@pytest.fixture(autouse=True)
def bench_profile(request):
    """Per-span breakdown after each bench when ``REPRO_BENCH_PROFILE=1``."""
    with profiled(request.node.name):
        yield


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Where rendered tables are persisted."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a table and persist it under ``benchmarks/results``."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
