"""Measure the LP/ILP pipeline speedups and write ``perf_lp_pipeline.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf_lp_pipeline.py

Three measurements, before vs after:

* **model build** — :func:`build_lp_model_scalar` (the original per-triple
  loop, kept in-repo as the parity reference) vs the vectorised
  :func:`build_lp_model`, on the Fig. 3-scale size-200 general instance;
* **relaxation / rounding prologue** — the old ``LpRoundingG`` prologue
  built the model twice (once directly, once inside
  ``solve_lp_relaxation``); the new path builds once and solves from the
  shared model;
* **gap-certificate pipeline** — ``solve_lp_relaxation`` + ``solve_ilp``
  on the optimality-gap bench's medium instances.  The "before" run
  reproduces the old cost structure in-process: scalar model build and
  cold per-node ``linprog`` child solves (``_ColdChildren``) instead of
  the hot-started HiGHS re-solves.

Every before/after pair also asserts parity: identical LP objectives
(float ``repr``), identical ILP objectives, identical rounded solutions.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.core import ilp
from repro.core.ilp import (
    build_lp_model,
    build_lp_model_scalar,
    solve_ilp,
    solve_lp_from_model,
)
from repro.core.lp_rounding import LpRoundingG
from repro.experiments.runner import make_instance
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

RESULTS = Path(__file__).parent / "results" / "perf_lp_pipeline.json"

FIG3_TOPOLOGY = TwoTierConfig().scaled_to(200)
MEDIUM_TOPOLOGY = TwoTierConfig(
    num_data_centers=2, num_cloudlets=8, num_switches=2, num_base_stations=3
)
MEDIUM_PARAMS = (
    PaperDefaults()
    .with_num_queries(12)
    .with_num_datasets(5)
    .with_max_datasets_per_query(2)
)


class _ColdChildren:
    """Reproduces the pre-optimisation branch-and-bound child cost: a
    full cold ``linprog`` solve per node instead of a hot-started
    re-solve."""

    def __init__(self, model: ilp.LpModel) -> None:
        self._model = model

    def solve(self, bounds):
        return ilp._solve(self._model, bounds)


def _best(fn, rounds: int):
    times = []
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return min(times), result


def _gap_pipeline(repeats: int):
    objectives = []
    nodes = 0
    for repeat in range(repeats):
        instance = make_instance(MEDIUM_TOPOLOGY, MEDIUM_PARAMS, 7, repeat)
        model = build_lp_model(instance)
        root = solve_lp_from_model(model)
        result = solve_ilp(instance, model=model, root=root)
        objectives.append(result.objective)
        nodes += result.nodes_explored
    return objectives, nodes


def main() -> None:
    fig3 = make_instance(FIG3_TOPOLOGY, PaperDefaults(), 23, 0)

    build_before, model_scalar = _best(
        lambda: build_lp_model_scalar(fig3), rounds=5
    )
    build_after, model_vector = _best(lambda: build_lp_model(fig3), rounds=5)
    assert model_vector.triples == model_scalar.triples

    # Rounding prologue: (build + build-inside-relaxation + solve) vs
    # (one shared build + solve).  The solve itself is untouched.
    prologue_before, lp_before = _best(
        lambda: (
            build_lp_model_scalar(fig3),
            solve_lp_from_model(build_lp_model_scalar(fig3)),
        )[1],
        rounds=3,
    )
    prologue_after, lp_after = _best(
        lambda: solve_lp_from_model(build_lp_model(fig3)), rounds=3
    )
    assert repr(lp_before.objective) == repr(lp_after.objective)

    rounding_after, sol_after = _best(lambda: LpRoundingG().solve(fig3), 3)

    # Gap pipeline, old cost structure: scalar build + cold B&B children.
    warm_children = ilp._ChildSolver
    ilp.build_lp_model = build_lp_model_scalar
    ilp._ChildSolver = _ColdChildren
    try:
        t0 = time.perf_counter()
        gap_obj_before, gap_nodes_before = _gap_pipeline(5)
        gap_before = time.perf_counter() - t0
    finally:
        ilp.build_lp_model = build_lp_model
        ilp._ChildSolver = warm_children

    t0 = time.perf_counter()
    gap_obj_after, gap_nodes_after = _gap_pipeline(5)
    gap_after = time.perf_counter() - t0
    assert [repr(o) for o in gap_obj_before] == [
        repr(o) for o in gap_obj_after
    ]

    payload = {
        "workload": {
            "description": (
                "build+relaxation+rounding on the Fig. 3-scale size-200 "
                "general instance (24 queries, 13 datasets, 188 placement "
                "nodes, 9348 triples); gap-certificate pipeline "
                "(relaxation + exact branch-and-bound) on the optimality-"
                "gap bench's 5 medium instances (12 queries, 5 datasets)"
            ),
            "command": "PYTHONPATH=src python benchmarks/perf_lp_pipeline.py",
        },
        "environment": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "note": (
                "'before' numbers reproduce the fbed48f cost structure "
                "in-process: build_lp_model_scalar is that commit's model "
                "build kept verbatim as the parity reference, and "
                "_ColdChildren restores the cold per-node linprog child "
                "solves; cross-checked against a real fbed48f worktree "
                "(build 31ms, rounding prologue 297ms, gap pipeline 15.5s)"
            ),
        },
        "before": {
            "commit": "fbed48f",
            "build_s": round(build_before, 4),
            "rounding_prologue_s": round(prologue_before, 4),
            "gap_pipeline_s": round(gap_before, 3),
            "gap_bnb_nodes": gap_nodes_before,
        },
        "after": {
            "build_s": round(build_after, 4),
            "rounding_prologue_s": round(prologue_after, 4),
            "lp_rounding_full_s": round(rounding_after, 4),
            "gap_pipeline_s": round(gap_after, 3),
            "gap_bnb_nodes": gap_nodes_after,
        },
        "speedup": {
            "build": round(build_before / build_after, 2),
            "rounding_prologue": round(prologue_before / prologue_after, 2),
            "gap_pipeline": round(gap_before / gap_after, 2),
        },
        "parity": (
            "vector and scalar builds produce bit-identical models "
            "(triples/placements/costs/A_ub/b_ub/bounds; pinned by "
            "tests/core/test_lp_parity.py); LP objectives and LpRoundingG "
            "solutions identical to fbed48f (checked via float repr and "
            "full assignment digests on the worktree cross-check); ILP "
            "objectives identical, node counts may differ (degenerate "
            "optimal bases can branch differently)"
        ),
        "breakdown": (
            "build: feasibility masks via pair_latency_vector + COO "
            "blocks from argsort/repeat/concatenate (~7x); relaxation at "
            "size 200 is dominated by the HiGHS dual-simplex solve, which "
            "bit-parity forbids replacing (~1.2x there, honest); the "
            "pipeline win is branch-and-bound: the model is passed to "
            "HiGHS once and children only change bounds, so the dual "
            "simplex hot-starts from the parent basis (~6.6x end-to-end "
            "on the gap certificate, larger on deeper trees)"
        ),
        "admitted_queries_lp_rounding": sorted(sol_after.admitted),
    }
    RESULTS.parent.mkdir(exist_ok=True)
    RESULTS.write_text(json.dumps(payload, indent=1) + "\n")
    print(json.dumps(payload["speedup"], indent=1))
    print(f"wrote {RESULTS}")


if __name__ == "__main__":
    main()
