#!/usr/bin/env python3
"""Scenario: choosing the replication bound K for an edge deployment.

An operator must pick ``K`` (max replicas per dataset): more replicas
admit more QoS-bound demand but cost consistency-maintenance traffic
(§2.4).  This example sweeps K, reports both sides of the trade-off for
Appro-G placements, and picks the smallest K within 5% of the admitted-
volume plateau — a realistic planning decision built entirely on the
library's public API.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import evaluate_solution, make_algorithm, verify_solution
from repro.cluster import ConsistencyModel
from repro.experiments.runner import make_instance
from repro.topology import TwoTierConfig
from repro.workload import PaperDefaults

K_VALUES = (1, 2, 3, 4, 5, 6, 7)
REPEATS = 6
HORIZON_DAYS = 30.0


def main(seed: int = 77) -> None:
    model = ConsistencyModel(threshold=0.1, growth_rate_per_day=0.05)
    rows = []
    for k in K_VALUES:
        params = PaperDefaults().with_max_replicas(k)
        volume = sync_gb = sync_cost = 0.0
        for repeat in range(REPEATS):
            instance = make_instance(TwoTierConfig(), params, seed, repeat)
            solution = make_algorithm("appro-g").solve(instance)
            verify_solution(instance, solution)
            volume += evaluate_solution(instance, solution).admitted_volume_gb
            report = model.report(instance, solution.replicas, HORIZON_DAYS)
            sync_gb += report.shipped_gb
            sync_cost += report.transfer_cost_s
        rows.append((k, volume / REPEATS, sync_gb / REPEATS, sync_cost / REPEATS))

    print("=== K planning (Appro-G, 30-day consistency horizon) ===")
    print(" K | admitted GB | sync GB shipped | sync transfer-seconds")
    for k, vol, ship, cost in rows:
        print(f"{k:2d} | {vol:11.1f} | {ship:15.1f} | {cost:21.2f}")

    plateau = max(vol for _, vol, _, _ in rows)
    chosen = next(k for k, vol, _, _ in rows if vol >= 0.95 * plateau)
    _, vol, ship, _ = rows[K_VALUES.index(chosen)]
    print(
        f"\nrecommendation: K = {chosen} reaches {vol / plateau:.0%} of the "
        f"admitted-volume plateau while shipping {ship:.0f} GB/month of "
        f"consistency traffic"
    )


if __name__ == "__main__":
    main()
