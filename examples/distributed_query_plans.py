#!/usr/bin/env python3
"""Distributed analytics plans over a replicated edge cloud, end to end.

Shows the full §2.2 story with executable semantics:

1. build logical plans (scan → filter → aggregate) over trace windows,
2. measure each plan's *actual* selectivity (partial-result bytes over
   scanned bytes) and use it as the placement problem's α,
3. place replicas with Appro-G,
4. evaluate every admitted plan the distributed way — per-window partials
   at the serving nodes, merged at the home node — and check the answers
   against central evaluation, bit for bit.

Run:  python examples/distributed_query_plans.py
"""

from __future__ import annotations

import numpy as np

from repro import ProblemInstance, Query, make_algorithm, verify_solution
from repro.core import evaluate_solution
from repro.topology import generate_two_tier
from repro.util.rng import spawn_rng
from repro.workload import (
    AggregateOp,
    FilterOp,
    QueryPlan,
    TraceConfig,
    estimated_selectivity,
    execute_distributed,
    execute_plan,
    generate_usage_trace,
    split_trace_by_time,
)
from repro.workload.params import PaperDefaults


def build_plans(num_windows: int, rng) -> list[QueryPlan]:
    """A mixed bag of analytics plans over random window ranges."""
    plans = []
    for i in range(40):
        f = int(rng.integers(1, min(5, num_windows) + 1))
        start = int(rng.integers(0, num_windows - f + 1))
        windows = tuple(range(start, start + f))
        kind = i % 3
        if kind == 0:  # app popularity
            plans.append(
                QueryPlan(windows=windows, aggregate=AggregateOp("app", "count", 128))
            )
        elif kind == 1:  # evening traffic profile
            plans.append(
                QueryPlan(
                    windows=windows,
                    filters=(FilterOp(hour_range=(18, 23)),),
                    aggregate=AggregateOp("hour", "bytes"),
                )
            )
        else:  # one app's daily usage
            plans.append(
                QueryPlan(
                    windows=windows,
                    filters=(FilterOp(app=int(rng.integers(0, 10))),),
                    aggregate=AggregateOp("day", "duration", 128),
                )
            )
    return plans


def main(seed: int = 11) -> None:
    rng = spawn_rng(seed, "plans")
    topology = generate_two_tier(seed=seed)
    trace = generate_usage_trace(
        TraceConfig(num_users=1000, num_apps=80, days=45), spawn_rng(seed, "trace")
    )
    datasets, segments = split_trace_by_time(trace, 10, topology, rng)
    plans = build_plans(len(datasets), rng)
    params = PaperDefaults()

    # Turn plans into placement queries with *measured* selectivities.
    queries = []
    for m, plan in enumerate(plans):
        alphas = estimated_selectivity(plan, trace, segments, floor=0.05)
        pivot = max(datasets[w].volume_gb for w in plan.windows)
        queries.append(
            Query(
                query_id=m,
                home_node=int(
                    topology.cloudlets[int(rng.integers(len(topology.cloudlets)))]
                ),
                demanded=plan.windows,
                selectivity=tuple(alphas[w] for w in plan.windows),
                compute_rate=float(rng.uniform(*params.compute_rate)),
                deadline_s=pivot * float(rng.uniform(0.1, 0.4)),
                name=f"plan-{m}",
            )
        )
    instance = ProblemInstance(
        topology=topology, datasets=datasets, queries=queries, max_replicas=3
    )

    solution = make_algorithm("appro-g").solve(instance)
    verify_solution(instance, solution)
    metrics = evaluate_solution(instance, solution)
    print(
        f"placed: {metrics.num_admitted}/{metrics.num_queries} plans admitted, "
        f"{metrics.admitted_volume_gb:.1f} GB demanded volume served"
    )

    # Execute every admitted plan the distributed way and check exactness.
    checked = exact = 0
    total_partial_entries = 0
    for q_id in sorted(solution.admitted):
        plan = plans[q_id]
        central = execute_plan(plan, trace, segments)
        merged, partials = execute_distributed(plan, trace, segments)
        checked += 1
        exact += int(np.allclose(central, merged))
        total_partial_entries += sum(p.size for p in partials)
    print(
        f"distributed evaluation: {exact}/{checked} admitted plans returned "
        f"bit-exact answers from replica partials "
        f"({total_partial_entries} partial-vector entries shipped)"
    )
    assert exact == checked, "distributed evaluation diverged!"

    # Show one concrete answer.
    q_id = min(solution.admitted)
    plan = plans[q_id]
    result = execute_plan(plan, trace, segments)
    top = np.argsort(-result)[:3]
    print(
        f"sample: plan-{q_id} over windows {plan.windows} → "
        f"top groups {top.tolist()} with values {result[top].round(1).tolist()}"
    )


if __name__ == "__main__":
    main()
