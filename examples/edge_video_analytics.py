#!/usr/bin/env python3
"""Scenario: metropolitan video-analytics with tight QoS tiers.

A city operator runs licence-plate / crowd-density analytics over camera
footage archives.  Footage datasets are large (tens of GB), originate at
the cloudlets that ingest the camera feeds, and are queried by three user
tiers with very different QoS:

* ``emergency``  — sub-second deadlines, small result fractions (alerts),
* ``operations`` — mid deadlines (dashboards, rolling aggregates),
* ``planning``   — relaxed deadlines (historical studies, large results).

The example builds this workload directly against the library's public
types (no generator), places replicas with Appro-G, and reports per-tier
admission — showing how the QoS-aware placement admits the emergency tier
preferentially near its home cloudlets while pushing planning queries to
remote data centers.

Run:  python examples/edge_video_analytics.py
"""

from __future__ import annotations

from collections import defaultdict

from repro import (
    Dataset,
    ProblemInstance,
    Query,
    evaluate_solution,
    generate_two_tier,
    make_algorithm,
    verify_solution,
)
from repro.topology import TwoTierConfig
from repro.util.rng import spawn_rng

TIERS = {
    # (deadline s/GB, selectivity, share of queries)
    "emergency": (0.05, 0.10, 0.3),
    "operations": (0.15, 0.40, 0.4),
    "planning": (0.60, 0.90, 0.3),
}


def build_instance(seed: int = 7) -> tuple[ProblemInstance, dict[int, str]]:
    """A hand-built problem instance for the scenario."""
    rng = spawn_rng(seed, "video")
    topology = generate_two_tier(
        TwoTierConfig(num_data_centers=4, num_cloudlets=16, num_switches=2),
        seed=seed,
    )

    # Camera-footage archives: one dataset per city district, ingested at
    # (and originating from) a cloudlet.
    datasets: dict[int, Dataset] = {}
    for n in range(10):
        origin = int(topology.cloudlets[int(rng.integers(len(topology.cloudlets)))])
        datasets[n] = Dataset(
            dataset_id=n,
            volume_gb=float(rng.uniform(2.0, 6.0)),
            origin_node=origin,
            name=f"district-{n}-footage",
        )

    queries: list[Query] = []
    tier_of: dict[int, str] = {}
    tier_names = list(TIERS)
    tier_probs = [TIERS[t][2] for t in tier_names]
    for m in range(80):
        tier = tier_names[int(rng.choice(len(tier_names), p=tier_probs))]
        rate, alpha, _ = TIERS[tier]
        f = int(rng.integers(1, 4))
        demanded = tuple(
            int(d) for d in rng.choice(len(datasets), size=f, replace=False)
        )
        pivot = max(datasets[d].volume_gb for d in demanded)
        queries.append(
            Query(
                query_id=m,
                home_node=int(
                    topology.cloudlets[int(rng.integers(len(topology.cloudlets)))]
                ),
                demanded=demanded,
                selectivity=tuple(alpha for _ in demanded),
                compute_rate=float(rng.uniform(0.75, 1.25)),
                deadline_s=pivot * rate,
                name=f"{tier}-{m}",
            )
        )
        tier_of[m] = tier
    instance = ProblemInstance(
        topology=topology, datasets=datasets, queries=queries, max_replicas=3
    )
    return instance, tier_of


def main() -> None:
    instance, tier_of = build_instance()
    print(f"scenario: {instance.num_datasets} footage archives, "
          f"{instance.num_queries} queries across {len(TIERS)} QoS tiers\n")

    for name in ("appro-g", "greedy-g", "graph-g"):
        solution = make_algorithm(name).solve(instance)
        verify_solution(instance, solution)
        metrics = evaluate_solution(instance, solution)

        by_tier: dict[str, list[int]] = defaultdict(lambda: [0, 0])
        for q_id, tier in tier_of.items():
            by_tier[tier][1] += 1
            if q_id in solution.admitted:
                by_tier[tier][0] += 1
        tier_report = "  ".join(
            f"{tier}: {adm}/{tot}" for tier, (adm, tot) in sorted(by_tier.items())
        )
        print(
            f"{name:10s} volume={metrics.admitted_volume_gb:7.1f} GB "
            f"throughput={metrics.throughput:.2f}   [{tier_report}]"
        )

    # Where did Appro put the replicas?
    solution = make_algorithm("appro-g").solve(instance)
    dc_replicas = cl_replicas = 0
    for d_id, nodes in solution.replicas.items():
        for v in nodes:
            if v in instance.topology.data_centers:
                dc_replicas += 1
            else:
                cl_replicas += 1
    print(
        f"\nappro-g replica split: {cl_replicas} on cloudlets (tight tiers), "
        f"{dc_replicas} on data centers (planning tier offload)"
    )


if __name__ == "__main__":
    main()
