#!/usr/bin/env python3
"""The paper's §4.3 testbed experiment, end to end.

Reproduces the full pipeline on the emulated DigitalOcean testbed (4
data-center VMs + 16 cloudlet VMs across San Francisco, New York, Toronto
and Singapore):

1. synthesise a mobile-app usage trace (the stand-in for the paper's
   proprietary 3M-user dataset),
2. split it into datasets by creation time,
3. issue the paper's three analytics query families (most popular apps,
   usage-by-hour, per-app usage patterns),
4. place replicas with Appro-G and with the Popularity-G benchmark,
5. execute admitted queries in the contention-aware event simulator, and
6. print actual analytics answers computed from the replicated windows.

Run:  python examples/mobile_usage_testbed.py
"""

from __future__ import annotations

import numpy as np

from repro import make_algorithm
from repro.sim import TestbedExperiment, run_testbed_experiment
from repro.util.rng import spawn_rng
from repro.workload import (
    TraceConfig,
    generate_usage_trace,
    split_trace_by_time,
    top_k_apps,
    usage_by_hour,
)
from repro.topology import digitalocean_testbed


def main(seed: int = 0) -> None:
    experiment = TestbedExperiment(
        trace=TraceConfig(num_users=1500, num_apps=120, days=60),
        num_datasets=12,
        num_queries=60,
        seed=seed,
    )

    print("=== §4.3 testbed emulation ===")
    for name in ("appro-g", "popularity-g"):
        report = run_testbed_experiment(make_algorithm(name), experiment)
        m = report.metrics
        print(
            f"{name:13s} volume={m.admitted_volume_gb:7.1f} GB "
            f"throughput={m.throughput:.2f} "
            f"admitted={m.num_admitted}/{m.num_queries} "
            f"mean-latency={report.execution.mean_response_s * 1000:6.0f} ms "
            f"results-faithful={report.results_faithful}"
        )

    # Show what the analytics actually compute, straight from the trace.
    print("\n=== sample analytics answers (ground truth from the trace) ===")
    topo = digitalocean_testbed(experiment.testbed, seed=seed)
    trace = generate_usage_trace(experiment.trace, spawn_rng(seed, "testbed/trace"))
    _, segments = split_trace_by_time(
        trace, experiment.num_datasets, topo, spawn_rng(seed, "testbed/datasets")
    )
    windows = list(range(len(segments)))
    top = top_k_apps(trace, segments, windows, k=5)
    print(f"top-5 apps by usage events: {top.tolist()}")
    hours = usage_by_hour(trace, segments, windows, app=int(top[0]))
    peak = int(np.argmax(hours))
    print(
        f"app {int(top[0])} peaks at {peak:02d}:00–{peak + 1:02d}:00 "
        f"({int(hours[peak])} events) — the diurnal evening peak"
    )


if __name__ == "__main__":
    main()
