#!/usr/bin/env python3
"""A day in the life of an edge-cloud operator, on the controller facade.

One :class:`~repro.controller.EdgeCloudController` session:

1. place the morning query batch (Appro-G) and execute it,
2. check the consistency-maintenance bill and the provider's invoice,
3. lose the two busiest cloudlets to a rack failure — repair and keep
   serving,
4. roll into the evening epoch (different query mix) with replica
   carry-over,
5. print the audit trail the session produced.

Run:  python examples/operations_lifecycle.py
"""

from __future__ import annotations

from repro import EdgeCloudController
from repro.topology import generate_two_tier
from repro.util.rng import spawn_rng
from repro.workload.datasets import generate_datasets
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_queries


def main(seed: int = 21) -> None:
    topology = generate_two_tier(seed=seed)
    params = PaperDefaults()
    datasets = generate_datasets(topology, spawn_rng(seed, "ds"), params, count=12)
    morning = generate_queries(
        topology, datasets, spawn_rng(seed, "morning"), params, count=60
    )
    evening = generate_queries(
        topology, datasets, spawn_rng(seed, "evening"), params, count=60
    )

    controller = EdgeCloudController(topology, datasets, algorithm="appro-g")

    # 1. morning batch
    metrics = controller.place(morning)
    execution = controller.execute()
    print(
        f"morning: {metrics.num_admitted}/{metrics.num_queries} admitted, "
        f"{metrics.admitted_volume_gb:.0f} GB, "
        f"mean latency {execution.mean_response_s * 1000:.0f} ms"
    )

    # 2. steady-state economics
    sync = controller.maintenance_report()
    invoice = controller.invoice()
    print(
        f"economics: ${invoice.profit:.2f} profit/month "
        f"(revenue ${invoice.revenue:.2f}); consistency ships "
        f"{sync.shipped_gb:.0f} GB/month in {sync.syncs} syncs"
    )

    # 3. rack failure hits the two busiest nodes
    load: dict[int, float] = {}
    for a in controller.solution.assignments.values():
        load[a.node] = load.get(a.node, 0.0) + a.compute_ghz
    victims = sorted(load, key=lambda v: load[v], reverse=True)[:2]
    repair = controller.handle_failure(victims)
    print(
        f"failure: nodes {sorted(repair.impact.failed_nodes)} down — "
        f"recovered {len(repair.recovered_queries)}, dropped "
        f"{len(repair.dropped_queries)}, retention {repair.availability:.0%}"
    )

    # 4. evening epoch with replica carry-over
    epoch = controller.next_epoch(evening)
    print(
        f"evening: {epoch.admitted_volume_gb:.0f} GB admitted; carried "
        f"{epoch.kept} replicas, placed {epoch.added} new "
        f"({epoch.migration_gb:.0f} GB migration), GC'd {epoch.dropped}"
    )

    # 5. the session, as its audit trail
    print("\naudit trail:")
    print(controller.audit_trail())


if __name__ == "__main__":
    main()
