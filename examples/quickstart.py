#!/usr/bin/env python3
"""Quickstart: place replicas, admit queries, and execute the placement.

Builds the paper's default two-tier edge cloud (6 data centers, 24
cloudlets, 2 switches), draws a workload from the §4.1 parameter ranges,
runs the proposed primal-dual algorithm Appro-G against the three
baselines, and finally *executes* Appro-G's placement in the discrete-
event simulator to confirm every admitted query beats its QoS deadline.

Run:  python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

from repro import (
    evaluate_solution,
    generate_two_tier,
    generate_workload,
    make_algorithm,
    verify_solution,
)
from repro.sim import ExecutionConfig, execute_placement
from repro.util.rng import spawn_rng


def main(seed: int = 42) -> None:
    topology = generate_two_tier(seed=seed)
    instance = generate_workload(topology, spawn_rng(seed, "workload"))
    print(f"topology : {topology}")
    print(
        f"workload : {instance.num_datasets} datasets, "
        f"{instance.num_queries} queries, K = {instance.max_replicas}"
    )
    print(
        f"demand   : {instance.total_demanded_volume():.1f} GB requested in total\n"
    )

    print(f"{'algorithm':14s} {'volume (GB)':>12s} {'throughput':>11s} "
          f"{'admitted':>9s} {'replicas':>9s}")
    solutions = {}
    for name in ("appro-g", "greedy-g", "graph-g", "popularity-g"):
        solution = make_algorithm(name).solve(instance)
        verify_solution(instance, solution)  # re-check every ILP constraint
        metrics = evaluate_solution(instance, solution)
        solutions[name] = solution
        print(
            f"{name:14s} {metrics.admitted_volume_gb:12.1f} "
            f"{metrics.throughput:11.3f} "
            f"{metrics.num_admitted:6d}/{metrics.num_queries:<3d}"
            f"{metrics.replicas_placed:8d}"
        )

    # Execute the winning placement for real: contention-free execution
    # must realise the analytic latencies exactly.
    report = execute_placement(
        instance, solutions["appro-g"], ExecutionConfig(contention=False)
    )
    print(
        f"\nevent-simulated Appro-G execution: {report.num_executed} queries, "
        f"mean response {report.mean_response_s * 1000:.0f} ms, "
        f"deadline violations: {report.deadline_violations}"
    )
    assert report.deadline_violations == 0, "admission control is unsound!"

    # And once more with link/compute contention, to see the loaded system.
    loaded = execute_placement(
        instance, solutions["appro-g"], ExecutionConfig(contention=True)
    )
    print(
        f"with contention: mean response {loaded.mean_response_s * 1000:.0f} ms, "
        f"violations {loaded.deadline_violations} "
        f"(analytic admission ignores queueing)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)
