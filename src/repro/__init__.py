"""repro — QoS-aware proactive data replication for edge-cloud analytics.

A complete, self-contained reproduction of

    Xia, Bai, Liang, Xu, Yao, Wang.
    "QoS-Aware Proactive Data Replication for Big Data Analytics in Edge
    Clouds."  ICPP 2019 Workshops.

The package provides:

* :mod:`repro.topology` — two-tier edge-cloud topologies (random GT-ITM
  style and the geo-distributed §4.3 testbed),
* :mod:`repro.workload` — the paper's parametric workloads plus a
  synthetic mobile-app usage trace with executable analytics,
* :mod:`repro.core` — the proactive data replication and placement
  problem, the primal-dual algorithms Appro-S / Appro-G, all three
  benchmark families, and the ILP/LP machinery,
* :mod:`repro.cluster` — resource accounting, replica ledger, and the
  §2.4 consistency model,
* :mod:`repro.sim` — a discrete-event simulator that executes placements
  and the full testbed emulation,
* :mod:`repro.experiments` — reproducers for every evaluation figure,
* :mod:`repro.obs` — opt-in tracing spans, metrics, and profiling hooks
  (no-op unless a registry is installed; see ``docs/observability.md``).

Quickstart
----------
>>> from repro import quick_compare
>>> results = quick_compare(seed=1)          # doctest: +SKIP
>>> sorted(results)                          # doctest: +SKIP
['appro-g', 'graph-g', 'greedy-g', 'popularity-g']
"""

from repro.core import (
    ApproG,
    ApproS,
    Dataset,
    GraphG,
    GraphS,
    GreedyG,
    GreedyS,
    PlacementSolution,
    PopularityG,
    PopularityS,
    PrimalDualConfig,
    ProblemInstance,
    Query,
    available_algorithms,
    evaluate_solution,
    make_algorithm,
    verify_solution,
)
from repro.topology import (
    EdgeCloudTopology,
    TwoTierConfig,
    digitalocean_testbed,
    generate_two_tier,
)
from repro.controller import EdgeCloudController
from repro.workload import PaperDefaults, generate_workload

__version__ = "1.0.0"

__all__ = [
    "ApproS",
    "ApproG",
    "GreedyS",
    "GreedyG",
    "GraphS",
    "GraphG",
    "PopularityS",
    "PopularityG",
    "PrimalDualConfig",
    "Dataset",
    "Query",
    "ProblemInstance",
    "PlacementSolution",
    "EdgeCloudTopology",
    "TwoTierConfig",
    "generate_two_tier",
    "digitalocean_testbed",
    "EdgeCloudController",
    "PaperDefaults",
    "generate_workload",
    "make_algorithm",
    "available_algorithms",
    "evaluate_solution",
    "verify_solution",
    "quick_compare",
    "__version__",
]


def quick_compare(seed: int = 0, algorithms: tuple[str, ...] | None = None):
    """Run all general-case algorithms on one random instance.

    Convenience entry point for a first contact with the library: builds
    the paper's default topology and workload from ``seed`` and returns
    algorithm name → :class:`~repro.core.metrics.SolutionMetrics`.
    """
    from repro.util.rng import spawn_rng

    algorithms = algorithms or ("appro-g", "greedy-g", "graph-g", "popularity-g")
    topology = generate_two_tier(seed=seed)
    instance = generate_workload(topology, spawn_rng(seed, "workload"))
    results = {}
    for name in algorithms:
        solution = make_algorithm(name).solve(instance)
        verify_solution(instance, solution)
        results[name] = evaluate_solution(instance, solution)
    return results
