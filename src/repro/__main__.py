"""``python -m repro`` — dispatch to :mod:`repro.cli`."""

import sys

from repro.cli import main

sys.exit(main())
