"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compare``
    Run algorithms on the paper's default setting, averaged over repeated
    topologies, and print the comparison table.
``figure``
    Regenerate one of the paper's evaluation figures (fig2…fig8) as a
    text table.
``testbed``
    Run the §4.3 testbed emulation for one algorithm and print the report.
``online``
    Play a workload as a Poisson arrival stream with compute churn.
``failover``
    Fail the most-loaded nodes under a placement and report availability
    after repair.
``serve``
    Run the admission gateway: a long-lived TCP service admitting a
    stream of ad-hoc queries against a live cluster, with micro-batched
    placement, backpressure, and periodic checkpoints (``docs/serving.md``).
``load``
    Drive a running gateway with generated Zipf load (closed- or
    open-loop) and print the latency/shed report.
``route``
    Run the front router over already-running shard gateways (discovers
    each shard's node ownership from its ``status``); ``serve --shards N``
    starts the whole sharded ensemble in one process instead.
``list``
    List the registered placement algorithms.

Global flags
------------
``--trace PATH``
    Collect trace spans and metrics during the run and write a JSONL
    event stream to ``PATH`` (see ``docs/observability.md``).
``--metrics PATH``
    Write a Prometheus-style text metrics dump to ``PATH`` after the run.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Sequence

from repro.core.online import (
    OnlineConfig,
    OnlineSession,
    appro_rule,
    greedy_rule,
    ship_greedy_rule,
    sync_greedy_rule,
)
from repro.core.registry import available_algorithms, make_algorithm
from repro.core.explain import explain_rejections, rejection_histogram
from repro.core.repair import fail_nodes, repair_placement
from repro.experiments.runner import make_instance
from repro.topology.render import render_topology
from repro.topology.testbed import digitalocean_testbed
from repro.topology.twotier import TwoTierConfig, generate_two_tier
from repro.workload.params import PaperDefaults
from repro.workload.summary import profile_instance, render_profile
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FIGURES
from repro.experiments.runner import compare_algorithms
from repro.experiments.plots import plot_figure
from repro.experiments.report import build_report
from repro.experiments.tables import render_comparison, render_figure
from repro.obs import MetricsRegistry, use_registry
from repro.obs.export import write_jsonl, write_prometheus
from repro.network.dynamics import LinkFaultConfig
from repro.sim.faults import FaultConfig
from repro.sim.testbed import TestbedExperiment, run_testbed_experiment
from repro.util.units import format_delay, format_volume

__all__ = ["main", "build_parser"]

_DEFAULT_COMPARE = ["appro-g", "greedy-g", "graph-g", "popularity-g"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "QoS-aware proactive data replication for edge-cloud analytics "
            "(reproduction of Xia et al., ICPP 2019 Workshops)"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="collect observability data and write a JSONL span/metric "
        "trace of the run to PATH",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="collect observability data and write a Prometheus-style "
        "text metrics dump to PATH",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compare = sub.add_parser(
        "compare", help="compare algorithms on the paper's default setting"
    )
    p_compare.add_argument(
        "--algorithms",
        default=",".join(_DEFAULT_COMPARE),
        help="comma-separated registry names (default: the four general-case algorithms)",
    )
    p_compare.add_argument("--repeats", type=int, default=15)
    p_compare.add_argument("--seed", type=int, default=2019)
    p_compare.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the repeat fan-out (results are "
        "identical for any value)",
    )

    p_figure = sub.add_parser(
        "figure", help="regenerate a paper figure as a text table"
    )
    p_figure.add_argument("figure_id", choices=sorted(FIGURES))
    p_figure.add_argument("--repeats", type=int, default=15)
    p_figure.add_argument("--seed", type=int, default=2019)
    p_figure.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the repeat fan-out (results are "
        "identical for any value)",
    )
    p_figure.add_argument(
        "--plot", action="store_true", help="render Unicode bar charts instead of tables"
    )

    p_testbed = sub.add_parser(
        "testbed", help="run the §4.3 geo-testbed emulation"
    )
    p_testbed.add_argument("--algorithm", default="appro-g")
    p_testbed.add_argument("--seed", type=int, default=0)
    p_testbed.add_argument("--queries", type=int, default=50)
    p_testbed.add_argument("--datasets", type=int, default=12)

    p_online = sub.add_parser(
        "online", help="Poisson arrival stream with compute churn"
    )
    p_online.add_argument(
        "--rule",
        choices=["appro", "greedy", "greedy-ship", "greedy-sync"],
        default="appro",
    )
    p_online.add_argument("--seed", type=int, default=0)
    p_online.add_argument("--gap", type=float, default=0.2,
                          help="mean inter-arrival seconds")
    p_online.add_argument("--hold-factor", type=float, default=1.0,
                          help="compute hold time as a multiple of the "
                          "query's analytic latency")
    p_online.add_argument("--faults", action="store_true",
                          help="inject seeded node crash/recover events "
                          "during the session")
    p_online.add_argument("--mttf", type=float, default=5.0,
                          help="mean seconds between node crashes "
                          "(with --faults)")
    p_online.add_argument("--downtime", type=float, default=1.0,
                          help="mean node downtime seconds (with --faults)")
    p_online.add_argument("--fault-seed", type=int, default=0,
                          help="fault-schedule seed (with --faults)")
    p_online.add_argument("--link-faults", action="store_true",
                          help="inject seeded link degrade/sever/restore "
                          "events (and correlated partitions) during the "
                          "session, recomputing paths per event")
    p_online.add_argument("--link-mttf", type=float, default=5.0,
                          help="mean seconds between link events "
                          "(with --link-faults)")
    p_online.add_argument("--link-repair", type=float, default=1.0,
                          help="mean link repair seconds (with --link-faults)")
    p_online.add_argument("--link-inflation", type=float, default=4.0,
                          help="delay multiplier applied by degrade events "
                          "(with --link-faults)")
    p_online.add_argument("--partition-prob", type=float, default=0.0,
                          help="probability a sever escalates to a regional "
                          "partition cutting a whole node off "
                          "(with --link-faults)")
    p_online.add_argument("--link-seed", type=int, default=0,
                          help="link-schedule seed (with --link-faults)")

    p_failover = sub.add_parser(
        "failover", help="node-failure impact and repair for one placement"
    )
    p_failover.add_argument("--algorithm", default="appro-g")
    p_failover.add_argument("--failures", type=int, default=2)
    p_failover.add_argument("--seed", type=int, default=0)

    p_serve = sub.add_parser(
        "serve", help="run the long-lived admission gateway (docs/serving.md)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="listen port (0 = OS-assigned, printed at start)")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="instance seed; a load generator must use the "
                         "same seed to target the same datasets")
    p_serve.add_argument(
        "--rule",
        choices=["appro", "greedy", "greedy-ship", "greedy-sync"],
        default="appro",
    )
    p_serve.add_argument("--max-batch", type=int, default=16,
                         help="micro-batch flush size (1 disables batching)")
    p_serve.add_argument("--max-wait-ms", type=float, default=0.0,
                         help="micro-batch accumulation window "
                         "(0 = eager: flush the queued backlog)")
    p_serve.add_argument("--queue-bound", type=int, default=256,
                         help="pending-queue capacity before shedding")
    p_serve.add_argument("--screen-workers", type=int, default=1,
                         help="prefork screening processes sharding the "
                              "batch prefilter (1 = screen inline)")
    p_serve.add_argument("--uvloop", action="store_true",
                         help="run on uvloop when installed "
                              "(pip install .[perf]; stdlib loop otherwise)")
    p_serve.add_argument("--checkpoint", metavar="PATH", default=None,
                         help="checkpoint file; restored on startup when it "
                         "exists, rewritten periodically and on shutdown")
    p_serve.add_argument("--checkpoint-interval", type=float, default=5.0,
                         help="seconds between periodic checkpoints")
    p_serve.add_argument("--reopt", action="store_true",
                         help="enable the live re-optimization daemon "
                              "(bounded-churn replica migration under drift)")
    p_serve.add_argument("--reopt-interval", type=float, default=5.0,
                         help="seconds between re-optimization cycles")
    p_serve.add_argument("--reopt-window", type=int, default=128,
                         help="recent submissions the planner sees")
    p_serve.add_argument("--reopt-max-gb", type=float, default=50.0,
                         help="per-cycle migration volume cap (GB)")
    p_serve.add_argument("--reopt-max-moves", type=int, default=2,
                         help="per-dataset replica mutations per cycle "
                              "(0 = unbounded)")
    p_serve.add_argument("--reopt-drift", type=float, default=0.25,
                         help="total-variation drift threshold gating cycles")
    p_serve.add_argument("--reopt-planner", choices=["appro", "lp"],
                         default="appro",
                         help="pipeline producing the target placement")
    p_serve.add_argument("--predict", action="store_true",
                         help="enable the predictive pre-placement daemon "
                              "(replica adds ahead of forecast demand)")
    p_serve.add_argument("--predict-interval", type=float, default=5.0,
                         help="seconds between pre-placement cycles")
    p_serve.add_argument("--predict-window", type=int, default=256,
                         help="sliding demand window the forecaster sees "
                              "(observations)")
    p_serve.add_argument("--predict-threshold", type=float, default=0.02,
                         help="min predicted demand share a (region, dataset) "
                              "needs to earn a pre-placed copy")
    p_serve.add_argument("--predict-max-gb", type=float, default=25.0,
                         help="per-cycle pre-placement volume cap (GB)")
    p_serve.add_argument("--predict-estimator", choices=["ewma", "zipf"],
                         default="ewma",
                         help="demand estimator over the sliding window")
    p_serve.add_argument("--netfaults", action="store_true",
                         help="enable the live network-dynamics daemon "
                              "(seeded link degrade/sever/partition events "
                              "with epoch-stamped path recomputation)")
    p_serve.add_argument("--netfault-interval", type=float, default=1.0,
                         help="seconds between network-dynamics cycles "
                              "(also the schedule-clock step per cycle)")
    p_serve.add_argument("--netfault-horizon", type=float, default=600.0,
                         help="seconds of link-event schedule to pre-build")
    p_serve.add_argument("--link-mttf", type=float, default=5.0,
                         help="mean schedule-seconds between link events "
                              "(with --netfaults)")
    p_serve.add_argument("--link-repair", type=float, default=1.0,
                         help="mean link repair schedule-seconds "
                              "(with --netfaults)")
    p_serve.add_argument("--link-inflation", type=float, default=4.0,
                         help="delay multiplier applied by degrade events")
    p_serve.add_argument("--partition-prob", type=float, default=0.0,
                         help="probability a sever escalates to a regional "
                              "partition cutting a whole node off")
    p_serve.add_argument("--netfault-seed", type=int, default=0,
                         help="link-schedule seed (with --netfaults)")
    p_serve.add_argument("--duration", type=float, default=None,
                         help="stop after this many seconds (default: run "
                         "until a shutdown request or Ctrl-C)")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="partition the placement nodes across this many "
                              "shard gateways behind a front router "
                              "(docs/serving.md; incompatible with --reopt)")
    p_serve.add_argument("--reserve-ttl", type=float, default=5.0,
                         help="seconds a cross-shard reservation survives "
                              "without a commit before the shard expires it")
    p_serve.add_argument("--shard-index", type=int, default=None,
                         help="with --shards N: run only shard I of the plan "
                              "as a standalone gateway (front it with "
                              "`repro route`) instead of the whole ensemble")

    p_route = sub.add_parser(
        "route", help="run the front router over running shard gateways"
    )
    p_route.add_argument("--host", default="127.0.0.1")
    p_route.add_argument("--port", type=int, default=0,
                         help="router listen port (0 = ephemeral, printed)")
    p_route.add_argument("--seed", type=int, default=0,
                         help="instance seed (must match the shard gateways')")
    p_route.add_argument("--shard", action="append", required=True,
                         metavar="HOST:PORT",
                         help="address of one shard gateway (repeat per shard); "
                              "node ownership is discovered from its status")
    p_route.add_argument("--rpc-timeout", type=float, default=30.0,
                         help="bound on each shard RPC issued for a client")
    p_route.add_argument("--duration", type=float, default=None,
                         help="stop after this many seconds (default: run "
                              "until a shutdown request or Ctrl-C)")

    p_load = sub.add_parser(
        "load", help="drive a running gateway with generated Zipf load"
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, required=True)
    p_load.add_argument("--seed", type=int, default=0,
                        help="instance seed (must match the gateway's)")
    p_load.add_argument("--requests", type=int, default=200)
    p_load.add_argument("--mode", choices=["closed", "open"], default="closed")
    p_load.add_argument("--concurrency", type=int, default=8,
                        help="in-flight requests (closed-loop mode)")
    p_load.add_argument("--rate", type=float, default=200.0,
                        help="offered requests/second (open-loop mode)")
    p_load.add_argument("--load-seed", type=int, default=0,
                        help="query-stream seed (vary for distinct workloads)")
    p_load.add_argument("--rotate", type=int, default=0,
                        help="rotate Zipf dataset popularity by this many "
                             "positions (synthesises demand drift)")
    p_load.add_argument("--trace-mode", default="stationary",
                        choices=["stationary", "burst", "diurnal",
                                 "flash-crowd", "mobility"],
                        help="popularity trajectory over the stream "
                             "(recurring bursts, slow rotation, a flash "
                             "crowd on a cold dataset, or home-station "
                             "churn standing in for user mobility)")
    p_load.add_argument("--trace-period", type=int, default=120,
                        help="phase length (draws) of the non-stationary "
                             "trace modes")
    p_load.add_argument("--status", action="store_true",
                        help="fetch and render the gateway's status "
                             "(screen-stage timings, latency histogram) "
                             "after the run")
    p_load.add_argument("--shutdown", action="store_true",
                        help="send a shutdown request after the run")

    p_report = sub.add_parser(
        "report", help="assemble persisted bench tables into one markdown report"
    )
    p_report.add_argument(
        "--results-dir", default="benchmarks/results",
        help="directory the benches wrote their tables to",
    )
    p_report.add_argument("--output", default="-",
                          help="output path, or - for stdout")

    p_topology = sub.add_parser(
        "topology", help="render a topology as text (summary + map)"
    )
    p_topology.add_argument(
        "--kind", choices=["paper", "testbed", "figure1"], default="paper"
    )
    p_topology.add_argument("--seed", type=int, default=0)

    p_describe = sub.add_parser(
        "describe", help="profile a generated instance's regime"
    )
    p_describe.add_argument("--seed", type=int, default=0)

    p_explain = sub.add_parser(
        "explain", help="diagnose why queries were rejected by a placement"
    )
    p_explain.add_argument("--algorithm", default="appro-g")
    p_explain.add_argument("--seed", type=int, default=0)

    sub.add_parser("list", help="list registered placement algorithms")
    return parser


def _cmd_compare(args: argparse.Namespace) -> int:
    names = [n.strip() for n in args.algorithms.split(",") if n.strip()]
    unknown = [n for n in names if n not in available_algorithms()]
    if unknown:
        print(f"unknown algorithm(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(available_algorithms())}", file=sys.stderr)
        return 2
    config = ExperimentConfig(
        repeats=args.repeats, seed=args.seed, n_jobs=args.jobs
    )
    results = compare_algorithms(names, config)
    print(render_comparison(results))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        repeats=args.repeats, seed=args.seed, n_jobs=args.jobs
    )
    series = FIGURES[args.figure_id](config)
    print(plot_figure(series) if args.plot else render_figure(series))
    return 0


def _cmd_testbed(args: argparse.Namespace) -> int:
    if args.algorithm not in available_algorithms():
        print(f"unknown algorithm: {args.algorithm}", file=sys.stderr)
        return 2
    experiment = TestbedExperiment(
        num_queries=args.queries, num_datasets=args.datasets, seed=args.seed
    )
    report = run_testbed_experiment(make_algorithm(args.algorithm), experiment)
    m = report.metrics
    print(f"algorithm         : {args.algorithm}")
    print(f"admitted          : {m.num_admitted}/{m.num_queries} "
          f"(throughput {m.throughput:.3f})")
    print(f"admitted volume   : {format_volume(m.admitted_volume_gb)}")
    print(f"replicas placed   : {m.replicas_placed}")
    print(f"mean response     : {format_delay(report.execution.mean_response_s)}")
    print(f"deadline misses   : {report.execution.deadline_violations} "
          f"(contention-aware execution)")
    print(f"analytics checked : {report.analytics_checked} "
          f"(faithful: {report.results_faithful})")
    return 0


def _cmd_online(args: argparse.Namespace) -> int:
    instance = make_instance(TwoTierConfig(), PaperDefaults(), args.seed, 0)
    rules = {
        "appro": appro_rule,
        "greedy": greedy_rule,
        "greedy-ship": ship_greedy_rule,
        "greedy-sync": sync_greedy_rule,
    }
    rule = rules[args.rule]
    faults = None
    if args.faults:
        faults = FaultConfig(
            mean_time_to_failure_s=args.mttf,
            mean_downtime_s=args.downtime,
            seed=args.fault_seed,
        )
    link_faults = None
    if args.link_faults:
        link_faults = LinkFaultConfig(
            mean_time_to_event_s=args.link_mttf,
            mean_repair_s=args.link_repair,
            inflation=args.link_inflation,
            partition_prob=args.partition_prob,
            seed=args.link_seed,
        )
    report = OnlineSession(
        OnlineConfig(
            mean_interarrival_s=args.gap,
            hold_factor=args.hold_factor,
            seed=args.seed,
            faults=faults,
            link_faults=link_faults,
        )
    ).run(instance, rule)
    print(f"rule             : {args.rule}")
    print(f"arrivals         : {len(report.outcomes)}")
    print(f"admitted volume  : {format_volume(report.admitted_volume_gb)}")
    print(f"throughput       : {report.throughput:.3f}")
    print(f"peak allocation  : {report.peak_allocated_ghz:.1f} GHz")
    print(f"replicas placed  : {report.replicas_placed}")
    if report.faults is not None:
        f = report.faults
        print(f"crashes          : {f.crashes} ({f.recoveries} recovered)")
        print(f"availability     : {f.time_weighted_availability:.3f} "
              f"(time-weighted node uptime)")
        print(f"failovers        : {f.failovers_succeeded}/{f.failovers_attempted} "
              f"succeeded, MTTR {f.mttr_s * 1000:.1f} ms")
        print(f"queries hit      : {f.queries_recovered} recovered, "
              f"{f.queries_interrupted} interrupted")
        print(f"degraded admit   : {f.degraded_admitted}/{f.degraded_arrivals} "
              f"(throughput {f.degraded_throughput:.3f})")
    if report.netfaults is not None:
        n = report.netfaults
        print(f"link events      : {n.degrades} degraded, {n.severs} severed "
              f"({n.partitions} partitions), {n.restores} restored")
        print(f"path recomputes  : {n.recomputes}")
        print(f"link availability: {n.time_weighted_link_availability:.3f} "
              f"(time-weighted)")
        print(f"queries hit      : {n.queries_rerouted} rerouted, "
              f"{n.queries_recovered} recovered, "
              f"{n.queries_interrupted} interrupted")
    return 0


def _cmd_failover(args: argparse.Namespace) -> int:
    if args.algorithm not in available_algorithms():
        print(f"unknown algorithm: {args.algorithm}", file=sys.stderr)
        return 2
    instance = make_instance(TwoTierConfig(), PaperDefaults(), args.seed, 0)
    solution = make_algorithm(args.algorithm).solve(instance)
    load: dict[int, float] = {}
    for a in solution.assignments.values():
        load[a.node] = load.get(a.node, 0.0) + a.compute_ghz
    victims = sorted(load, key=lambda v: load[v], reverse=True)[: args.failures]
    impact = fail_nodes(instance, solution, victims)
    report = repair_placement(instance, solution, impact)
    print(f"algorithm        : {args.algorithm}")
    print(f"failed nodes     : {sorted(impact.failed_nodes)}")
    print(f"lost pairs       : {len(impact.lost_pairs)} "
          f"across {len(impact.affected_queries)} queries")
    print(f"recovered        : {len(report.recovered_queries)} queries")
    print(f"dropped          : {len(report.dropped_queries)} queries")
    print(f"volume retention : {report.availability:.1%}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import (
        AdmissionGateway,
        GatewayConfig,
        NetFaultConfig,
        PreplacerConfig,
        ReoptimizerConfig,
        maybe_install_uvloop,
    )

    if args.uvloop:
        maybe_install_uvloop()
    if args.shards > 1 and args.shard_index is None:
        return _cmd_serve_sharded(args)

    shard_nodes = None
    shard_id = None
    if args.shard_index is not None:
        from repro.serve import ShardPlan
        from repro.util.validation import ValidationError

        if not 0 <= args.shard_index < args.shards:
            print(
                f"--shard-index {args.shard_index} outside 0..{args.shards - 1}",
                file=sys.stderr,
            )
            return 2
        if args.reopt:
            print("--reopt is incompatible with shard-scoped serving",
                  file=sys.stderr)
            return 2
        if args.predict:
            print("--predict is incompatible with shard-scoped serving",
                  file=sys.stderr)
            return 2
        if args.netfaults:
            print("--netfaults is incompatible with shard-scoped serving",
                  file=sys.stderr)
            return 2
        plan_instance = make_instance(TwoTierConfig(), PaperDefaults(), args.seed, 0)
        try:
            plan = ShardPlan.build(plan_instance, args.shards)
        except ValidationError as exc:
            print(exc, file=sys.stderr)
            return 2
        shard_nodes = plan.members[args.shard_index]
        shard_id = args.shard_index

    reopt = None
    if args.reopt:
        reopt = ReoptimizerConfig(
            interval_s=args.reopt_interval,
            window=args.reopt_window,
            min_window=min(16, args.reopt_window),
            max_migration_gb=args.reopt_max_gb,
            max_moves_per_dataset=args.reopt_max_moves or None,
            drift_threshold=args.reopt_drift,
            planner=args.reopt_planner,
        )
    predict = None
    if args.predict:
        predict = PreplacerConfig(
            interval_s=args.predict_interval,
            window=args.predict_window,
            min_window=min(16, args.predict_window),
            threshold=args.predict_threshold,
            max_preplace_gb=args.predict_max_gb,
            estimator=args.predict_estimator,
        )
    netfaults = None
    if args.netfaults:
        netfaults = NetFaultConfig(
            interval_s=args.netfault_interval,
            horizon_s=args.netfault_horizon,
            faults=LinkFaultConfig(
                mean_time_to_event_s=args.link_mttf,
                mean_repair_s=args.link_repair,
                inflation=args.link_inflation,
                partition_prob=args.partition_prob,
                seed=args.netfault_seed,
            ),
        )
    instance = make_instance(TwoTierConfig(), PaperDefaults(), args.seed, 0)
    gateway = AdmissionGateway(
        instance,
        GatewayConfig(
            host=args.host,
            port=args.port,
            rule=args.rule,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            queue_bound=args.queue_bound,
            screen_workers=args.screen_workers,
            use_uvloop=args.uvloop,
            checkpoint_path=args.checkpoint,
            checkpoint_interval_s=args.checkpoint_interval,
            reopt=reopt,
            predict=predict,
            netfaults=netfaults,
            shard_nodes=shard_nodes,
            shard_id=shard_id,
            reserve_ttl_s=args.reserve_ttl,
        ),
    )

    async def run() -> None:
        await gateway.start()
        host, port = gateway.address
        recovered = " (state recovered from checkpoint)" if gateway.recovered else ""
        scoped = (
            f" (shard {shard_id}/{args.shards}, {len(shard_nodes)} nodes)"
            if shard_nodes is not None
            else ""
        )
        print(f"gateway listening on {host}:{port}{recovered}{scoped}", flush=True)
        try:
            if args.duration is None:
                await gateway.wait_closed()
            else:
                await gateway.run_for(args.duration)
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        counters = gateway.counters
        with contextlib.suppress(BrokenPipeError):
            print(
                f"served {counters['submitted']} submissions: "
                f"{counters['admitted']} admitted, {counters['rejected']} rejected, "
                f"{counters['fast_rejected']} fast-rejected, {counters['shed']} shed"
            )
    return 0


def _cmd_serve_sharded(args: argparse.Namespace) -> int:
    from repro.serve import GatewayConfig, RouterConfig, ShardCluster, ShardPlan
    from repro.util.validation import ValidationError

    if args.reopt:
        print("--reopt is incompatible with --shards > 1", file=sys.stderr)
        return 2
    if args.predict:
        print("--predict is incompatible with --shards > 1", file=sys.stderr)
        return 2
    if args.netfaults:
        print("--netfaults is incompatible with --shards > 1", file=sys.stderr)
        return 2
    instance = make_instance(TwoTierConfig(), PaperDefaults(), args.seed, 0)
    try:
        plan = ShardPlan.build(instance, args.shards)
    except ValidationError as exc:
        print(exc, file=sys.stderr)
        return 2
    cluster = ShardCluster(
        instance,
        plan,
        GatewayConfig(
            rule=args.rule,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            queue_bound=args.queue_bound,
            screen_workers=args.screen_workers,
            use_uvloop=args.uvloop,
            checkpoint_path=args.checkpoint,
            checkpoint_interval_s=args.checkpoint_interval,
            reserve_ttl_s=args.reserve_ttl,
        ),
        RouterConfig(host=args.host, port=args.port),
    )
    try:
        host, port = cluster.start()
        sizes = "/".join(str(len(m)) for m in plan.members)
        print(
            f"router listening on {host}:{port} "
            f"({plan.num_shards} shards [{sizes} nodes], {plan.method} plan)",
            flush=True,
        )
        try:
            cluster.wait(args.duration)
        except KeyboardInterrupt:
            pass
    finally:
        cluster.stop()
        totals: dict[str, int] = {}
        for gateway in cluster.gateways:
            for key, value in gateway.counters.items():
                totals[key] = totals.get(key, 0) + value
        router_counts = (
            cluster.router.counters if cluster.router is not None else {}
        )
        with contextlib.suppress(BrokenPipeError):
            print(
                f"served {totals.get('submitted', 0)} shard submissions "
                f"({router_counts.get('routed_cross', 0)} cross-shard): "
                f"{totals.get('admitted', 0)} admitted, "
                f"{totals.get('rejected', 0)} rejected, "
                f"{totals.get('fast_rejected', 0)} fast-rejected, "
                f"{totals.get('shed', 0)} shed"
            )
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import FrontRouter, GatewayClient, RouterConfig

    instance = make_instance(TwoTierConfig(), PaperDefaults(), args.seed, 0)
    addresses: list[tuple[str, int]] = []
    for spec in args.shard:
        host, sep, port = spec.rpartition(":")
        if not sep or not port.isdigit():
            print(f"bad --shard address {spec!r} (want HOST:PORT)", file=sys.stderr)
            return 2
        addresses.append((host, int(port)))

    async def run() -> None:
        shards = []
        for host, port in addresses:
            async with await GatewayClient.connect(host, port) as client:
                status = await client.status()
            shard = status.get("shard")
            if not isinstance(shard, dict) or "nodes" not in shard:
                raise RuntimeError(
                    f"gateway at {host}:{port} reports no shard membership "
                    "(start it with shard_nodes / serve --shards)"
                )
            shards.append(((host, port), tuple(shard["nodes"])))
        router = FrontRouter(
            instance,
            shards,
            RouterConfig(
                host=args.host, port=args.port, rpc_timeout_s=args.rpc_timeout
            ),
        )
        await router.start()
        host, port = router.address
        print(
            f"router listening on {host}:{port} ({len(shards)} shards)",
            flush=True,
        )
        try:
            if args.duration is None:
                await router.wait_closed()
            else:
                await router.run_for(args.duration)
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    except (ConnectionRefusedError, RuntimeError) as exc:
        print(exc, file=sys.stderr)
        return 2
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import GatewayClient, QueryFactory, run_closed_loop, run_open_loop

    instance = make_instance(TwoTierConfig(), PaperDefaults(), args.seed, 0)
    factory = QueryFactory(
        instance,
        seed=args.load_seed,
        rotate=args.rotate,
        mode=args.trace_mode,
        period=args.trace_period,
    )

    async def run():
        if args.mode == "closed":
            report = await run_closed_loop(
                args.host,
                args.port,
                factory,
                num_requests=args.requests,
                concurrency=args.concurrency,
            )
        else:
            report = await run_open_loop(
                args.host,
                args.port,
                factory,
                num_requests=args.requests,
                rate_rps=args.rate,
                seed=args.load_seed,
            )
        status_text = None
        if args.status:
            async with await GatewayClient.connect(args.host, args.port) as client:
                status_text = GatewayClient.render_status(await client.status())
        if args.shutdown:
            async with await GatewayClient.connect(args.host, args.port) as client:
                await client.shutdown()
        return report, status_text

    try:
        report, status_text = asyncio.run(run())
    except ConnectionRefusedError:
        print(f"no gateway at {args.host}:{args.port}", file=sys.stderr)
        return 2
    for key, value in report.summary().items():
        if isinstance(value, float):
            print(f"{key:18s}: {value:.3f}")
        else:
            print(f"{key:18s}: {value}")
    if status_text is not None:
        print(status_text)
    return 1 if report.protocol_errors else 0


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        report = build_report(args.results_dir)
    except Exception as exc:  # ValidationError with guidance
        print(exc, file=sys.stderr)
        return 2
    if args.output == "-":
        print(report, end="")
    else:
        from pathlib import Path

        Path(args.output).write_text(report)
        print(f"wrote {args.output}")
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    if args.kind == "testbed":
        topology = digitalocean_testbed(seed=args.seed)
    elif args.kind == "figure1":
        from repro.topology.twotier import example_figure1

        topology = example_figure1(seed=args.seed or 7)
    else:
        topology = generate_two_tier(seed=args.seed)
    print(render_topology(topology))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    instance = make_instance(TwoTierConfig(), PaperDefaults(), args.seed, 0)
    print(render_profile(profile_instance(instance)))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    if args.algorithm not in available_algorithms():
        print(f"unknown algorithm: {args.algorithm}", file=sys.stderr)
        return 2
    instance = make_instance(TwoTierConfig(), PaperDefaults(), args.seed, 0)
    solution = make_algorithm(args.algorithm).solve(instance)
    diagnoses = explain_rejections(instance, solution)
    hist = rejection_histogram(diagnoses)
    total = len(solution.rejected)
    print(
        f"{args.algorithm}: {len(solution.admitted)} admitted, "
        f"{total} rejected"
    )
    if total:
        print("rejections by bottleneck:")
        for reason, count in hist.items():
            if count:
                print(f"  {reason.value:24s} {count:4d} ({count / total:.0%})")
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    for name in available_algorithms():
        print(name)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "compare": _cmd_compare,
        "figure": _cmd_figure,
        "testbed": _cmd_testbed,
        "online": _cmd_online,
        "failover": _cmd_failover,
        "serve": _cmd_serve,
        "route": _cmd_route,
        "load": _cmd_load,
        "explain": _cmd_explain,
        "describe": _cmd_describe,
        "topology": _cmd_topology,
        "report": _cmd_report,
        "list": _cmd_list,
    }
    handler = handlers[args.command]
    if args.trace is None and args.metrics is None:
        return handler(args)
    # Observability requested: run the command under a collecting registry,
    # the whole invocation wrapped in one root span.
    registry = MetricsRegistry()
    with use_registry(registry):
        with registry.span(f"cli.{args.command}", command=args.command):
            code = handler(args)
    if args.trace is not None:
        write_jsonl(registry, args.trace)
    if args.metrics is not None:
        write_prometheus(registry, args.metrics)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
