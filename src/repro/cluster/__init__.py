"""Mutable edge-cloud state: compute accounting, replicas, consistency.

Placement algorithms mutate a :class:`repro.cluster.state.ClusterState`
(compute allocations + replica locations) as they admit queries.  The state
supports cheap snapshots and rollback so all-or-nothing admission of
multi-dataset queries (Appro-G and friends) can tentatively place replicas
and allocate compute, then revert when any demanded dataset turns out to be
unservable.
"""

from repro.cluster.node import ComputeNode, CapacityError
from repro.cluster.replicas import ReplicaStore, ReplicaError
from repro.cluster.links import LinkLedger, LinkBudgetError
from repro.cluster.state import ClusterState
from repro.cluster.consistency import ConsistencyModel, SyncReport

__all__ = [
    "ComputeNode",
    "CapacityError",
    "ReplicaStore",
    "ReplicaError",
    "ClusterState",
    "LinkLedger",
    "LinkBudgetError",
    "ConsistencyModel",
    "SyncReport",
]
