"""Threshold-triggered replica consistency maintenance (§2.4).

The paper handles dynamic data with a threshold rule: "when the ratio of
the volume of new generated data achieves the threshold, an update
operation is made between the original data and its replicas".  This module
models the cost of that rule so ablations can quantify the paper's claim
that *more replicas are not always better* — each extra replica multiplies
the synchronisation traffic.

The model: dataset ``S_n`` grows at ``growth_rate`` (fraction of ``|S_n|``
per day).  A sync fires whenever accumulated new data reaches
``threshold · |S_n|``; each sync ships the accumulated delta from the
origin to every other replica along minimum-delay paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.core.instance import ProblemInstance
from repro.util.validation import check_fraction, check_non_negative, check_positive

__all__ = ["ConsistencyModel", "SyncReport"]


@dataclass(frozen=True)
class SyncReport:
    """Aggregate consistency-maintenance cost over a horizon.

    Attributes
    ----------
    syncs:
        Total number of update operations fired.
    shipped_gb:
        Total replica-delta volume shipped origin → replicas.
    transfer_cost_s:
        Σ over shipments of ``delta_gb × dt(p(origin, replica))`` — the
        aggregate network time the maintenance traffic occupies.
    """

    syncs: int
    shipped_gb: float
    transfer_cost_s: float

    def __add__(self, other: "SyncReport") -> "SyncReport":
        return SyncReport(
            self.syncs + other.syncs,
            self.shipped_gb + other.shipped_gb,
            self.transfer_cost_s + other.transfer_cost_s,
        )


@dataclass(frozen=True)
class ConsistencyModel:
    """Threshold-based update propagation.

    Attributes
    ----------
    threshold:
        Ratio of new-data volume to original volume that triggers a sync
        (the paper's §2.4 threshold), in (0, 1].
    growth_rate_per_day:
        New data generated per day as a fraction of the dataset's volume.
    """

    threshold: float = 0.1
    growth_rate_per_day: float = 0.05

    def __post_init__(self) -> None:
        check_fraction("threshold", self.threshold)
        check_non_negative("growth_rate_per_day", self.growth_rate_per_day)

    def syncs_over(self, horizon_days: float) -> int:
        """How many update operations fire for one dataset over the horizon.

        The dataset accumulates ``growth_rate_per_day`` per day and fires
        each time the accumulation crosses ``threshold``.
        """
        check_positive("horizon_days", horizon_days)
        if self.growth_rate_per_day == 0.0:
            return 0
        return int(math.floor(
            self.growth_rate_per_day * horizon_days / self.threshold
        ))

    def report(
        self,
        instance: ProblemInstance,
        replicas: Mapping[int, tuple[int, ...]],
        horizon_days: float = 30.0,
    ) -> SyncReport:
        """Cost of keeping a placement consistent over ``horizon_days``.

        Parameters
        ----------
        instance:
            Supplies volumes, origins and path delays.
        replicas:
            Dataset id → nodes holding copies (a
            :attr:`~repro.core.types.PlacementSolution.replicas` mapping).
        horizon_days:
            Evaluation horizon.
        """
        syncs = self.syncs_over(horizon_days)
        if syncs == 0:
            return SyncReport(0, 0.0, 0.0)
        total_shipped = 0.0
        total_cost = 0.0
        fired = 0
        for dataset_id, nodes in replicas.items():
            dataset = instance.dataset(dataset_id)
            origin = dataset.origin_node
            slaves = [v for v in nodes if v != origin]
            if not slaves:
                continue
            delta_gb = self.threshold * dataset.volume_gb
            fired += syncs
            total_shipped += syncs * delta_gb * len(slaves)
            for v in slaves:
                total_cost += syncs * delta_gb * instance.paths.delay(origin, v)
        return SyncReport(fired, total_shipped, total_cost)
