"""Per-link bandwidth ledgers.

The paper's model constrains node compute only; intermediate-result
traffic is free.  The bandwidth extension gives every link a traffic
budget per evaluation window (GB of intermediate results it can carry)
and accounts each assignment's flow on every link of its path — the same
ledger discipline as :class:`~repro.cluster.node.ComputeNode`.
"""

from __future__ import annotations

from repro.topology.twotier import EdgeCloudTopology
from repro.util.validation import check_non_negative, check_positive

__all__ = ["LinkBudgetError", "LinkLedger"]

_EPS = 1e-9


class LinkBudgetError(RuntimeError):
    """Raised when a flow would exceed a link's traffic budget."""


class LinkLedger:
    """Traffic budgets for every link of a topology.

    Parameters
    ----------
    topology:
        Supplies the link set.
    budget_gb:
        Uniform per-link budget (GB of intermediate-result traffic per
        evaluation window), or a per-link mapping.
    """

    def __init__(
        self,
        topology: EdgeCloudTopology,
        budget_gb: float | dict[tuple[int, int], float],
    ) -> None:
        links = list(topology.link_delays)
        if isinstance(budget_gb, dict):
            budgets = {}
            for edge in links:
                try:
                    budgets[edge] = float(budget_gb[edge])
                except KeyError:
                    raise LinkBudgetError(f"no budget for link {edge}") from None
        else:
            check_positive("budget_gb", budget_gb)
            budgets = {edge: float(budget_gb) for edge in links}
        for edge, cap in budgets.items():
            check_positive(f"budget of link {edge}", cap)
        self._capacity = budgets
        self._used: dict[tuple[int, int], float] = {e: 0.0 for e in links}
        self._allocations: dict[object, list[tuple[tuple[int, int], float]]] = {}

    @staticmethod
    def _key(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def capacity(self, u: int, v: int) -> float:
        """Budget of link ``(u, v)``."""
        return self._capacity[self._key(u, v)]

    def available(self, u: int, v: int) -> float:
        """Remaining budget of link ``(u, v)``."""
        key = self._key(u, v)
        return self._capacity[key] - self._used[key]

    def path_fits(self, path: list[int], flow_gb: float) -> bool:
        """Whether ``flow_gb`` fits on every link of ``path``."""
        check_non_negative("flow_gb", flow_gb)
        return all(
            flow_gb <= self.available(u, v) + _EPS
            for u, v in zip(path, path[1:])
        )

    def allocate_path(self, tag: object, path: list[int], flow_gb: float) -> None:
        """Charge ``flow_gb`` on every link of ``path`` under ``tag``.

        Atomic: either every link is charged or none (raises
        :class:`LinkBudgetError` leaving state unchanged).
        """
        check_non_negative("flow_gb", flow_gb)
        if tag in self._allocations:
            raise LinkBudgetError(f"tag {tag!r} already holds link budget")
        if not self.path_fits(path, flow_gb):
            raise LinkBudgetError(
                f"flow of {flow_gb:.3f} GB does not fit on path {path}"
            )
        charged: list[tuple[tuple[int, int], float]] = []
        for u, v in zip(path, path[1:]):
            key = self._key(u, v)
            self._used[key] += flow_gb
            charged.append((key, flow_gb))
        self._allocations[tag] = charged

    def release(self, tag: object) -> None:
        """Return the budget held under ``tag``."""
        try:
            charged = self._allocations.pop(tag)
        except KeyError:
            raise LinkBudgetError(f"no link allocation under tag {tag!r}") from None
        for key, flow in charged:
            self._used[key] -= flow
            if self._used[key] < 0.0:
                self._used[key] = 0.0

    def utilization(self) -> dict[tuple[int, int], float]:
        """Per-link used fraction."""
        return {
            e: self._used[e] / self._capacity[e] for e in self._capacity
        }

    def snapshot(self) -> tuple[dict, dict]:
        """Copy of (used, allocations) for transactional rollback."""
        return dict(self._used), {
            tag: list(charged) for tag, charged in self._allocations.items()
        }

    def restore(self, snap: tuple[dict, dict]) -> None:
        """Replace state with a snapshot copy."""
        used, allocations = snap
        self._used = dict(used)
        self._allocations = {t: list(c) for t, c in allocations.items()}
