"""Per-node computing-resource accounting.

Each placement node tracks its capacity ``B(v)``, the compute currently
allocated to admitted query evaluations, and the tags of those allocations
(so a rejected or departing query releases exactly what it took).  The
capacity invariant ``allocated <= capacity`` (within floating tolerance) is
enforced on every mutation.
"""

from __future__ import annotations

from repro.util.validation import check_non_negative, check_positive

__all__ = ["CapacityError", "ComputeNode"]

#: Relative slack tolerated on the capacity invariant (floating error only).
_EPS = 1e-9


class CapacityError(RuntimeError):
    """Raised when an allocation would exceed a node's capacity."""


class ComputeNode:
    """Mutable compute ledger for one placement node.

    Parameters
    ----------
    node_id:
        Topology node id.
    capacity_ghz:
        ``B(v)``; fixed for the node's lifetime.
    reserved_ghz:
        Compute already in use before this problem instance (models the
        paper's distinction between capacity ``B(v)`` and *available*
        resource ``A(v) = B(v) - reserved``).
    """

    __slots__ = ("node_id", "capacity_ghz", "reserved_ghz", "_allocations", "_total")

    def __init__(
        self, node_id: int, capacity_ghz: float, reserved_ghz: float = 0.0
    ) -> None:
        check_positive("capacity_ghz", capacity_ghz)
        check_non_negative("reserved_ghz", reserved_ghz)
        if reserved_ghz > capacity_ghz * (1.0 + _EPS):
            raise CapacityError(
                f"node {node_id}: reserved {reserved_ghz} exceeds capacity "
                f"{capacity_ghz}"
            )
        self.node_id = node_id
        self.capacity_ghz = float(capacity_ghz)
        self.reserved_ghz = float(reserved_ghz)
        self._allocations: dict[object, float] = {}
        self._total = 0.0

    @property
    def allocated_ghz(self) -> float:
        """Compute allocated to query evaluations by this library."""
        return self._total

    @property
    def available_ghz(self) -> float:
        """``A(v)`` — capacity minus reservations minus allocations."""
        return self.capacity_ghz - self.reserved_ghz - self._total

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use, in [0, 1]."""
        return (self.reserved_ghz + self._total) / self.capacity_ghz

    def can_fit(self, amount_ghz: float) -> bool:
        """Whether an allocation of ``amount_ghz`` would respect capacity."""
        return amount_ghz <= self.available_ghz + _EPS * self.capacity_ghz

    def allocate(self, tag: object, amount_ghz: float) -> None:
        """Allocate ``amount_ghz`` under ``tag``.

        Raises
        ------
        CapacityError
            If the allocation does not fit or the tag is already in use.
        """
        check_non_negative("amount_ghz", amount_ghz)
        if tag in self._allocations:
            raise CapacityError(f"node {self.node_id}: tag {tag!r} already allocated")
        if not self.can_fit(amount_ghz):
            raise CapacityError(
                f"node {self.node_id}: cannot allocate {amount_ghz:.3f} GHz "
                f"(available {self.available_ghz:.3f})"
            )
        self._allocations[tag] = float(amount_ghz)
        self._total += float(amount_ghz)

    def release(self, tag: object) -> float:
        """Release the allocation under ``tag``; returns the freed amount."""
        try:
            amount = self._allocations.pop(tag)
        except KeyError:
            raise CapacityError(
                f"node {self.node_id}: no allocation under tag {tag!r}"
            ) from None
        # Re-fold instead of decrementing: ``_total`` stays exactly the
        # left-to-right sum of the surviving amounts, so a ledger rebuilt
        # from a state dump (replaying allocations in insertion order)
        # reproduces the live value bit-for-bit.
        self._total = sum(self._allocations.values())
        return amount

    def allocation_tags(self) -> tuple[object, ...]:
        """Tags of live allocations (insertion order)."""
        return tuple(self._allocations)

    def snapshot(self) -> dict[object, float]:
        """Copy of the allocation ledger, for :class:`ClusterState` rollback."""
        return dict(self._allocations)

    def restore(self, ledger: dict[object, float]) -> None:
        """Replace the allocation ledger with a snapshot copy."""
        self._allocations = dict(ledger)
        self._total = sum(ledger.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ComputeNode(id={self.node_id}, cap={self.capacity_ghz:.1f}, "
            f"alloc={self._total:.2f})"
        )
