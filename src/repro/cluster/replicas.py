"""Replica placement ledger with the per-dataset ``K`` bound.

Tracks, for every dataset, the set of nodes holding a copy.  The original
(origin) copy is seeded at construction and can never be removed; total
copies per dataset (origin included) never exceed ``K`` — the paper's "each
dataset S_n has at most K replicas in the system".

A store may be scoped to a *shard* of the placement nodes
(``local_nodes``): it then tracks only the copies living on those nodes,
and datasets whose origin lies outside the shard carry one *external*
copy — the remote origin — which counts against ``K`` but is never
locally addressable.  With ``local_nodes=None`` (the default) nothing
changes: no external copies exist and every code path below reduces to
the original full-cluster behaviour.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.types import Dataset
from repro.util.validation import check_positive

__all__ = ["ReplicaError", "ReplicaStore"]


class ReplicaError(RuntimeError):
    """Raised on invalid replica operations (over-K, duplicates, origins)."""


class ReplicaStore:
    """Mutable mapping: dataset id → nodes holding a copy.

    Parameters
    ----------
    datasets:
        The collection ``S``; origin copies are seeded from
        ``Dataset.origin_node``.
    max_replicas:
        ``K`` — upper bound on copies per dataset, origin included.
    local_nodes:
        When given, the store is shard-scoped: it only seeds origin
        copies whose node is in this set, and every dataset whose origin
        is *not* in it carries one permanent external copy (the remote
        origin) that consumes a ``K`` slot.  ``None`` means the store
        spans the whole cluster (the original behaviour).
    """

    __slots__ = ("max_replicas", "_origins", "_locations", "_external")

    def __init__(
        self,
        datasets: Mapping[int, Dataset],
        max_replicas: int,
        *,
        local_nodes: Iterable[int] | None = None,
    ) -> None:
        check_positive("max_replicas", max_replicas)
        self.max_replicas = int(max_replicas)
        self._origins: dict[int, int] = {
            d.dataset_id: d.origin_node for d in datasets.values()
        }
        if local_nodes is None:
            self._locations: dict[int, set[int]] = {
                d.dataset_id: {d.origin_node} for d in datasets.values()
            }
            self._external: dict[int, int] = {}
        else:
            local = frozenset(local_nodes)
            self._locations = {
                d.dataset_id: ({d.origin_node} if d.origin_node in local else set())
                for d in datasets.values()
            }
            self._external = {
                d.dataset_id: 1
                for d in datasets.values()
                if d.origin_node not in local
            }

    # -- queries ----------------------------------------------------------

    def origin(self, dataset_id: int) -> int:
        """Origin node of a dataset."""
        return self._origins[dataset_id]

    def nodes(self, dataset_id: int) -> frozenset[int]:
        """Nodes currently holding the dataset (origin included)."""
        return frozenset(self._locations[dataset_id])

    def count(self, dataset_id: int) -> int:
        """Copies of the dataset in the system (origin + external included)."""
        return len(self._locations[dataset_id]) + self._external.get(dataset_id, 0)

    def external_copies(self, dataset_id: int) -> int:
        """Copies held outside this store's shard (0 when unscoped)."""
        return self._external.get(dataset_id, 0)

    def has(self, dataset_id: int, node: int) -> bool:
        """Whether ``node`` holds a copy of the dataset."""
        return node in self._locations[dataset_id]

    def can_place(self, dataset_id: int, node: int) -> bool:
        """Whether a new replica may be placed at ``node`` (slot + absent)."""
        locs = self._locations[dataset_id]
        return node not in locs and self.count(dataset_id) < self.max_replicas

    def remaining_slots(self, dataset_id: int) -> int:
        """How many more replicas of the dataset may be created here."""
        return self.max_replicas - self.count(dataset_id)

    def datasets_on(self, node: int) -> frozenset[int]:
        """Datasets with a copy on ``node``."""
        return frozenset(
            d for d, locs in self._locations.items() if node in locs
        )

    def total_replicas(self) -> int:
        """Total local copies across all datasets (external copies excluded)."""
        return sum(len(locs) for locs in self._locations.values())

    def replica_map(self) -> dict[int, tuple[int, ...]]:
        """Immutable-ish export: dataset id → sorted node tuple."""
        return {d: tuple(sorted(locs)) for d, locs in self._locations.items()}

    # -- mutations ----------------------------------------------------------

    def place(self, dataset_id: int, node: int) -> None:
        """Place a new replica of ``dataset_id`` at ``node``.

        Raises
        ------
        ReplicaError
            If the node already holds the dataset or ``K`` is exhausted.
        """
        locs = self._locations[dataset_id]
        if node in locs:
            raise ReplicaError(
                f"dataset {dataset_id} already has a copy on node {node}"
            )
        if self.count(dataset_id) >= self.max_replicas:
            raise ReplicaError(
                f"dataset {dataset_id} already has K={self.max_replicas} copies"
            )
        locs.add(node)

    def remove(self, dataset_id: int, node: int) -> None:
        """Drop a replica (the origin copy is permanent).

        Raises
        ------
        ReplicaError
            If removing the origin copy or a copy that does not exist.
        """
        if node == self._origins[dataset_id]:
            raise ReplicaError(
                f"cannot remove the origin copy of dataset {dataset_id}"
            )
        try:
            self._locations[dataset_id].remove(node)
        except KeyError:
            raise ReplicaError(
                f"dataset {dataset_id} has no copy on node {node}"
            ) from None

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> dict[int, frozenset[int]]:
        """Copy of the location table, for rollback."""
        return {d: frozenset(locs) for d, locs in self._locations.items()}

    def restore(self, snap: Mapping[int, Iterable[int]]) -> None:
        """Replace the location table with a snapshot copy."""
        self._locations = {d: set(locs) for d, locs in snap.items()}
