"""Combined mutable cluster state with transactional rollback.

:class:`ClusterState` owns one :class:`~repro.cluster.node.ComputeNode` per
placement node plus the :class:`~repro.cluster.replicas.ReplicaStore`, and
provides the two operations every placement algorithm needs:

* ``serve(query, dataset, node)`` — place a replica if needed and allocate
  ``|S_n|·r_m`` GHz on the node, returning the resulting
  :class:`~repro.core.types.Assignment`;
* ``transaction()`` — a context manager that snapshots state on entry and
  rolls back unless the block calls :meth:`Transaction.commit` (used for
  all-or-nothing admission of multi-dataset queries).

A state may be *shard-scoped* (``shard_nodes=...``): it then owns ledgers
for a subset of the placement nodes only, masks every other node out of
its vectorised views (``-inf`` available compute auto-fails every
capacity screen), and accounts datasets with remote origins through the
:class:`~repro.cluster.replicas.ReplicaStore` external-copy ledger.  The
sharded serving control plane (:mod:`repro.serve.shard`) builds one such
state per shard gateway; reservation bookkeeping
(:meth:`ClusterState.record_reservation` /
:meth:`~ClusterState.commit_reservation` /
:meth:`~ClusterState.abort_reservation`) backs its two-phase cross-shard
admission protocol.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

import numpy as np

from repro.cluster.node import CapacityError, ComputeNode, _EPS
from repro.cluster.replicas import ReplicaError, ReplicaStore
from repro.core.instance import ProblemInstance
from repro.core.metrics import InvariantViolation
from repro.core.types import Assignment, Dataset, Query

if TYPE_CHECKING:  # cluster → network import stays lazy at runtime
    from repro.network.dynamics import LinkState

__all__ = ["ClusterState", "Reservation", "Transaction"]


@dataclass(frozen=True)
class Reservation:
    """Provisional admission held by a shard pending cross-shard consensus.

    The reserve phase applies the placement for one query's shard-local
    dataset subset *for real* (allocations + replicas), then records this
    receipt.  Commit merely forgets the receipt (the resources are
    already held); abort releases every allocation and removes every
    replica the reserve newly placed — precise undo, never a leak.
    """

    reservation_id: str
    query_id: int
    #: Assignments the reserve committed (one per shard-local dataset).
    assignments: tuple[Assignment, ...]
    #: ``(dataset_id, node)`` pairs for replicas that did not exist
    #: before the reserve — *all* new holders, including copies a
    #: placement rule's walk left behind on nodes it did not assign.
    placed: tuple[tuple[int, int], ...]


class Transaction:
    """Handle for an open :meth:`ClusterState.transaction` block."""

    __slots__ = ("_committed",)

    def __init__(self) -> None:
        self._committed = False

    def commit(self) -> None:
        """Keep the mutations made inside the block."""
        self._committed = True

    @property
    def committed(self) -> bool:
        """Whether :meth:`commit` was called."""
        return self._committed


class ClusterState:
    """Mutable compute + replica state for one problem instance.

    Parameters
    ----------
    instance:
        The problem instance; capacities and origin copies are read from it.
    reserved_fraction:
        Fraction of each node's capacity already consumed by background
        work (``A(v) = (1 - reserved_fraction)·B(v)``). Defaults to 0 —
        the whole capacity is available, as in the paper's simulations.
    shard_nodes:
        When given, scope this state to that subset of the placement
        nodes: only those nodes get compute ledgers, vectorised views
        stay full placement length but mask every other node out
        (``-inf`` available compute), and datasets with remote origins
        are tracked through the replica store's external-copy ledger.  A
        subset covering *all* placement nodes is normalised to ``None``
        (full scope) so a 1-shard deployment runs the byte-identical
        unscoped code path.
    """

    def __init__(
        self,
        instance: ProblemInstance,
        *,
        reserved_fraction: float = 0.0,
        shard_nodes: Iterable[int] | None = None,
    ) -> None:
        if not 0.0 <= reserved_fraction < 1.0:
            raise ValueError(
                f"reserved_fraction must be in [0, 1), got {reserved_fraction}"
            )
        self.instance = instance
        if shard_nodes is not None:
            wanted = set(shard_nodes)
            unknown = wanted - set(instance.placement_nodes)
            if unknown:
                raise ValueError(
                    f"shard_nodes contains non-placement nodes {sorted(unknown)}"
                )
            if not wanted:
                raise ValueError("shard_nodes must name at least one node")
            if len(wanted) == instance.num_placement_nodes:
                shard_nodes = None  # full coverage: plain unscoped state
            else:
                # Members kept in placement order so iteration over
                # ``self.nodes`` matches the unscoped ordering contract.
                shard_nodes = tuple(
                    v for v in instance.placement_nodes if v in wanted
                )
        self.shard_nodes: tuple[int, ...] | None = shard_nodes
        if shard_nodes is None:
            self._shard_index: np.ndarray | None = None
        else:
            node_index = instance.node_index
            self._shard_index = np.fromiter(
                (node_index[v] for v in shard_nodes),
                dtype=np.intp,
                count=len(shard_nodes),
            )
        members = instance.placement_nodes if shard_nodes is None else shard_nodes
        self.nodes: dict[int, ComputeNode] = {
            v: ComputeNode(
                v,
                instance.topology.capacity(v),
                reserved_ghz=reserved_fraction * instance.topology.capacity(v),
            )
            for v in members
        }
        self.replicas = ReplicaStore(
            instance.datasets, instance.max_replicas, local_nodes=shard_nodes
        )
        self._down: set[int] = set()
        self._reservations: dict[str, Reservation] = {}
        #: Monotone mutation epoch.  Every state change that can alter a
        #: feasibility screen (allocations, replica placement, liveness,
        #: transaction rollback) bumps it, so an exported view of this
        #: state can be stamped and later recognised as stale without
        #: comparing arrays.  Reading it never mutates anything; it is
        #: bookkeeping only and cannot change a decision.
        self.generation: int = 0

    def touch(self) -> None:
        """Advance the mutation epoch (see :attr:`generation`)."""
        self.generation += 1

    # -- liveness ---------------------------------------------------------
    #
    # Fault injection (``repro.sim.faults``) marks nodes down/up while an
    # online session runs.  All feasibility queries and ``serve`` exclude
    # down nodes; every check is guarded by ``self._down`` being non-empty
    # so the fault-free paths stay bit-identical to the pre-fault code.

    @property
    def has_down_nodes(self) -> bool:
        """Whether any placement node is currently marked down."""
        return bool(self._down)

    def is_up(self, node: int) -> bool:
        """Whether ``node`` is currently serving (not crashed)."""
        return node not in self._down

    def down_nodes(self) -> frozenset[int]:
        """The placement nodes currently marked down."""
        return frozenset(self._down)

    def up_mask(self) -> np.ndarray:
        """Boolean up/down vector over placement nodes, in placement order."""
        mask = np.ones(self.instance.num_placement_nodes, dtype=bool)
        if self._down:
            node_index = self.instance.node_index
            mask[[node_index[v] for v in self._down]] = False
        return mask

    def has_live_copy(self, dataset_id: int) -> bool:
        """Whether any *up* node holds a copy to serve or clone from.

        External copies (a remote origin, in a shard-scoped state) count
        as live: their health is the owning shard's concern, and they
        remain a clone source for this shard.  Unscoped states have no
        external copies, so the fault-injection semantics are unchanged.
        """
        if not self._down:
            return True
        if any(v not in self._down for v in self.replicas.nodes(dataset_id)):
            return True
        return self.replicas.external_copies(dataset_id) > 0

    def mark_down(self, node: int) -> None:
        """Take ``node`` offline (idempotence is an error: a down node
        cannot crash again)."""
        if node not in self.nodes:
            raise ValueError(f"unknown placement node {node}")
        if node in self._down:
            raise ValueError(f"node {node} is already down")
        self._down.add(node)
        self.touch()

    def mark_up(self, node: int) -> None:
        """Bring ``node`` back online."""
        if node not in self._down:
            raise ValueError(f"node {node} is not down")
        self._down.discard(node)
        self.touch()

    def evict_allocations(self, node: int) -> tuple[object, ...]:
        """Drop every live allocation on ``node`` (a crash kills them).

        Returns the evicted tags in allocation (insertion) order so the
        caller can map them back to running queries.
        """
        ledger = self.nodes[node]
        tags = ledger.allocation_tags()
        for tag in tags:
            ledger.release(tag)
        if tags:
            self.touch()
        return tags

    def drop_replicas(self, node: int) -> tuple[int, ...]:
        """Destroy the non-origin replicas on ``node`` (freeing K slots).

        Origin copies are *not* dropped — mirroring
        :func:`repro.core.repair.repair_placement`, the record of the
        authoritative copy survives its node being down (it still occupies
        a ``K`` slot and returns to service when the node recovers).
        Returns the dataset ids whose copy on ``node`` was destroyed.
        """
        dropped = []
        for d_id in sorted(self.replicas.datasets_on(node)):
            if self.replicas.origin(d_id) != node:
                self.replicas.remove(d_id, node)
                dropped.append(d_id)
        if dropped:
            self.touch()
        return tuple(dropped)

    # -- feasibility ------------------------------------------------------

    def pair_latency(self, query: Query, dataset: Dataset, node: int) -> float:
        """Analytic per-dataset latency of serving at ``node`` (§2.3)."""
        return self.instance.pair_latency(query, dataset, node)

    def meets_deadline(self, query: Query, dataset: Dataset, node: int) -> bool:
        """Whether serving ``dataset`` at ``node`` respects ``d_qm``."""
        return self.pair_latency(query, dataset, node) <= query.deadline_s

    def compute_demand(self, query: Query, dataset: Dataset) -> float:
        """Compute the pair would consume: ``|S_n|·r_m`` GHz."""
        return dataset.volume_gb * query.compute_rate

    # -- vectorised views -------------------------------------------------
    #
    # These build fresh arrays from the per-node ledgers on every call (no
    # incremental state to fall out of sync with direct ComputeNode
    # mutations); each element is the exact float the scalar property
    # returns, so vectorised feasibility decisions match scalar ones
    # bit-for-bit.

    def available_array(self) -> np.ndarray:
        """``A(v)`` per placement node, in placement order (GHz).

        Always full placement length.  In a shard-scoped state,
        out-of-shard entries are ``-inf`` — every capacity comparison of
        the form ``demand <= available + eps·capacity`` then auto-fails
        for them, which is what confines every screen, candidate set and
        placement rule to the shard without any of them knowing about
        shards.
        """
        if self.shard_nodes is None:
            return np.fromiter(
                (n.available_ghz for n in self.nodes.values()),
                dtype=np.float64,
                count=len(self.nodes),
            )
        out = np.full(self.instance.num_placement_nodes, -np.inf)
        out[self._shard_index] = np.fromiter(
            (n.available_ghz for n in self.nodes.values()),
            dtype=np.float64,
            count=len(self.nodes),
        )
        return out

    def utilization_array(self) -> np.ndarray:
        """Utilisation fraction per placement node, in placement order.

        Full placement length; out-of-shard entries read 0.0 in a
        shard-scoped state (price terms only ever index candidate
        positions, which the ``-inf`` capacity mask keeps in-shard).
        """
        if self.shard_nodes is None:
            return np.fromiter(
                (n.utilization for n in self.nodes.values()),
                dtype=np.float64,
                count=len(self.nodes),
            )
        out = np.zeros(self.instance.num_placement_nodes, dtype=np.float64)
        out[self._shard_index] = np.fromiter(
            (n.utilization for n in self.nodes.values()),
            dtype=np.float64,
            count=len(self.nodes),
        )
        return out

    def replica_presence_matrix(
        self, dataset_ids: Iterable[int] | None = None
    ) -> np.ndarray:
        """Replica presence as a dense ``(dataset, node)`` boolean matrix.

        Row ``r`` corresponds to ``dataset_ids[r]`` (the sorted dataset
        ids by default), column ``i`` to ``placement_nodes[i]``; an entry
        is ``True`` iff that node holds a copy.  This is the
        export-friendly form of :meth:`ReplicaStore.nodes` the screening
        pool ships through shared memory.
        """
        inst = self.instance
        ids = sorted(inst.datasets) if dataset_ids is None else list(dataset_ids)
        matrix = np.zeros((len(ids), inst.num_placement_nodes), dtype=bool)
        node_index = inst.node_index
        for row, d_id in enumerate(ids):
            holders = self.replicas.nodes(d_id)
            if holders:
                matrix[row, [node_index[v] for v in holders]] = True
        return matrix

    def remaining_slots_array(
        self, dataset_ids: Iterable[int] | None = None
    ) -> np.ndarray:
        """:meth:`ReplicaStore.remaining_slots` per dataset, as int64.

        Entry ``r`` corresponds to ``dataset_ids[r]`` (sorted ids by
        default) — how many more replicas of that dataset may be created.
        """
        inst = self.instance
        ids = sorted(inst.datasets) if dataset_ids is None else list(dataset_ids)
        return np.fromiter(
            (self.replicas.remaining_slots(d) for d in ids),
            dtype=np.int64,
            count=len(ids),
        )

    def can_fit_mask(self, amount_ghz: float) -> np.ndarray:
        """Vectorised :meth:`~repro.cluster.node.ComputeNode.can_fit`.

        Element ``i`` is whether placement node ``i`` (placement order)
        can take an allocation of ``amount_ghz``, with the same epsilon
        slack as the scalar check.
        """
        return amount_ghz <= self.available_array() + _EPS * self.instance.capacities

    def can_serve(self, query: Query, dataset: Dataset, node: int) -> bool:
        """Deadline + capacity + replica (+ liveness) feasibility at ``node``."""
        if self.shard_nodes is not None and node not in self.nodes:
            return False
        if self._down:
            if node in self._down:
                return False
            if not self.replicas.has(dataset.dataset_id, node) and not (
                self.has_live_copy(dataset.dataset_id)
            ):
                return False  # no surviving copy to clone a new replica from
        if not self.nodes[node].can_fit(self.compute_demand(query, dataset)):
            return False
        if not (
            self.replicas.has(dataset.dataset_id, node)
            or self.replicas.can_place(dataset.dataset_id, node)
        ):
            return False
        return self.meets_deadline(query, dataset, node)

    def can_serve_mask(self, query: Query, dataset: Dataset) -> np.ndarray:
        """Vectorised :meth:`can_serve` over all placement nodes.

        Element ``i`` equals ``can_serve(query, dataset, placement_nodes[i])``
        — the same capacity epsilon, replica-slot rule (``has ∨ can_place``
        collapses to ``has ∨ slots-remain``) and deadline comparison, each
        evaluated as one array pass.
        """
        inst = self.instance
        d_id = dataset.dataset_id
        mask = self.can_fit_mask(self.compute_demand(query, dataset))
        holders = self.replicas.nodes(d_id)
        if self.replicas.remaining_slots(d_id) <= 0:
            has_replica = np.zeros(inst.num_placement_nodes, dtype=bool)
            if holders:
                node_index = inst.node_index
                has_replica[[node_index[v] for v in holders]] = True
            mask &= has_replica
        if self._down:
            mask &= self.up_mask()
            if not self.has_live_copy(d_id):
                # No surviving copy anywhere: non-holders cannot clone and
                # every holder is down, so nothing can serve the pair.
                mask &= False
        latency = inst.pair_latency_vector(query, dataset)
        return mask & (latency <= query.deadline_s)

    # -- mutation ---------------------------------------------------------

    def serve(self, query: Query, dataset: Dataset, node: int) -> Assignment:
        """Commit serving ``dataset`` for ``query`` at ``node``.

        Places a replica when the node lacks one (consuming a ``K`` slot)
        and allocates the pair's compute.  Raises
        :class:`~repro.cluster.node.CapacityError` /
        :class:`~repro.cluster.replicas.ReplicaError` / ``ValueError``
        when infeasible, leaving state unchanged.
        """
        if self.shard_nodes is not None and node not in self.nodes:
            raise CapacityError(f"node {node} is outside this shard")
        if self._down:
            if node in self._down:
                raise CapacityError(f"node {node} is down")
            if not self.replicas.has(dataset.dataset_id, node) and not (
                self.has_live_copy(dataset.dataset_id)
            ):
                raise ReplicaError(
                    f"dataset {dataset.dataset_id} has no live copy to clone"
                )
        latency = self.pair_latency(query, dataset, node)
        if latency > query.deadline_s:
            raise ValueError(
                f"query {query.query_id} at node {node}: latency {latency:.3f}s "
                f"exceeds deadline {query.deadline_s:.3f}s"
            )
        placed_here = False
        if not self.replicas.has(dataset.dataset_id, node):
            self.replicas.place(dataset.dataset_id, node)  # may raise ReplicaError
            placed_here = True
        tag = (query.query_id, dataset.dataset_id)
        try:
            self.nodes[node].allocate(tag, self.compute_demand(query, dataset))
        except CapacityError:
            if placed_here:
                self.replicas.remove(dataset.dataset_id, node)
            raise
        self.touch()
        return Assignment(
            query_id=query.query_id,
            dataset_id=dataset.dataset_id,
            node=node,
            latency_s=latency,
            compute_ghz=self.compute_demand(query, dataset),
        )

    def release(self, assignment: Assignment) -> None:
        """Undo an assignment's compute allocation (replicas stay placed)."""
        self.nodes[assignment.node].release(
            (assignment.query_id, assignment.dataset_id)
        )
        self.touch()

    # -- reservations -------------------------------------------------------
    #
    # Two-phase cross-shard admission (repro.serve.router) applies a
    # query's shard-local placement for real during the reserve phase and
    # records a Reservation receipt here.  Commit forgets the receipt;
    # abort performs precise undo.  The receipts themselves are *not*
    # checkpointed: a restart restores the reserved allocations as
    # ordinary recovery holds, which release them after the recovery
    # window — the same self-healing a TTL expiry provides live.

    def record_reservation(self, reservation: Reservation) -> None:
        """Register a pending two-phase reservation receipt."""
        if reservation.reservation_id in self._reservations:
            raise ValueError(
                f"reservation {reservation.reservation_id!r} already pending"
            )
        self._reservations[reservation.reservation_id] = reservation

    def has_reservation(self, reservation_id: str) -> bool:
        """Whether a reservation receipt is still pending."""
        return reservation_id in self._reservations

    def pending_reservations(self) -> int:
        """Number of reservations awaiting commit or abort."""
        return len(self._reservations)

    def commit_reservation(self, reservation_id: str) -> Reservation:
        """Finalise a reservation: its resources stay held.

        The reserve phase already applied the placement, so committing
        only drops the receipt and hands it back (the caller arms the
        usual hold timers from it).
        """
        try:
            return self._reservations.pop(reservation_id)
        except KeyError:
            raise ValueError(
                f"no pending reservation {reservation_id!r}"
            ) from None

    def abort_reservation(self, reservation_id: str) -> Reservation | None:
        """Undo a reservation; idempotent (unknown ids return ``None``).

        Releases every allocation the reserve made (tolerating ones a
        crash already evicted) and removes every replica it newly placed
        — unless the copy has since vanished with its node, is an origin
        copy, or some *other* live allocation on that node now streams
        from it (then removing it would corrupt that query's service).
        """
        reservation = self._reservations.pop(reservation_id, None)
        if reservation is None:
            return None
        for a in reservation.assignments:
            try:
                self.nodes[a.node].release((a.query_id, a.dataset_id))
            except CapacityError:
                pass  # evicted by a crash between reserve and abort
        for d_id, v in reservation.placed:
            if not self.replicas.has(d_id, v):
                continue  # dropped with a crashed node
            if self.replicas.origin(d_id) == v:
                continue
            if any(tag[1] == d_id for tag in self.nodes[v].allocation_tags()):
                continue  # another admission now depends on this copy
            self.replicas.remove(d_id, v)
        self.touch()
        return reservation

    # -- transactions -------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """Snapshot state; roll back on exit unless committed.

        Up/down liveness is *not* part of the snapshot, but a rollback is
        liveness-aware: if a node crashed *while the transaction was
        open* (the re-optimizer's write-behind migration steps and the
        serving gateway interleave transactions with fault events),
        restoring the entry snapshot must not resurrect the allocations
        the crash evicted or the replicas it destroyed — so after a
        rollback every currently-down node is re-evicted and re-stripped
        of non-origin replicas.  With no nodes down (the batch and
        fault-free online paths) the rollback is the plain snapshot
        restore, bit for bit.

        Examples
        --------
        >>> # inside an algorithm:
        >>> # with state.transaction() as txn:
        >>> #     for ds in query_datasets: state.serve(query, ds, pick(ds))
        >>> #     txn.commit()   # omit to roll everything back
        """
        node_snaps = {v: n.snapshot() for v, n in self.nodes.items()}
        replica_snap = self.replicas.snapshot()
        txn = Transaction()
        try:
            yield txn
        finally:
            if not txn.committed:
                for v, ledger in node_snaps.items():
                    self.nodes[v].restore(ledger)
                self.replicas.restore(replica_snap)
                for v in self._down:
                    self.evict_allocations(v)
                    self.drop_replicas(v)
                self.touch()

    # -- invariants ----------------------------------------------------------

    def check_invariants(
        self,
        inflight: Iterable[Assignment] = (),
        *,
        deadlines: Mapping[int, float] | None = None,
        link_state: "LinkState | None" = None,
        homes: Mapping[int, int] | None = None,
    ) -> None:
        """Re-check the live-state counterparts of the ILP constraints.

        The serving-path analogue of :func:`repro.core.metrics.verify_solution`
        — callable at *any* instant of an online run, between migration
        steps, after a transaction rollback, or after an injected crash:

        1. per-node ledgers are internally consistent (the cached total is
           exactly the sum of the live allocations) and within capacity;
        2. every dataset holds ≤ K copies, on placement nodes only, and
           its origin-ledger entry survives;
        3. crash semantics hold on every down node: no live allocations,
           no non-origin replicas;
        4. every ``inflight`` assignment is backed by a replica at its
           node and an allocation ledger entry of the exact compute it
           recorded; with ``deadlines`` (query id → deadline seconds) its
           latency also still meets the query's deadline;
        5. with ``link_state`` (a :class:`~repro.network.dynamics.LinkState`
           whose events drive this instance's path cache), every
           ``inflight`` assignment's serving path — node → query home —
           exists under the current effective delays and crosses no
           severed link.  ``homes`` (query id → home node) overrides the
           instance's query table for sessions whose query ids are not
           instance indices.  Omitting ``link_state`` (every
           dynamics-free run) skips this check entirely.

        Raises :class:`~repro.core.metrics.InvariantViolation` on the
        first violated constraint.
        """
        inst = self.instance
        for v, ledger in self.nodes.items():
            total = sum(ledger.snapshot().values())
            if ledger.allocated_ghz != total:
                raise InvariantViolation(
                    f"node {v} ledger total {ledger.allocated_ghz!r} != "
                    f"sum of allocations {total!r}"
                )
            if ledger.allocated_ghz + ledger.reserved_ghz > ledger.capacity_ghz * (
                1.0 + _EPS
            ):
                raise InvariantViolation(
                    f"node {v} load {ledger.allocated_ghz + ledger.reserved_ghz:.3f} "
                    f"GHz exceeds capacity {ledger.capacity_ghz:.3f} GHz"
                )
        placement = (
            set(inst.placement_nodes)
            if self.shard_nodes is None
            else set(self.nodes)
        )
        for d_id in inst.datasets:
            nodes = self.replicas.nodes(d_id)
            external = self.replicas.external_copies(d_id)
            if len(nodes) + external > inst.max_replicas:
                raise InvariantViolation(
                    f"dataset {d_id} has {len(nodes) + external} > "
                    f"K={inst.max_replicas} copies"
                )
            origin = self.replicas.origin(d_id)
            if external == 0 and origin not in nodes:
                raise InvariantViolation(
                    f"dataset {d_id} lost its origin copy at {origin}"
                )
            for v in nodes:
                if v not in placement:
                    raise InvariantViolation(
                        f"dataset {d_id} replicated to non-placement node {v}"
                    )
                if v in self._down and v != origin:
                    raise InvariantViolation(
                        f"dataset {d_id} keeps a non-origin copy on down node {v}"
                    )
        for v in self._down:
            if self.nodes[v].allocation_tags():
                raise InvariantViolation(
                    f"down node {v} still holds live allocations"
                )
        for a in inflight:
            if not self.replicas.has(a.dataset_id, a.node):
                raise InvariantViolation(
                    f"in-flight pair ({a.query_id}, {a.dataset_id}) served at "
                    f"node {a.node} without a replica"
                )
            ledger = self.nodes[a.node]
            recorded = ledger.snapshot().get((a.query_id, a.dataset_id))
            if recorded != a.compute_ghz:
                raise InvariantViolation(
                    f"in-flight pair ({a.query_id}, {a.dataset_id}) allocation "
                    f"{recorded!r} != assignment compute {a.compute_ghz!r}"
                )
            if deadlines is not None and a.query_id in deadlines:
                if a.latency_s > deadlines[a.query_id] * (1.0 + _EPS):
                    raise InvariantViolation(
                        f"in-flight pair ({a.query_id}, {a.dataset_id}) latency "
                        f"{a.latency_s:.4f}s exceeds deadline "
                        f"{deadlines[a.query_id]:.4f}s"
                    )
            if link_state is not None:
                self._check_serving_path(a, link_state, homes)

    def _check_serving_path(
        self,
        a: Assignment,
        link_state: "LinkState",
        homes: Mapping[int, int] | None,
    ) -> None:
        """Invariant 5: the pair's node → home path avoids severed links."""
        from repro.network.routing import extract_path

        inst = self.instance
        if homes is not None:
            home = homes.get(a.query_id)
            if home is None:
                return  # unknown query (e.g. ad-hoc gateway id): nothing to pin
        elif 0 <= a.query_id < inst.num_queries:
            home = inst.query(a.query_id).home_node
        else:
            return
        if not inst.paths.reachable(a.node, home):
            raise InvariantViolation(
                f"in-flight pair ({a.query_id}, {a.dataset_id}) served at "
                f"node {a.node} is partitioned from home {home}"
            )
        try:
            path = extract_path(inst.paths, a.node, home)
        except ValueError as exc:
            raise InvariantViolation(
                f"in-flight pair ({a.query_id}, {a.dataset_id}) has no "
                f"serving path: {exc}"
            ) from exc
        for u, v in zip(path, path[1:]):
            if link_state.is_severed(u, v):
                raise InvariantViolation(
                    f"in-flight pair ({a.query_id}, {a.dataset_id}) path "
                    f"crosses severed link ({u}, {v})"
                )

    # -- reporting -----------------------------------------------------------

    def total_allocated(self) -> float:
        """Total compute allocated across all nodes (GHz)."""
        return sum(n.allocated_ghz for n in self.nodes.values())

    def utilization_by_node(self) -> dict[int, float]:
        """Node id → utilisation fraction."""
        return {v: n.utilization for v, n in self.nodes.items()}
