"""The edge-cloud controller: one object driving the whole lifecycle.

The paper's testbed runs "a controller that executes the proposed
algorithms" (§4.3).  This module is that controller as a library facade: a
single stateful object owning a topology + dataset collection, exposing
the operations an operator would script —

* :meth:`EdgeCloudController.place` — plan a query batch (any registered
  algorithm), verify it, and make it the active placement,
* :meth:`EdgeCloudController.execute` — run the active placement through
  the event simulator and report measured latencies,
* :meth:`EdgeCloudController.maintenance_report` — §2.4 consistency cost
  of the active placement,
* :meth:`EdgeCloudController.invoice` — pay-as-you-go economics,
* :meth:`EdgeCloudController.handle_failure` — fail nodes, repair, and
  adopt the repaired placement,
* :meth:`EdgeCloudController.next_epoch` — swap in a new query batch and
  re-plan with replica carry-over (the migration planner).

Every operation appends to an audit :attr:`~EdgeCloudController.log`, so a
session is replayable from its event trail.  Each operation also opens a
``controller.<operation>`` trace span (see :mod:`repro.obs` and
``docs/observability.md``) carrying matching ``operation`` / ``epoch``
attributes — a no-op unless a metrics registry is installed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.cluster.consistency import ConsistencyModel, SyncReport
from repro.core.billing import Invoice, PricingModel, bill_solution
from repro.core.instance import ProblemInstance
from repro.core.metrics import SolutionMetrics, evaluate_solution, verify_solution
from repro.core.migration import EpochReport, MigrationPlanner
from repro.core.registry import make_algorithm
from repro.core.repair import RepairReport, fail_nodes, repair_placement
from repro.core.types import Dataset, PlacementSolution, Query
from repro.obs import get_registry
from repro.sim.events import ExecutionReport
from repro.sim.execution import ExecutionConfig, execute_placement
from repro.topology.twotier import EdgeCloudTopology
from repro.util.validation import ValidationError

__all__ = ["ControllerEvent", "EdgeCloudController"]

_FORMAT_CONTROLLER = "repro/controller/v1"


@dataclass(frozen=True)
class ControllerEvent:
    """One audit-log entry.

    Attributes
    ----------
    epoch:
        Epoch counter at the time of the operation.
    operation:
        ``"place"``, ``"execute"``, ``"failure"``, ``"epoch"``, ...
    detail:
        Human-readable summary.
    """

    epoch: int
    operation: str
    detail: str


class EdgeCloudController:
    """Stateful controller over one topology + dataset collection.

    Parameters
    ----------
    topology:
        The two-tier edge cloud being operated.
    datasets:
        The dataset collection ``S`` (fixed across epochs).
    max_replicas:
        The replication bound ``K``.
    algorithm:
        Registry name used by :meth:`place` (default the paper's
        ``appro-g``).
    """

    def __init__(
        self,
        topology: EdgeCloudTopology,
        datasets: dict[int, Dataset],
        *,
        max_replicas: int = 3,
        algorithm: str = "appro-g",
    ) -> None:
        self.topology = topology
        self.datasets = dict(datasets)
        self.max_replicas = max_replicas
        self.algorithm = algorithm
        self.epoch = 0
        self.log: list[ControllerEvent] = []
        self._instance: ProblemInstance | None = None
        self._solution: PlacementSolution | None = None
        self._planner = MigrationPlanner("carry")
        self._failed: set[int] = set()

    # -- introspection -----------------------------------------------------

    @property
    def instance(self) -> ProblemInstance:
        """The active problem instance (raises before the first placement)."""
        if self._instance is None:
            raise ValidationError("no active placement; call place() first")
        return self._instance

    @property
    def solution(self) -> PlacementSolution:
        """The active placement (raises before the first placement)."""
        if self._solution is None:
            raise ValidationError("no active placement; call place() first")
        return self._solution

    @property
    def has_placement(self) -> bool:
        """Whether a placement is active."""
        return self._solution is not None

    def metrics(self) -> SolutionMetrics:
        """The active placement's volume/throughput metrics."""
        return evaluate_solution(self.instance, self.solution)

    def _record(self, operation: str, detail: str) -> None:
        self.log.append(ControllerEvent(self.epoch, operation, detail))
        obs = get_registry()
        obs.inc("controller.events")
        obs.inc(f"controller.{operation}")

    def _make_instance(self, queries: Sequence[Query]) -> ProblemInstance:
        return ProblemInstance(
            topology=self.topology,
            datasets=self.datasets,
            queries=queries,
            max_replicas=self.max_replicas,
        )

    # -- lifecycle -----------------------------------------------------------

    def place(self, queries: Sequence[Query]) -> SolutionMetrics:
        """Plan and adopt a placement for ``queries`` (epoch 0 of a session)."""
        with get_registry().span(
            "controller.place",
            operation="place",
            epoch=self.epoch,
            algorithm=self.algorithm,
        ) as sp:
            instance = self._make_instance(queries)
            solution = make_algorithm(self.algorithm).solve(instance)
            verify_solution(instance, solution)
            self._instance, self._solution = instance, solution
            self._planner.reset()
            self._failed.clear()
            metrics = self.metrics()
            sp.set(admitted=metrics.num_admitted, queries=metrics.num_queries)
            self._record(
                "place",
                f"{self.algorithm}: admitted {metrics.num_admitted}/"
                f"{metrics.num_queries}, {metrics.admitted_volume_gb:.1f} GB",
            )
            return metrics

    def execute(self, *, contention: bool = True) -> ExecutionReport:
        """Run the active placement in the event simulator."""
        with get_registry().span(
            "controller.execute",
            operation="execute",
            epoch=self.epoch,
            contention=contention,
        ):
            return self._execute(contention=contention)

    def _execute(self, *, contention: bool) -> ExecutionReport:
        report = execute_placement(
            self.instance,
            self.solution,
            ExecutionConfig(contention=contention),
        )
        self._record(
            "execute",
            f"{report.num_executed} queries, mean "
            f"{report.mean_response_s * 1000:.0f} ms, "
            f"{report.deadline_violations} violations",
        )
        return report

    def maintenance_report(
        self,
        model: ConsistencyModel | None = None,
        horizon_days: float = 30.0,
    ) -> SyncReport:
        """Consistency-maintenance cost of the active placement (§2.4)."""
        with get_registry().span(
            "controller.maintenance", operation="maintenance", epoch=self.epoch
        ):
            model = model or ConsistencyModel()
            report = model.report(
                self.instance, self.solution.replicas, horizon_days
            )
            self._record(
                "maintenance",
                f"{report.syncs} syncs, {report.shipped_gb:.1f} GB over "
                f"{horizon_days:.0f} days",
            )
            return report

    def invoice(self, pricing: PricingModel | None = None) -> Invoice:
        """Provider economics of the active placement."""
        with get_registry().span(
            "controller.invoice", operation="invoice", epoch=self.epoch
        ):
            result = bill_solution(self.instance, self.solution, pricing)
            self._record(
                "invoice",
                f"revenue ${result.revenue:.2f}, profit ${result.profit:.2f}",
            )
            return result

    def handle_failure(self, nodes: Iterable[int]) -> RepairReport:
        """Fail ``nodes``, repair the placement, and adopt the result."""
        with get_registry().span(
            "controller.handle_failure", operation="failure", epoch=self.epoch
        ) as sp:
            impact = fail_nodes(self.instance, self.solution, nodes)
            report = repair_placement(self.instance, self.solution, impact)
            verify_solution(self.instance, report.solution)
            self._solution = report.solution
            self._failed |= set(impact.failed_nodes)
            sp.set(
                failed_nodes=len(impact.failed_nodes),
                dropped=len(report.dropped_queries),
            )
            self._record(
                "failure",
                f"failed {sorted(impact.failed_nodes)}: recovered "
                f"{len(report.recovered_queries)}, dropped "
                f"{len(report.dropped_queries)}, retention "
                f"{report.availability:.0%}",
            )
            return report

    def next_epoch(self, queries: Sequence[Query]) -> EpochReport:
        """Swap in a new query batch, re-planning with replica carry-over."""
        if self._solution is None:
            raise ValidationError("start a session with place() before epochs")
        with get_registry().span(
            "controller.next_epoch", operation="epoch", epoch=self.epoch
        ) as sp:
            instance = self._make_instance(queries)
            # Seed the planner's carried state from the active placement on
            # the first epoch transition (failed nodes never carry forward).
            if self._planner.carried is None:
                self._planner.seed_carry(
                    {
                        d_id: tuple(
                            v
                            for v in nodes
                            if v != self.datasets[d_id].origin_node
                            and v not in self._failed
                        )
                        for d_id, nodes in self.solution.replicas.items()
                    }
                )
            report = self._planner.plan_epoch(instance)
            self.epoch += 1
            self._instance, self._solution = instance, report.solution
            # The audit event carries the incremented epoch; keep the span
            # attribute in lock-step so trails and traces correlate.
            sp.set(epoch=self.epoch)
            self._record(
                "epoch",
                f"epoch {self.epoch}: {report.admitted_volume_gb:.1f} GB, "
                f"kept {report.kept}, added {report.added} "
                f"(+{report.migration_gb:.1f} GB migration), dropped {report.dropped}",
            )
            return report

    # -- persistence ---------------------------------------------------------

    def snapshot(self, path: str | Path) -> None:
        """Persist the whole session to ``path`` (atomic JSON write).

        Captures the active instance and placement (when one exists), the
        epoch counter, the failed-node set, and the audit log, using the
        same versioned serialisers as :mod:`repro.io.serialize`.  A
        ``snapshot`` audit event is recorded *before* writing, so the
        snapshot's own log contains it and a later :meth:`restore` trail
        shows when state was saved.
        """
        from repro.io.serialize import (
            atomic_write_text,
            dataset_to_dict,
            instance_to_dict,
            solution_to_dict,
            topology_to_dict,
        )

        with get_registry().span(
            "controller.snapshot", operation="snapshot", epoch=self.epoch
        ):
            self._record("snapshot", f"session state -> {path}")
            payload = {
                "format": _FORMAT_CONTROLLER,
                "epoch": self.epoch,
                "algorithm": self.algorithm,
                "max_replicas": self.max_replicas,
                "topology": topology_to_dict(self.topology),
                "datasets": [
                    dataset_to_dict(d) for d in self.datasets.values()
                ],
                "instance": (
                    instance_to_dict(self._instance)
                    if self._instance is not None
                    else None
                ),
                "solution": (
                    solution_to_dict(self._solution)
                    if self._solution is not None
                    else None
                ),
                "failed": sorted(self._failed),
                "log": [
                    {"epoch": e.epoch, "operation": e.operation, "detail": e.detail}
                    for e in self.log
                ],
            }
            atomic_write_text(path, json.dumps(payload, indent=1))

    @classmethod
    def restore(cls, path: str | Path) -> "EdgeCloudController":
        """Rebuild a controller session from a :meth:`snapshot` file.

        The restored controller carries the snapshot's placement, epoch,
        failed-node set and audit log (verified against the full
        constraint set, like any freshly planned placement), plus a new
        ``restore`` audit event.
        """
        from repro.io.serialize import (
            dataset_from_dict,
            instance_from_dict,
            solution_from_dict,
            topology_from_dict,
        )

        payload = json.loads(Path(path).read_text())
        got = payload.get("format")
        if got != _FORMAT_CONTROLLER:
            raise ValidationError(
                f"expected format {_FORMAT_CONTROLLER!r}, got {got!r}"
            )
        instance = (
            instance_from_dict(payload["instance"])
            if payload["instance"] is not None
            else None
        )
        topology = (
            instance.topology
            if instance is not None
            else topology_from_dict(payload["topology"])
        )
        datasets = {
            d["dataset_id"]: dataset_from_dict(d) for d in payload["datasets"]
        }
        controller = cls(
            topology,
            datasets,
            max_replicas=payload["max_replicas"],
            algorithm=payload["algorithm"],
        )
        with get_registry().span(
            "controller.restore", operation="restore", epoch=payload["epoch"]
        ):
            controller.epoch = payload["epoch"]
            controller._failed = set(payload["failed"])
            controller.log = [
                ControllerEvent(e["epoch"], e["operation"], e["detail"])
                for e in payload["log"]
            ]
            if instance is not None:
                solution = solution_from_dict(payload["solution"])
                verify_solution(instance, solution)
                controller._instance = instance
                controller._solution = solution
            controller._record("restore", f"session state <- {path}")
        return controller

    def audit_trail(self) -> str:
        """The session log as text, one line per operation."""
        return "\n".join(
            f"[epoch {e.epoch}] {e.operation}: {e.detail}" for e in self.log
        )
