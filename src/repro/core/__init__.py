"""Core placement problem and all algorithms.

The paper's contribution (:class:`~repro.core.primal_dual.ApproS`,
:class:`~repro.core.primal_dual.ApproG`), the three benchmark families
(Greedy, Graph-partitioning, Popularity), the ILP/LP machinery, and the
shared problem/solution datatypes.
"""

from repro.core.types import Dataset, Query, Assignment, PlacementSolution
from repro.core.instance import ProblemInstance
from repro.core.base import PlacementAlgorithm, SolutionBuilder
from repro.core.feasibility import CandidateNode, candidate_nodes, delay_feasible_nodes
from repro.core.metrics import (
    SolutionMetrics,
    evaluate_solution,
    verify_solution,
    InvariantViolation,
)
from repro.core.duals import NodePrices, dual_certificate
from repro.core.primal_dual import PrimalDualConfig, ApproS, ApproG
from repro.core.greedy import GreedyS, GreedyG
from repro.core.graph_partition import GraphS, GraphG, partition_placement_nodes
from repro.core.popularity import PopularityS, PopularityG, node_popularity
from repro.core.bandwidth import BandwidthAwareState, BandwidthApproG
from repro.core.billing import PricingModel, Invoice, bill_solution
from repro.core.explain import (
    RejectionReason,
    PairDiagnosis,
    QueryDiagnosis,
    explain_rejections,
    rejection_histogram,
)
from repro.core.lp_rounding import LpRoundingG
from repro.core.migration import (
    EpochReport,
    MigrationPlan,
    MigrationPlanner,
    MigrationStep,
    diff_replica_maps,
    solve_frozen,
)
from repro.core.repair import FailureImpact, RepairReport, fail_nodes, repair_placement
from repro.core.online import (
    OnlineConfig,
    OnlineReport,
    OnlineSession,
    appro_rule,
    greedy_rule,
    ship_greedy_rule,
    sync_greedy_rule,
)
from repro.core.ilp import (
    LpModel,
    LpSolution,
    build_lp_model,
    build_lp_model_scalar,
    solve_lp_from_model,
    solve_lp_relaxation,
    solve_ilp,
)
from repro.core.registry import ALGORITHMS, make_algorithm, available_algorithms

__all__ = [
    "Dataset",
    "Query",
    "Assignment",
    "PlacementSolution",
    "ProblemInstance",
    "PlacementAlgorithm",
    "SolutionBuilder",
    "CandidateNode",
    "candidate_nodes",
    "delay_feasible_nodes",
    "SolutionMetrics",
    "evaluate_solution",
    "verify_solution",
    "InvariantViolation",
    "NodePrices",
    "dual_certificate",
    "PrimalDualConfig",
    "ApproS",
    "ApproG",
    "GreedyS",
    "GreedyG",
    "GraphS",
    "GraphG",
    "partition_placement_nodes",
    "PopularityS",
    "PopularityG",
    "LpRoundingG",
    "BandwidthAwareState",
    "BandwidthApproG",
    "PricingModel",
    "RejectionReason",
    "PairDiagnosis",
    "QueryDiagnosis",
    "explain_rejections",
    "rejection_histogram",
    "Invoice",
    "bill_solution",
    "EpochReport",
    "MigrationPlan",
    "MigrationPlanner",
    "MigrationStep",
    "diff_replica_maps",
    "solve_frozen",
    "FailureImpact",
    "RepairReport",
    "fail_nodes",
    "repair_placement",
    "OnlineConfig",
    "OnlineReport",
    "OnlineSession",
    "appro_rule",
    "greedy_rule",
    "ship_greedy_rule",
    "sync_greedy_rule",
    "node_popularity",
    "LpModel",
    "LpSolution",
    "build_lp_model",
    "build_lp_model_scalar",
    "solve_lp_from_model",
    "solve_lp_relaxation",
    "solve_ilp",
    "ALGORITHMS",
    "make_algorithm",
    "available_algorithms",
]
