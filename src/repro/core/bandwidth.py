"""Bandwidth-aware placement: link budgets join the admission problem.

The paper's model caps node compute but lets intermediate-result traffic
ride the network for free; under load, the event simulator's contention
mode shows the consequence — transfers queue on shared links and some
admitted queries miss deadlines that the analytic model promised.

This extension closes that gap *at admission time*: every link carries a
traffic budget per evaluation window
(:class:`~repro.cluster.links.LinkLedger`), each assignment charges its
intermediate-result flow ``α·|S_n|`` on every link of its serving path,
and a pair is only feasible at a node whose path to home still has
budget.  The bandwidth bench shows the trade: slightly lower admitted
volume, materially fewer contention-mode deadline violations.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.cluster.links import LinkBudgetError, LinkLedger
from repro.cluster.state import ClusterState, Transaction
from repro.core.base import PlacementAlgorithm, SolutionBuilder
import numpy as np

from repro.core.feasibility import candidate_set
from repro.core.instance import ProblemInstance
from repro.core.primal_dual import PrimalDualConfig, _Kernel, _query_order
from repro.core.types import Assignment, Dataset, PlacementSolution, Query
from repro.network.routing import extract_path
from repro.util.validation import check_positive

__all__ = ["BandwidthAwareState", "BandwidthApproG"]


class BandwidthAwareState(ClusterState):
    """Cluster state whose ``serve`` also charges link budgets.

    Parameters
    ----------
    instance:
        The placement problem.
    link_budget_gb:
        Uniform per-link traffic budget, or a per-link mapping (see
        :class:`~repro.cluster.links.LinkLedger`).
    """

    def __init__(
        self,
        instance: ProblemInstance,
        link_budget_gb: float | dict[tuple[int, int], float],
        **kwargs,
    ) -> None:
        super().__init__(instance, **kwargs)
        self.links = LinkLedger(instance.topology, link_budget_gb)

    def _flow(self, query: Query, dataset: Dataset) -> float:
        return query.alpha_for(dataset.dataset_id) * dataset.volume_gb

    def _path(self, query: Query, node: int) -> list[int]:
        return extract_path(self.instance.paths, node, query.home_node)

    def can_serve(self, query: Query, dataset: Dataset, node: int) -> bool:
        if not super().can_serve(query, dataset, node):
            return False
        if node == query.home_node:
            return True
        return self.links.path_fits(
            self._path(query, node), self._flow(query, dataset)
        )

    def serve(self, query: Query, dataset: Dataset, node: int) -> Assignment:
        assignment = super().serve(query, dataset, node)
        if node != query.home_node:
            tag = (query.query_id, dataset.dataset_id)
            try:
                self.links.allocate_path(
                    tag, self._path(query, node), self._flow(query, dataset)
                )
            except LinkBudgetError:
                # Unwind the compute/replica commitment made by super().
                super().release(assignment)
                raise
        return assignment

    def release(self, assignment: Assignment) -> None:
        super().release(assignment)
        query = self.instance.query(assignment.query_id)
        if assignment.node != query.home_node:
            self.links.release((assignment.query_id, assignment.dataset_id))

    @contextmanager
    def transaction(self) -> Iterator[Transaction]:
        link_snap = self.links.snapshot()
        with super().transaction() as txn:
            try:
                yield txn
            finally:
                if not txn.committed:
                    self.links.restore(link_snap)


class BandwidthApproG(PlacementAlgorithm):
    """Appro-G with per-link traffic budgets.

    Parameters
    ----------
    link_budget_gb:
        Intermediate-result traffic each link may carry per window.
    config:
        Primal-dual tunables (shared with :class:`~repro.core.primal_dual.ApproG`).
    """

    name = "appro-bw-g"

    def __init__(
        self,
        link_budget_gb: float = 20.0,
        config: PrimalDualConfig | None = None,
    ) -> None:
        check_positive("link_budget_gb", link_budget_gb)
        self.link_budget_gb = link_budget_gb
        self.config = config or PrimalDualConfig()

    def solve(self, instance: ProblemInstance) -> PlacementSolution:
        state = BandwidthAwareState(instance, self.link_budget_gb)
        kernel = _Kernel(self.config, instance)
        builder = SolutionBuilder(instance, self.name)
        for query in _query_order(instance, self.config.order):
            assignments: list[Assignment] = []
            failed = False
            with state.transaction() as txn:
                for d_id in sorted(
                    query.demanded,
                    key=lambda d: (-instance.dataset(d).volume_gb, d),
                ):
                    a = self._place_pair(state, kernel, query, d_id)
                    if a is None:
                        failed = True
                        break
                    assignments.append(a)
                if not failed:
                    txn.commit()
            if failed or not assignments:
                builder.reject(query.query_id)
            else:
                builder.admit(query.query_id, assignments)
        builder.extra("replicas_total", state.replicas.total_replicas())
        builder.extra(
            "max_link_utilization",
            max(state.links.utilization().values(), default=0.0),
        )
        return builder.build(state)

    def _place_pair(
        self,
        state: BandwidthAwareState,
        kernel: _Kernel,
        query: Query,
        dataset_id: int,
    ) -> Assignment | None:
        """The primal-dual step, filtered by link-budget feasibility."""
        dataset = state.instance.dataset(dataset_id)
        cs = candidate_set(state, query, dataset)
        if cs:
            flow = state._flow(query, dataset)
            fits = np.fromiter(
                (
                    int(v) == query.home_node
                    or state.links.path_fits(state._path(query, int(v)), flow)
                    for v in cs.nodes
                ),
                dtype=bool,
                count=len(cs),
            )
            cs = cs.take(fits)
        if not cs:
            return None
        cost = kernel.cost_vector(state, query, cs, dataset_id)
        best = kernel.argmin_candidate(cs, cost)
        if cost[best] > self.config.beta:
            return None
        return state.serve(query, dataset, int(cs.nodes[best]))
