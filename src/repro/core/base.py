"""Algorithm interface and the solution-assembly helper.

Every placement algorithm implements :class:`PlacementAlgorithm`: a named,
stateless object whose :meth:`~PlacementAlgorithm.solve` maps a
:class:`~repro.core.instance.ProblemInstance` to a
:class:`~repro.core.types.PlacementSolution`.  Algorithms mutate a private
:class:`~repro.cluster.state.ClusterState` internally and export an
immutable solution through :class:`SolutionBuilder`.
"""

from __future__ import annotations

import abc

from repro.cluster.state import ClusterState
from repro.core.instance import ProblemInstance
from repro.core.types import Assignment, PlacementSolution
from repro.util.validation import ValidationError

__all__ = ["PlacementAlgorithm", "SolutionBuilder", "require_special_case"]


def require_special_case(instance: ProblemInstance, algorithm: str) -> None:
    """Raise unless every query demands exactly one dataset.

    The ``-S`` algorithm variants implement the paper's special case and
    refuse general instances rather than silently mis-solving them.
    """
    if not instance.is_special_case():
        raise ValidationError(
            f"{algorithm} handles the special case only (one dataset per "
            f"query); use the -G variant for general instances"
        )


class PlacementAlgorithm(abc.ABC):
    """A proactive data replication and placement algorithm."""

    #: Registry / display name, e.g. ``"appro-s"``.
    name: str = "abstract"

    @abc.abstractmethod
    def solve(self, instance: ProblemInstance) -> PlacementSolution:
        """Produce a placement solution for ``instance``.

        Implementations must be deterministic given the instance (any
        internal randomness must derive from instance content or fixed
        seeds) and must leave the instance unmodified.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class SolutionBuilder:
    """Accumulates admission decisions and exports a frozen solution."""

    def __init__(self, instance: ProblemInstance, algorithm: str) -> None:
        self._instance = instance
        self._algorithm = algorithm
        self._assignments: dict[tuple[int, int], Assignment] = {}
        self._admitted: set[int] = set()
        self._rejected: set[int] = set()
        self._extras: dict[str, float] = {}

    def admit(self, query_id: int, assignments: list[Assignment]) -> None:
        """Record an admitted query with its committed assignments."""
        if query_id in self._admitted or query_id in self._rejected:
            raise ValidationError(f"query {query_id} decided twice")
        if not assignments:
            raise ValidationError(f"cannot admit query {query_id} with no assignments")
        self._admitted.add(query_id)
        for a in assignments:
            key = (a.query_id, a.dataset_id)
            if key in self._assignments:
                raise ValidationError(f"pair {key} assigned twice")
            self._assignments[key] = a

    def reject(self, query_id: int) -> None:
        """Record a rejected query."""
        if query_id in self._admitted or query_id in self._rejected:
            raise ValidationError(f"query {query_id} decided twice")
        self._rejected.add(query_id)

    def extra(self, key: str, value: float) -> None:
        """Attach a diagnostic scalar (dual objective, iterations, ...)."""
        self._extras[key] = float(value)

    @property
    def admitted(self) -> frozenset[int]:
        """Queries admitted so far."""
        return frozenset(self._admitted)

    def build(self, state: ClusterState) -> PlacementSolution:
        """Freeze the solution, exporting replica locations from ``state``."""
        undecided = (
            set(range(self._instance.num_queries)) - self._admitted - self._rejected
        )
        if undecided:
            raise ValidationError(f"queries left undecided: {sorted(undecided)}")
        return PlacementSolution(
            algorithm=self._algorithm,
            replicas=state.replicas.replica_map(),
            assignments=dict(self._assignments),
            admitted=frozenset(self._admitted),
            rejected=frozenset(self._rejected),
            extras=dict(self._extras),
        )
