"""Pay-as-you-go billing: the paper's economic motivation, quantified.

§1: "maximizing the volume of datasets demanded by admitted queries means
that users pay more for evaluating queries to the cloud service providers
who can thus obtain maximum income."  This module turns a placement into
an invoice: processing revenue on the admitted volume, against the
provider's compute, transfer (replica seeding + intermediate results) and
consistency-maintenance costs.

Default rates are loosely modelled on public-cloud list prices (compute
per GHz-hour, egress per GB); they are knobs, not claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.consistency import ConsistencyModel
from repro.core.instance import ProblemInstance
from repro.core.types import PlacementSolution
from repro.util.validation import check_non_negative, check_positive

__all__ = ["PricingModel", "Invoice", "bill_solution"]


@dataclass(frozen=True)
class PricingModel:
    """Provider-side prices and costs.

    Attributes
    ----------
    revenue_per_gb:
        What users pay per GB of demanded data evaluated ($/GB).
    compute_cost_per_ghz_hour:
        Provider cost of compute ($/GHz/h); charged for the evaluation
        window ``busy_hours``.
    transfer_cost_per_gb:
        Provider cost of moving a GB (replica seeding, intermediate
        results, sync deltas).
    busy_hours:
        Hours the admitted allocations are considered held per billing
        horizon (batch evaluation windows repeating over the horizon).
    horizon_days:
        Billing horizon, also used for consistency-maintenance volume.
    consistency:
        The §2.4 threshold model supplying sync traffic.
    """

    revenue_per_gb: float = 1.00
    compute_cost_per_ghz_hour: float = 0.04
    transfer_cost_per_gb: float = 0.05
    busy_hours: float = 4.0
    horizon_days: float = 30.0
    consistency: ConsistencyModel = ConsistencyModel()

    def __post_init__(self) -> None:
        check_positive("revenue_per_gb", self.revenue_per_gb)
        check_non_negative("compute_cost_per_ghz_hour", self.compute_cost_per_ghz_hour)
        check_non_negative("transfer_cost_per_gb", self.transfer_cost_per_gb)
        check_positive("busy_hours", self.busy_hours)
        check_positive("horizon_days", self.horizon_days)


@dataclass(frozen=True)
class Invoice:
    """One placement's provider economics over the billing horizon.

    Attributes
    ----------
    revenue:
        Income from evaluated volume.
    compute_cost, transfer_cost, sync_cost:
        Provider costs (replica seeding and intermediate-result movement
        are in ``transfer_cost``; threshold-sync traffic in ``sync_cost``).
    served_gb, seeded_gb, intermediate_gb, sync_gb:
        The underlying volumes.
    """

    revenue: float
    compute_cost: float
    transfer_cost: float
    sync_cost: float
    served_gb: float
    seeded_gb: float
    intermediate_gb: float
    sync_gb: float

    @property
    def total_cost(self) -> float:
        """All provider costs."""
        return self.compute_cost + self.transfer_cost + self.sync_cost

    @property
    def profit(self) -> float:
        """Revenue minus all costs."""
        return self.revenue - self.total_cost


def bill_solution(
    instance: ProblemInstance,
    solution: PlacementSolution,
    pricing: PricingModel | None = None,
) -> Invoice:
    """Price one placement under ``pricing``.

    Volumes charged:

    * **served** — Σ over assignments of the dataset volume (revenue side);
    * **seeded** — every non-origin replica ships its dataset once;
    * **intermediate** — each assignment ships ``α·|S_n|`` from serving
      node to home (zero when they coincide);
    * **sync** — the consistency model's shipped volume over the horizon.
    """
    pricing = pricing or PricingModel()

    served_gb = 0.0
    intermediate_gb = 0.0
    compute_ghz = 0.0
    for (q_id, d_id), a in solution.assignments.items():
        dataset = instance.dataset(d_id)
        query = instance.query(q_id)
        served_gb += dataset.volume_gb
        compute_ghz += a.compute_ghz
        if a.node != query.home_node:
            intermediate_gb += query.alpha_for(d_id) * dataset.volume_gb

    seeded_gb = sum(
        (len(nodes) - 1) * instance.dataset(d_id).volume_gb
        for d_id, nodes in solution.replicas.items()
    )
    sync_gb = pricing.consistency.report(
        instance, solution.replicas, pricing.horizon_days
    ).shipped_gb

    return Invoice(
        revenue=pricing.revenue_per_gb * served_gb,
        compute_cost=(
            pricing.compute_cost_per_ghz_hour * compute_ghz * pricing.busy_hours
        ),
        transfer_cost=pricing.transfer_cost_per_gb * (seeded_gb + intermediate_gb),
        sync_cost=pricing.transfer_cost_per_gb * sync_gb,
        served_gb=served_gb,
        seeded_gb=seeded_gb,
        intermediate_gb=intermediate_gb,
        sync_gb=sync_gb,
    )
