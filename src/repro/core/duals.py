"""Dual variables, price dynamics and weak-duality certificates.

The paper derives the dual (8)–(14) of the placement ILP and drives the
approximation algorithm by *uniformly raising* dual variables until
constraint (9) tightens.  Operationally this realises as multiplicative
price dynamics: a node whose compute is nearly exhausted carries a price
near 1 (fully charged against the query's gain), an idle node a price near
``theta_floor`` — the standard primal-dual dynamic-update scheme for
packing problems.

:class:`NodePrices` implements the price state shared by
:mod:`repro.core.primal_dual`.  :func:`dual_certificate` evaluates the
paper's dual objective (8) at a feasible dual point constructed from the
final prices — a paper-faithful diagnostic of how much the prices "explain"
the admission decisions.  For a *rigorous* optimality gap use the LP
relaxation in :mod:`repro.core.ilp`, whose optimum upper-bounds every
integral solution by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.state import ClusterState
from repro.core.instance import ProblemInstance
from repro.util.validation import check_fraction

__all__ = ["NodePrices", "dual_certificate"]


@dataclass
class NodePrices:
    """Per-node compute prices ``θ_l`` driven by utilisation.

    ``θ_l = theta_floor ** (1 - u_l)`` with ``u_l`` the node's utilisation:
    an exponential interpolation from ``theta_floor`` (idle) to 1 (full).
    Raising prices exponentially in the consumed fraction is what makes
    primal-dual packing algorithms competitive — capacity is cheap early
    and prohibitive as it runs out, so low-value queries cannot crowd out
    high-value ones on scarce nodes.

    Attributes
    ----------
    theta_floor:
        Idle price ``θ_0 ∈ (0, 1)``.  The paper starts duals at zero and
        raises them; a small positive floor keeps the certificate finite.
    """

    theta_floor: float = 0.01

    def __post_init__(self) -> None:
        check_fraction("theta_floor", self.theta_floor)
        if self.theta_floor >= 1.0:
            raise ValueError("theta_floor must be < 1")

    def theta(self, state: ClusterState, node: int) -> float:
        """Current price of ``node`` given its utilisation."""
        u = state.nodes[node].utilization
        return self.theta_floor ** (1.0 - min(1.0, u))

    def theta_all(self, state: ClusterState) -> dict[int, float]:
        """Prices of all placement nodes."""
        return {v: self.theta(state, v) for v in state.nodes}

    def theta_array(self, state: ClusterState) -> np.ndarray:
        """Prices of all placement nodes, in placement order (vectorised).

        Elementwise the same ``theta_floor ** (1 - min(1, u))`` as
        :meth:`theta`.  The exponent vector is computed with array ops,
        but the power itself goes through Python's ``**`` (C libm):
        NumPy's SIMD ``pow`` differs from libm by 1 ulp on some inputs,
        which would break bit-parity with the scalar path.
        """
        u = state.utilization_array()
        exponents = 1.0 - np.minimum(1.0, u)
        floor = self.theta_floor
        return np.fromiter(
            (floor**x for x in exponents.tolist()),
            dtype=np.float64,
            count=exponents.size,
        )


def dual_certificate(
    instance: ProblemInstance,
    state: ClusterState,
    prices: NodePrices,
) -> float:
    """Evaluate the paper's dual objective (8) at a feasible dual point.

    Construction (per the dual constraints (9)–(14), with ``y = µ = 0``):
    take ``θ_l`` from the final node utilisations and, for every
    (query, dataset, node) triple, the smallest ``η`` satisfying (9),

    ``η_mnl = max(0, 1 − r_m·θ_l) / (d(v_l) + α_{nm}·dt(p(v_l, h_m)))``

    (units GB/s: constraint (9) divided through by ``|S_n|``).  The dual
    objective is then

    ``Σ_l A(v_l)·θ_l + Σ_m Σ_n Σ_l d_qm·η_mnl``.

    This mirrors the quantity bounded in the paper's Theorem 1 proof and is
    reported in solution extras as ``dual_objective``; it is loose by design
    (the paper's worst-case ratio is ``max(|Q|, |V|/K)``).
    """
    theta = prices.theta_all(state)
    nodes = instance.placement_nodes
    theta_vec = np.array([theta[v] for v in nodes])
    proc = instance.proc_delays
    total = float(
        np.dot(instance.capacities, theta_vec)
    )
    # Vectorised over placement nodes per (query, dataset) pair.
    for query in instance.queries:
        home_vec = instance.home_delay_vectors[query.home_node]
        slack = np.maximum(0.0, 1.0 - query.compute_rate * theta_vec)
        for alpha in query.selectivity:
            unit_lat = proc + alpha * home_vec
            with np.errstate(divide="ignore", invalid="ignore"):
                eta = np.where(unit_lat > 0.0, slack / unit_lat, 0.0)
            total += query.deadline_s * float(eta.sum())
    return total
