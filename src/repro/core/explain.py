"""Rejection diagnosis: *why* was a query not admitted?

A placement that rejects 60% of queries is only actionable if the
operator can see which constraint binds.  For each rejected query this
module classifies every demanded dataset against the final cluster state
implied by a solution:

* ``NO_DELAY_FEASIBLE_NODE`` — no placement node can meet the pair's
  deadline at all (the QoS is unsatisfiable; only a better network fixes
  it),
* ``REPLICAS_EXHAUSTED`` — delay-feasible nodes exist, but none holds a
  replica and the dataset's ``K`` budget is spent elsewhere (raise K or
  place differently),
* ``CAPACITY_EXHAUSTED`` — a delay-feasible replica holder exists, but
  its compute is full (add compute or admit differently),
* ``SERVABLE`` — the pair could actually be served against the final
  state; the query was rejected because a *sibling* dataset failed
  (all-or-nothing coupling) or by price-based admission control.

The summary histogram over all rejections tells the operator which knob
(network, K, compute, β) to turn.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.core.instance import ProblemInstance
from repro.core.types import PlacementSolution, Query

__all__ = ["RejectionReason", "PairDiagnosis", "QueryDiagnosis", "explain_rejections"]


class RejectionReason(enum.Enum):
    """Binding constraint for one unserved (query, dataset) pair."""

    NO_DELAY_FEASIBLE_NODE = "no_delay_feasible_node"
    REPLICAS_EXHAUSTED = "replicas_exhausted"
    CAPACITY_EXHAUSTED = "capacity_exhausted"
    SERVABLE = "servable"


@dataclass(frozen=True)
class PairDiagnosis:
    """Diagnosis of one demanded dataset of a rejected query.

    Attributes
    ----------
    dataset_id:
        The dataset.
    reason:
        The binding constraint.
    delay_feasible_nodes:
        How many placement nodes meet the pair's deadline.
    feasible_holders:
        Delay-feasible nodes that hold a replica in the final placement.
    """

    dataset_id: int
    reason: RejectionReason
    delay_feasible_nodes: int
    feasible_holders: int


@dataclass(frozen=True)
class QueryDiagnosis:
    """Diagnosis of one rejected query.

    Attributes
    ----------
    query_id:
        The query.
    pairs:
        Per-dataset diagnoses.
    """

    query_id: int
    pairs: tuple[PairDiagnosis, ...]

    @property
    def bottleneck(self) -> RejectionReason:
        """The hardest constraint across the query's datasets.

        Ordered from most to least fundamental: no feasible node >
        replicas exhausted > capacity exhausted > servable.
        """
        order = [
            RejectionReason.NO_DELAY_FEASIBLE_NODE,
            RejectionReason.REPLICAS_EXHAUSTED,
            RejectionReason.CAPACITY_EXHAUSTED,
            RejectionReason.SERVABLE,
        ]
        reasons = {p.reason for p in self.pairs}
        for reason in order:
            if reason in reasons:
                return reason
        return RejectionReason.SERVABLE  # pragma: no cover - pairs never empty


def _node_loads(
    instance: ProblemInstance, solution: PlacementSolution
) -> dict[int, float]:
    load = {v: 0.0 for v in instance.placement_nodes}
    for a in solution.assignments.values():
        load[a.node] += a.compute_ghz
    return load


def _diagnose_pair(
    instance: ProblemInstance,
    solution: PlacementSolution,
    loads: Mapping[int, float],
    query: Query,
    dataset_id: int,
) -> PairDiagnosis:
    dataset = instance.dataset(dataset_id)
    demand = dataset.volume_gb * query.compute_rate
    holders = set(solution.replicas.get(dataset_id, ()))
    slots_left = instance.max_replicas - len(holders)

    delay_ok = [
        v
        for v in instance.placement_nodes
        if instance.pair_latency(query, dataset, v) <= query.deadline_s
    ]
    if not delay_ok:
        return PairDiagnosis(
            dataset_id, RejectionReason.NO_DELAY_FEASIBLE_NODE, 0, 0
        )
    feasible_holders = [v for v in delay_ok if v in holders]
    open_nodes = feasible_holders + (
        [v for v in delay_ok if v not in holders] if slots_left > 0 else []
    )
    if not open_nodes:
        return PairDiagnosis(
            dataset_id,
            RejectionReason.REPLICAS_EXHAUSTED,
            len(delay_ok),
            0,
        )
    cap_ok = any(
        loads[v] + demand
        <= instance.topology.capacity(v) * (1 + 1e-9)
        for v in open_nodes
    )
    reason = (
        RejectionReason.SERVABLE if cap_ok else RejectionReason.CAPACITY_EXHAUSTED
    )
    return PairDiagnosis(
        dataset_id, reason, len(delay_ok), len(feasible_holders)
    )


def explain_rejections(
    instance: ProblemInstance, solution: PlacementSolution
) -> Mapping[int, QueryDiagnosis]:
    """Diagnose every rejected query against the final placement state.

    Returns a read-only mapping query id → :class:`QueryDiagnosis`.  The
    classification is against the *final* loads and replica locations, so
    a ``SERVABLE`` verdict means "there is room now" — the query fell to
    ordering, all-or-nothing coupling, or price-based rejection.
    """
    loads = _node_loads(instance, solution)
    out: dict[int, QueryDiagnosis] = {}
    for q_id in sorted(solution.rejected):
        query = instance.query(q_id)
        pairs = tuple(
            _diagnose_pair(instance, solution, loads, query, d_id)
            for d_id in query.demanded
        )
        out[q_id] = QueryDiagnosis(query_id=q_id, pairs=pairs)
    return MappingProxyType(out)


def rejection_histogram(
    diagnoses: Mapping[int, QueryDiagnosis]
) -> dict[RejectionReason, int]:
    """Count rejected queries by their bottleneck reason."""
    hist = {reason: 0 for reason in RejectionReason}
    for diagnosis in diagnoses.values():
        hist[diagnosis.bottleneck] += 1
    return hist
