"""Shared feasibility queries used by every placement algorithm.

A (query, dataset) pair can be served at node ``v`` iff

1. **deadline** — ``|S_n|·d(v) + |S_n|·α·dt(p(v, h_m)) ≤ d_qm`` (§2.3),
2. **capacity** — ``|S_n|·r_m`` GHz fits in the node's available compute,
3. **replica** — ``v`` already holds a copy of ``S_n``, or a new replica
   may still be placed (< K copies exist).

Keeping these checks in one module guarantees all algorithms (the paper's
and the baselines) compete under identical rules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.state import ClusterState
from repro.core.types import Dataset, Query

__all__ = ["CandidateNode", "candidate_nodes", "delay_feasible_nodes"]


@dataclass(frozen=True)
class CandidateNode:
    """One feasible serving option for a (query, dataset) pair.

    Attributes
    ----------
    node:
        Placement node id.
    latency_s:
        Analytic pair latency at this node.
    has_replica:
        Whether the node already holds the dataset (serving here consumes
        no ``K`` slot).
    """

    node: int
    latency_s: float
    has_replica: bool


def delay_feasible_nodes(
    state: ClusterState, query: Query, dataset: Dataset
) -> np.ndarray:
    """Placement-node ids meeting the pair's deadline (vectorised).

    Computes ``|S_n|·(d(v) + α·dt(v → h_m)) ≤ d_qm`` over all placement
    nodes at once; capacity and replica slots are *not* checked here.
    """
    inst = state.instance
    alpha = query.alpha_for(dataset.dataset_id)
    home_vec = inst.home_delay_vectors.get(query.home_node)
    if home_vec is None:
        home_vec = inst.paths.placement_delays_to(query.home_node)
    latency = dataset.volume_gb * (inst.proc_delays + alpha * home_vec)
    mask = latency <= query.deadline_s
    nodes = np.fromiter(inst.placement_nodes, dtype=np.intp)
    return nodes[mask]


def candidate_nodes(
    state: ClusterState, query: Query, dataset: Dataset
) -> list[CandidateNode]:
    """All fully feasible serving options for (query, dataset), by node id.

    Applies the deadline check vectorised, then filters by capacity and
    replica availability against the *current* cluster state.
    """
    demand = state.compute_demand(query, dataset)
    replica_nodes = state.replicas.nodes(dataset.dataset_id)
    slots_left = state.replicas.remaining_slots(dataset.dataset_id) > 0
    inst = state.instance
    alpha = query.alpha_for(dataset.dataset_id)
    out: list[CandidateNode] = []
    for node in delay_feasible_nodes(state, query, dataset):
        node = int(node)
        has_replica = node in replica_nodes
        if not has_replica and not slots_left:
            continue
        if not state.nodes[node].can_fit(demand):
            continue
        latency = dataset.volume_gb * (
            inst.topology.proc_delay(node)
            + alpha * inst.paths.delay(node, query.home_node)
        )
        out.append(CandidateNode(node=node, latency_s=latency, has_replica=has_replica))
    return out
