"""Shared feasibility queries used by every placement algorithm.

A (query, dataset) pair can be served at node ``v`` iff

1. **deadline** — ``|S_n|·d(v) + |S_n|·α·dt(p(v, h_m)) ≤ d_qm`` (§2.3),
2. **capacity** — ``|S_n|·r_m`` GHz fits in the node's available compute,
3. **replica** — ``v`` already holds a copy of ``S_n``, or a new replica
   may still be placed (< K copies exist).

Keeping these checks in one module guarantees all algorithms (the paper's
and the baselines) compete under identical rules.

The module exposes two granularities:

* :func:`candidate_set` — the vectorised hot path.  One NumPy pass
  produces the full candidate arrays (node ids, latency vector,
  has-replica mask) for a pair; the latency vector computed for the
  deadline check is *reused* as the per-candidate latency instead of
  being re-derived scalar-wise per node.
* :func:`candidate_nodes` — the scalar-object view (a list of
  :class:`CandidateNode`), kept for callers that want per-candidate
  objects; it is a thin materialisation of :func:`candidate_set`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.state import ClusterState
from repro.core.types import Dataset, Query

__all__ = [
    "CandidateNode",
    "CandidateSet",
    "candidate_nodes",
    "candidate_set",
    "delay_feasible_nodes",
    "pair_latency_vector",
]


@dataclass(frozen=True)
class CandidateNode:
    """One feasible serving option for a (query, dataset) pair.

    Attributes
    ----------
    node:
        Placement node id.
    latency_s:
        Analytic pair latency at this node.
    has_replica:
        Whether the node already holds the dataset (serving here consumes
        no ``K`` slot).
    """

    node: int
    latency_s: float
    has_replica: bool


@dataclass(frozen=True)
class CandidateSet:
    """All feasible serving options for one pair, as parallel NumPy arrays.

    Attributes
    ----------
    nodes:
        Candidate node ids (``intp``), in placement order.
    indices:
        Dense positions of the candidates in the instance's placement
        order — index :attr:`~repro.core.instance.ProblemInstance.proc_delays`
        and friends with these.
    latency_s:
        Analytic pair latency per candidate (the deadline check's latency
        vector, sliced — not recomputed).
    has_replica:
        Per candidate: whether the node already holds the dataset.
    """

    nodes: np.ndarray
    indices: np.ndarray
    latency_s: np.ndarray
    has_replica: np.ndarray

    def __len__(self) -> int:
        return int(self.nodes.size)

    def __bool__(self) -> bool:
        return bool(self.nodes.size)

    def take(self, selector: np.ndarray) -> "CandidateSet":
        """Subset of the candidates (boolean mask or positions)."""
        return CandidateSet(
            nodes=self.nodes[selector],
            indices=self.indices[selector],
            latency_s=self.latency_s[selector],
            has_replica=self.has_replica[selector],
        )


def pair_latency_vector(
    state: ClusterState, query: Query, dataset: Dataset
) -> np.ndarray:
    """Analytic pair latency over *all* placement nodes, in placement order.

    ``|S_n|·(d(v) + α·dt(p(v, h_m)))`` as one NumPy expression; element
    ``i`` equals ``instance.pair_latency(query, dataset, placement_nodes[i])``
    bit-for-bit (same IEEE operations, elementwise).  Thin wrapper over
    :meth:`~repro.core.instance.ProblemInstance.pair_latency_vector` (which
    the LP model build also uses).
    """
    return state.instance.pair_latency_vector(query, dataset)


def delay_feasible_nodes(
    state: ClusterState, query: Query, dataset: Dataset
) -> np.ndarray:
    """Placement-node ids meeting the pair's deadline (vectorised).

    Computes ``|S_n|·(d(v) + α·dt(v → h_m)) ≤ d_qm`` over all placement
    nodes at once; capacity and replica slots are *not* checked here.
    """
    latency = pair_latency_vector(state, query, dataset)
    mask = latency <= query.deadline_s
    return state.instance.placement_nodes_array[mask]


def candidate_set(
    state: ClusterState, query: Query, dataset: Dataset
) -> CandidateSet:
    """All fully feasible serving options for (query, dataset), vectorised.

    One pass over placement nodes: the deadline latency vector is computed
    once and reused, the replica-holder mask is scattered from the (small)
    holder set, and the capacity mask compares the pair's demand against
    the cluster's available-compute vector — no per-node Python loop.
    """
    inst = state.instance
    latency = pair_latency_vector(state, query, dataset)
    mask = latency <= query.deadline_s

    holders = state.replicas.nodes(dataset.dataset_id)
    has_replica = np.zeros(inst.num_placement_nodes, dtype=bool)
    if holders:
        node_index = inst.node_index
        has_replica[[node_index[v] for v in holders]] = True
    if state.replicas.remaining_slots(dataset.dataset_id) <= 0:
        # K exhausted: only replica-holding nodes remain usable.
        mask &= has_replica

    demand = state.compute_demand(query, dataset)
    mask &= state.can_fit_mask(demand)

    if state.has_down_nodes:
        # Fault-aware sessions: down nodes cannot serve, and a fresh
        # replica needs a surviving copy to clone from.
        mask &= state.up_mask()
        if not state.has_live_copy(dataset.dataset_id):
            mask &= has_replica

    indices = np.nonzero(mask)[0]
    nodes = inst.placement_nodes_array[indices]
    return CandidateSet(
        nodes=nodes,
        indices=indices,
        latency_s=latency[indices],
        has_replica=has_replica[indices],
    )


def candidate_nodes(
    state: ClusterState, query: Query, dataset: Dataset
) -> list[CandidateNode]:
    """All fully feasible serving options for (query, dataset), by node id.

    Scalar-object view of :func:`candidate_set`, for callers that want
    per-candidate objects rather than arrays.
    """
    cs = candidate_set(state, query, dataset)
    return [
        CandidateNode(node=int(v), latency_s=float(lat), has_replica=bool(rep))
        for v, lat, rep in zip(cs.nodes, cs.latency_s, cs.has_replica)
    ]
