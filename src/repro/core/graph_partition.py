"""Graph-partitioning baseline (paper §4.1, benchmark 2; Golab et al. [10]).

"[It] places K replicas for each dataset at data centers or cloudlets, if
the delay requirement of the query can be satisfied by evaluating the
replica at the data center or the cloudlet ...  It then makes a graph
partitioning with maximum volume of datasets demanded by admitted queries."

Two phases:

1. **Replica pre-placement** — for each dataset, score every placement
   node by the total volume of queries demanding the dataset whose
   deadline that node can meet, and place the dataset's ``K − 1`` extra
   replicas on the top-scoring nodes.
2. **Partitioned assignment** — partition the placement-node graph with
   recursive Kernighan–Lin bisection (communication-minimising, as in
   distributed data-placement systems), then admit queries greedily by
   descending volume, each query restricted to replica-holding nodes
   *inside its home partition* (no new replicas at query time).

The partition restriction is the benchmark's communication-cost lens; it
uses node resources better than Greedy but cannot trade partition locality
against global admission, which is where Appro wins.
"""

from __future__ import annotations

import random

import networkx as nx
import numpy as np

from repro.cluster.state import ClusterState
from repro.core.base import PlacementAlgorithm, SolutionBuilder, require_special_case
from repro.core.feasibility import delay_feasible_nodes
from repro.core.instance import ProblemInstance
from repro.core.kl import kl_refine_sides
from repro.core.types import Assignment, PlacementSolution, Query
from repro.util.validation import check_positive

__all__ = ["GraphS", "GraphG", "partition_placement_nodes"]


def partition_placement_nodes(
    instance: ProblemInstance,
    num_parts: int,
    seed: int = 0,
    *,
    method: str = "fast",
) -> dict[int, int]:
    """Partition placement nodes by recursive Kernighan–Lin bisection.

    Edge weights are inverse path delays between placement nodes (closer
    nodes attract each other into a part).  Returns node id → part id.

    ``method`` selects the bisection engine: ``"fast"`` (default) runs
    the vectorised reimplementation in :mod:`repro.core.kl`, whose output
    matches ``"networkx"`` — the original
    ``networkx.algorithms.community.kernighan_lin_bisection`` path, kept
    as the parity reference.
    """
    check_positive("num_parts", num_parts)
    if method not in ("fast", "networkx"):
        raise ValueError(f"unknown partition method: {method!r}")
    nodes = list(instance.placement_nodes)
    if num_parts <= 1 or len(nodes) <= 1:
        return {v: 0 for v in nodes}
    if method == "networkx":
        return _partition_reference(instance, num_parts, seed)

    idx = np.fromiter(nodes, dtype=np.intp, count=len(nodes))
    delays = np.asarray(instance.paths.delays_matrix())[np.ix_(idx, idx)]
    # The reference adds each edge once in (earlier, later) node order and
    # shares that weight in both directions; the all-pairs delay matrix is
    # direction-asymmetric at ulp level (per-source summation order), so
    # mirror the upper triangle before inverting.
    delays = np.triu(delays, 1)
    delays = delays + delays.T
    # Inverse-delay attraction; unreachable pairs (inf delay) get weight 0,
    # as does the (delay 0) diagonal — a 0-weight edge is value-identical
    # to the reference's absent edge in every KL sum.
    weights = np.zeros_like(delays)
    np.divide(1.0, delays, out=weights, where=delays > 0)

    pos = {v: i for i, v in enumerate(nodes)}
    # Bookkeeping mirrors the reference *including its set semantics*: a
    # networkx subgraph view iterates the filter set (hash order) whenever
    # the part is less than half the graph, and that order feeds the
    # seeded shuffle.  Performing the same set constructions in the same
    # insertion order reproduces it exactly.
    parts: list[set[int]] = [set(nodes)]
    while len(parts) < num_parts:
        # Split the currently largest part.
        parts.sort(key=len, reverse=True)
        largest = parts.pop(0)
        if len(largest) <= 1:
            parts.append(largest)
            break
        sub_filter = set(n for n in largest)
        if 2 * len(sub_filter) < len(nodes):
            sub_nodes = list(sub_filter)
        else:
            sub_nodes = [n for n in nodes if n in sub_filter]
        random.Random(seed).shuffle(sub_nodes)
        # Ascending-position submatrix: initial KL sums then run in the
        # same ascending neighbour order as the reference's adjacency.
        sel = np.asarray(sorted(pos[v] for v in sub_nodes), dtype=np.intp)
        local = {p: i for i, p in enumerate(sel)}
        side = np.zeros(len(sub_nodes), dtype=bool)
        for v in sub_nodes[: len(sub_nodes) // 2]:
            side[local[pos[v]]] = True
        kl_refine_sides(weights[np.ix_(sel, sel)], side)
        a = {v for v in sub_nodes if not side[local[pos[v]]]}
        b = {v for v in sub_nodes if side[local[pos[v]]]}
        parts.extend([set(a), set(b)])
    return {v: i for i, part in enumerate(parts) for v in part}


def _partition_reference(
    instance: ProblemInstance, num_parts: int, seed: int
) -> dict[int, int]:
    """The original networkx-backed partitioner (parity reference)."""
    nodes = list(instance.placement_nodes)
    graph = nx.Graph()
    graph.add_nodes_from(nodes)
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            delay = instance.paths.delay(u, v)
            if delay > 0:
                graph.add_edge(u, v, weight=1.0 / delay)

    parts: list[set[int]] = [set(nodes)]
    while len(parts) < num_parts:
        parts.sort(key=len, reverse=True)
        largest = parts.pop(0)
        if len(largest) <= 1:
            parts.append(largest)
            break
        sub = graph.subgraph(largest)
        a, b = nx.algorithms.community.kernighan_lin_bisection(
            sub, weight="weight", seed=seed
        )
        parts.extend([set(a), set(b)])
    return {v: i for i, part in enumerate(parts) for v in part}


def _preplace_replicas(state: ClusterState) -> None:
    """Phase 1: query-driven, delay-checked replica placement.

    Per the benchmark's description, replicas are placed while scanning
    the queries: for each (query, dataset) demand, if no existing copy can
    meet the query's deadline and the dataset still has ``K`` slots, a new
    replica is placed at the highest-capacity node that *does* meet the
    deadline.  Unlike Greedy, no slot is ever burned on a delay-infeasible
    node; unlike Appro, placement is capacity-greedy per query rather than
    price-guided, so popular regions pile replicas on the same large nodes.
    """
    instance = state.instance
    # Projected compute load per node: placement anticipates the demand it
    # routes toward each replica, so copies spread instead of piling onto
    # one large node (the capacity term of Golab et al.'s formulation).
    projected: dict[int, float] = {v: 0.0 for v in instance.placement_nodes}

    def headroom(v: int) -> float:
        return instance.topology.capacity(v) - projected[v]

    for query in instance.queries:
        for d_id in query.demanded:
            dataset = instance.dataset(d_id)
            demand = state.compute_demand(query, dataset)
            holders = [
                v
                for v in state.replicas.nodes(d_id)
                if state.meets_deadline(query, dataset, v)
            ]
            if holders:
                target = max(holders, key=lambda v: (headroom(v), -v))
                projected[target] += demand
                continue
            if state.replicas.remaining_slots(d_id) == 0:
                continue
            feasible = [
                int(v)
                for v in delay_feasible_nodes(state, query, dataset)
                if not state.replicas.has(d_id, int(v))
            ]
            if not feasible:
                continue
            best = max(feasible, key=lambda v: (headroom(v), -v))
            state.replicas.place(d_id, best)
            projected[best] += demand


def _assign_in_partition(
    state: ClusterState,
    query: Query,
    dataset_id: int,
    parts: dict[int, int],
) -> Assignment | None:
    """Phase 2 step: serve the pair from a replica, preferring the home partition.

    Partition locality is a *preference* (it minimises the communication
    the partitioning was built for), not a hard rule: when the home
    partition has no usable replica, any feasible replica-holding node is
    used.  No new replicas are created at query time.
    """
    dataset = state.instance.dataset(dataset_id)
    home_part = parts[query.home_node]
    feasible = [
        v
        for v in state.replicas.nodes(dataset_id)
        if state.meets_deadline(query, dataset, v)
        and state.nodes[v].can_fit(state.compute_demand(query, dataset))
    ]
    if not feasible:
        return None
    local = [v for v in feasible if parts.get(v) == home_part]
    pool = local if local else feasible
    # Volume-maximising assignment spreads load: prefer the replica node
    # with the most available compute (latency as tie-break).
    best = max(
        pool,
        key=lambda v: (
            state.nodes[v].available_ghz,
            -state.pair_latency(query, dataset, v),
            -v,
        ),
    )
    return state.serve(query, dataset, best)


def _default_parts(instance: ProblemInstance) -> int:
    """Partition count: ~8 placement nodes per part, at least 2."""
    return max(2, instance.num_placement_nodes // 8)


class GraphS(PlacementAlgorithm):
    """Graph-partitioning baseline, special case."""

    name = "graph-s"

    def __init__(self, num_parts: int | None = None, seed: int = 0) -> None:
        self.num_parts = num_parts
        self.seed = seed

    def solve(self, instance: ProblemInstance) -> PlacementSolution:
        require_special_case(instance, self.name)
        state = ClusterState(instance)
        builder = SolutionBuilder(instance, self.name)
        parts = partition_placement_nodes(
            instance, self.num_parts or _default_parts(instance), self.seed
        )
        _preplace_replicas(state)
        order = sorted(
            instance.queries,
            key=lambda q: (-q.demanded_volume(instance.datasets), q.query_id),
        )
        for query in order:
            assignment = _assign_in_partition(state, query, query.demanded[0], parts)
            if assignment is None:
                builder.reject(query.query_id)
            else:
                builder.admit(query.query_id, [assignment])
        builder.extra("replicas_total", state.replicas.total_replicas())
        builder.extra("num_parts", float(len(set(parts.values()))))
        return builder.build(state)


class GraphG(PlacementAlgorithm):
    """Graph-partitioning baseline, general case (all-or-nothing)."""

    name = "graph-g"

    def __init__(self, num_parts: int | None = None, seed: int = 0) -> None:
        self.num_parts = num_parts
        self.seed = seed

    def solve(self, instance: ProblemInstance) -> PlacementSolution:
        state = ClusterState(instance)
        builder = SolutionBuilder(instance, self.name)
        parts = partition_placement_nodes(
            instance, self.num_parts or _default_parts(instance), self.seed
        )
        _preplace_replicas(state)
        order = sorted(
            instance.queries,
            key=lambda q: (-q.demanded_volume(instance.datasets), q.query_id),
        )
        for query in order:
            assignments: list[Assignment] = []
            with state.transaction() as txn:
                for d_id in query.demanded:
                    a = _assign_in_partition(state, query, d_id, parts)
                    if a is None:
                        assignments.clear()
                        break
                    assignments.append(a)
                else:
                    txn.commit()
            if assignments:
                builder.admit(query.query_id, assignments)
            else:
                builder.reject(query.query_id)
        builder.extra("replicas_total", state.replicas.total_replicas())
        builder.extra("num_parts", float(len(set(parts.values()))))
        return builder.build(state)
