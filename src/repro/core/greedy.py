"""Greedy baseline (paper §4.1, benchmark 1).

"It selects a data center or cloudlet with largest available computing
resource to place a replica of a dataset.  If the delay requirement cannot
be satisfied, it then selects a data center or a cloudlet with the second
largest available computing resource to place the replica.  This procedure
continues until the query is admitted or there are already K replicas of
the dataset in the system."

The greedy walk consumes replica slots at capacity-rich nodes regardless of
where the query's home is, which is exactly why it underperforms: remote
queries exhaust ``K`` on nodes that cannot meet their deadline.
"""

from __future__ import annotations

from repro.cluster.consistency import ConsistencyModel
from repro.cluster.state import ClusterState
from repro.core.base import PlacementAlgorithm, SolutionBuilder, require_special_case
from repro.core.feasibility import pair_latency_vector
from repro.core.instance import ProblemInstance
from repro.core.types import Assignment, PlacementSolution, Query
from repro.obs import get_registry
from repro.util.validation import check_positive

__all__ = [
    "GreedyS",
    "GreedyG",
    "_ship_greedy_place_pair",
    "make_sync_greedy_place_pair",
]


def _greedy_place_pair(
    state: ClusterState, query: Query, dataset_id: int
) -> Assignment | None:
    """One paper-faithful greedy step for a (query, dataset) pair.

    Walks placement nodes in descending available compute.  At each node it
    first materialises a replica if none is there (burning a ``K`` slot —
    the replica stays even when the node then fails the delay check, per
    the benchmark's description), then serves if deadline and capacity
    hold.  Gives up when all nodes were tried.

    The deadline check consults the pair's latency vector, computed once
    for the whole walk instead of per node.
    """
    dataset = state.instance.dataset(dataset_id)
    deadline_ok = (
        pair_latency_vector(state, query, dataset) <= query.deadline_s
    )
    node_index = state.instance.node_index
    nodes = sorted(
        state.nodes.values(),
        key=lambda n: (-n.available_ghz, n.node_id),
    )
    faulty = state.has_down_nodes
    for node in nodes:
        if faulty and not state.is_up(node.node_id):
            continue  # crashed nodes serve nothing
        has_replica = state.replicas.has(dataset_id, node.node_id)
        if not has_replica:
            if faulty and not state.has_live_copy(dataset_id):
                continue  # no surviving copy to clone a new replica from
            if not state.replicas.can_place(dataset_id, node.node_id):
                continue  # K exhausted: only replica-holding nodes remain usable
            state.replicas.place(dataset_id, node.node_id)
            get_registry().inc("algo.greedy.replicas_placed")
        if deadline_ok[node_index[node.node_id]] and node.can_fit(
            state.compute_demand(query, dataset)
        ):
            return state.serve(query, dataset, node.node_id)
    return None


def _ship_greedy_place_pair(
    state: ClusterState, query: Query, dataset_id: int
) -> Assignment | None:
    """The greedy walk with admission-time replication paying its freight.

    :func:`_greedy_place_pair` materialises replicas for free — data
    movement is instantaneous, so reacting to a demand burst costs
    nothing.  This variant models the premise that motivates *proactive*
    replication in the first place: serving a (query, dataset) pair at a
    node **without** a copy first ships the dataset from its nearest live
    holder, and that transfer time counts against the query's deadline.
    Pre-placed copies (whose shipping happened ahead of demand) serve at
    the bare analytic latency.

    Two further differences from the paper-faithful walk, both following
    from charging for placement: a fresh copy is only materialised at the
    node that actually serves (no slot burning on failed probes), and the
    walk prefers replica-holding nodes before paying to create new ones.
    """
    dataset = state.instance.dataset(dataset_id)
    instance = state.instance
    lat = pair_latency_vector(state, query, dataset)
    node_index = instance.node_index
    faulty = state.has_down_nodes
    holders = [
        v
        for v in state.replicas.nodes(dataset_id)
        if not faulty or state.is_up(v)
    ]
    nodes = sorted(
        state.nodes.values(),
        key=lambda n: (-n.available_ghz, n.node_id),
    )
    demand = state.compute_demand(query, dataset)
    # Pass 1: existing live copies, no freight.
    for node in nodes:
        v = node.node_id
        if v not in holders:
            continue
        if lat[node_index[v]] <= query.deadline_s and node.can_fit(demand):
            return state.serve(query, dataset, v)
    # Pass 2: ship a fresh copy where deadline minus freight still holds.
    if not holders:
        return None  # nothing live to clone from
    for node in nodes:
        v = node.node_id
        if v in holders or (faulty and not state.is_up(v)):
            continue
        if not state.replicas.can_place(dataset_id, v):
            continue
        ship_s = dataset.volume_gb * min(
            instance.paths.delay(h, v) for h in holders
        )
        if lat[node_index[v]] + ship_s > query.deadline_s:
            continue
        if not node.can_fit(demand):
            continue
        get_registry().inc("algo.greedy.replicas_placed")
        return state.serve(query, dataset, v)
    return None


def make_sync_greedy_place_pair(
    model: ConsistencyModel | None = None, horizon_days: float = 30.0
):
    """Greedy walk charging the §2.4 consistency tax on new replicas.

    :func:`_ship_greedy_place_pair` prices the *initial* shipment of a
    fresh copy; this variant prices keeping that copy *consistent*.  Each
    new replica of a write-hot dataset (one whose
    :class:`~repro.cluster.consistency.ConsistencyModel` growth rate is
    positive) will receive ``syncs_over(horizon_days)`` threshold-sized
    delta shipments from its origin over the planning horizon; that
    sync-bandwidth cost — ``syncs × (threshold × |S_n|) × dt(origin → v)``
    seconds of transfer — counts against the pair's deadline when the walk
    considers materialising a copy at ``v``.  Serving from an *existing*
    copy pays nothing extra (its sync cost is sunk), so the tax caps the
    replica fan-out of update-heavy datasets exactly as §2.4 prescribes.

    A zero growth rate zeroes the tax and the walk degenerates to
    :func:`_ship_greedy_place_pair`-style placement without freight —
    i.e. :func:`_greedy_place_pair` ordering with copy-first preference.
    """
    check_positive("horizon_days", horizon_days)
    sync_model = model or ConsistencyModel()
    syncs = sync_model.syncs_over(horizon_days)
    delta_gb_fraction = sync_model.threshold

    def _sync_greedy_place_pair(
        state: ClusterState, query: Query, dataset_id: int
    ) -> Assignment | None:
        dataset = state.instance.dataset(dataset_id)
        instance = state.instance
        lat = pair_latency_vector(state, query, dataset)
        node_index = instance.node_index
        faulty = state.has_down_nodes
        holders = [
            v
            for v in state.replicas.nodes(dataset_id)
            if not faulty or state.is_up(v)
        ]
        nodes = sorted(
            state.nodes.values(),
            key=lambda n: (-n.available_ghz, n.node_id),
        )
        demand = state.compute_demand(query, dataset)
        # Pass 1: existing copies — their sync cost is sunk.
        for node in nodes:
            v = node.node_id
            if v not in holders:
                continue
            if lat[node_index[v]] <= query.deadline_s and node.can_fit(demand):
                return state.serve(query, dataset, v)
        # Pass 2: a new copy pays its horizon of origin → v delta syncs.
        origin = state.replicas.origin(dataset_id)
        delta_gb = delta_gb_fraction * dataset.volume_gb
        for node in nodes:
            v = node.node_id
            if v in holders or (faulty and not state.is_up(v)):
                continue
            if faulty and not state.has_live_copy(dataset_id):
                continue
            if not state.replicas.can_place(dataset_id, v):
                continue
            tax_s = syncs * delta_gb * instance.paths.delay(origin, v)
            if lat[node_index[v]] + tax_s > query.deadline_s:
                continue
            if not node.can_fit(demand):
                continue
            get_registry().inc("algo.greedy.sync_replicas_placed")
            return state.serve(query, dataset, v)
        return None

    return _sync_greedy_place_pair


class GreedyS(PlacementAlgorithm):
    """Greedy baseline for the special case (one dataset per query)."""

    name = "greedy-s"

    def solve(self, instance: ProblemInstance) -> PlacementSolution:
        require_special_case(instance, self.name)
        obs = get_registry()
        with obs.span(f"algo.{self.name}.solve", queries=instance.num_queries):
            state = ClusterState(instance)
            builder = SolutionBuilder(instance, self.name)
            for query in instance.queries:
                with obs.time(f"algo.{self.name}.admission_s"):
                    assignment = _greedy_place_pair(
                        state, query, query.demanded[0]
                    )
                if assignment is None:
                    obs.inc(f"algo.{self.name}.rejected")
                    builder.reject(query.query_id)
                else:
                    obs.inc(f"algo.{self.name}.admitted")
                    builder.admit(query.query_id, [assignment])
            builder.extra("replicas_total", state.replicas.total_replicas())
            return builder.build(state)


class GreedyG(PlacementAlgorithm):
    """Greedy baseline for the general case (all-or-nothing admission).

    When a query is rejected, the compute its earlier pairs allocated is
    released — but the replicas materialised while probing stay in place,
    as in the benchmark's description ("to place a replica ... this
    procedure continues"): proactive replication is not undone, so
    rejected probes permanently consume ``K`` slots on capacity-rich but
    poorly-placed nodes.  This persistence is the benchmark's documented
    failure mode.
    """

    name = "greedy-g"

    def solve(self, instance: ProblemInstance) -> PlacementSolution:
        obs = get_registry()
        with obs.span(f"algo.{self.name}.solve", queries=instance.num_queries):
            state = ClusterState(instance)
            builder = SolutionBuilder(instance, self.name)
            for query in instance.queries:
                assignments: list[Assignment] = []
                failed = False
                with obs.time(f"algo.{self.name}.admission_s"):
                    for d_id in query.demanded:
                        a = _greedy_place_pair(state, query, d_id)
                        if a is None:
                            failed = True
                            break
                        assignments.append(a)
                if failed:
                    for a in assignments:
                        state.release(a)
                    obs.inc(f"algo.{self.name}.rejected")
                    builder.reject(query.query_id)
                else:
                    obs.inc(f"algo.{self.name}.admitted")
                    builder.admit(query.query_id, assignments)
            builder.extra("replicas_total", state.replicas.total_replicas())
            return builder.build(state)
