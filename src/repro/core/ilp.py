"""The paper's ILP (§3.2), its LP relaxation, and a small branch-and-bound.

The primal program (1)–(7), concretised per (query, dataset, node) triple:

* ``π_{mnl} ∈ {0,1}`` — query ``q_m`` evaluates dataset ``S_n`` at node
  ``v_l`` (only delay-feasible triples are instantiated, which encodes
  Constraint (4) exactly);
* ``x_{nl} ∈ {0,1}`` — a replica of ``S_n`` sits at ``v_l``;
* maximise ``Σ |S_n|·π_{mnl}`` subject to node capacities (2), assignment
  requires replica (3), the ``K`` bound (5), and each pair served at most
  once.

:func:`solve_lp_relaxation` gives a rigorous upper bound on every integral
solution (used for the optimality-gap certificates);
:func:`solve_ilp` runs LP-based best-first branch-and-bound for exact
optima on small instances (tests, gap benches).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from repro.core.instance import ProblemInstance
from repro.util.validation import check_positive

__all__ = ["LpModel", "LpSolution", "build_lp_model", "solve_lp_relaxation", "solve_ilp"]

_INT_TOL = 1e-6


@dataclass(frozen=True)
class LpModel:
    """Index structure of the instantiated LP/ILP.

    Attributes
    ----------
    triples:
        All delay-feasible ``(query_id, dataset_id, node)`` triples; the
        first ``len(triples)`` variables are their ``π``.
    placements:
        All ``(dataset_id, node)`` pairs with an ``x`` variable (origins
        included); variables follow the ``π`` block.
    costs:
        ``linprog`` objective vector (negated volumes on ``π``).
    a_ub, b_ub:
        Inequality system.
    bounds:
        Per-variable bounds (origin copies pinned at 1).
    """

    triples: tuple[tuple[int, int, int], ...]
    placements: tuple[tuple[int, int], ...]
    costs: np.ndarray
    a_ub: coo_matrix
    b_ub: np.ndarray
    bounds: tuple[tuple[float, float], ...]

    @property
    def num_vars(self) -> int:
        """Total variable count (π block then x block)."""
        return len(self.triples) + len(self.placements)


@dataclass(frozen=True)
class LpSolution:
    """Result of an LP or ILP solve.

    Attributes
    ----------
    objective:
        Admitted-volume objective value (GB); for the relaxation this
        upper-bounds every integral solution.
    pi:
        Values of the ``π`` variables, aligned with ``model.triples``.
    x:
        Values of the ``x`` variables, aligned with ``model.placements``.
    integral:
        Whether all variables are within tolerance of {0, 1}.
    nodes_explored:
        Branch-and-bound nodes processed (1 for a bare LP solve).
    """

    objective: float
    pi: np.ndarray
    x: np.ndarray
    integral: bool
    nodes_explored: int = 1


def build_lp_model(instance: ProblemInstance) -> LpModel:
    """Instantiate the paper's program for ``instance``.

    Only delay-feasible triples get a ``π`` variable; a pair with no
    feasible node simply cannot contribute, exactly as Constraint (4)
    forces ``π = 0`` there.
    """
    triples: list[tuple[int, int, int]] = []
    placement_vars: dict[tuple[int, int], int] = {}

    def placement_index(key: tuple[int, int]) -> int:
        if key not in placement_vars:
            placement_vars[key] = len(placement_vars)
        return placement_vars[key]

    # Origin copies always have an x variable (pinned to 1 below).
    for dataset in instance.datasets.values():
        placement_index((dataset.dataset_id, dataset.origin_node))

    for query in instance.queries:
        for d_id in query.demanded:
            dataset = instance.dataset(d_id)
            for v in instance.placement_nodes:
                if instance.pair_latency(query, dataset, v) <= query.deadline_s:
                    triples.append((query.query_id, d_id, v))
                    placement_index((d_id, v))

    n_pi = len(triples)
    placements = tuple(
        key for key, _ in sorted(placement_vars.items(), key=lambda kv: kv[1])
    )
    n_x = len(placements)
    n = n_pi + n_x

    costs = np.zeros(n)
    for t, (q_id, d_id, _) in enumerate(triples):
        costs[t] = -instance.dataset(d_id).volume_gb  # linprog minimises

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    b: list[float] = []
    row = 0

    # (2) node capacity
    triples_at_node: dict[int, list[int]] = {}
    for t, (_, _, v) in enumerate(triples):
        triples_at_node.setdefault(v, []).append(t)
    for v in instance.placement_nodes:
        idxs = triples_at_node.get(v, [])
        if not idxs:
            continue
        for t in idxs:
            q_id, d_id, _ = triples[t]
            rows.append(row)
            cols.append(t)
            vals.append(
                instance.dataset(d_id).volume_gb
                * instance.query(q_id).compute_rate
            )
        b.append(instance.topology.capacity(v))
        row += 1

    # (3) π ≤ x
    for t, (_, d_id, v) in enumerate(triples):
        rows.extend((row, row))
        cols.extend((t, n_pi + placement_vars[(d_id, v)]))
        vals.extend((1.0, -1.0))
        b.append(0.0)
        row += 1

    # (5) Σ_l x ≤ K
    x_by_dataset: dict[int, list[int]] = {}
    for (d_id, _), xi in placement_vars.items():
        x_by_dataset.setdefault(d_id, []).append(xi)
    for d_id, xis in sorted(x_by_dataset.items()):
        for xi in xis:
            rows.append(row)
            cols.append(n_pi + xi)
            vals.append(1.0)
        b.append(float(instance.max_replicas))
        row += 1

    # Each (query, dataset) pair served at most once.
    pair_triples: dict[tuple[int, int], list[int]] = {}
    for t, (q_id, d_id, _) in enumerate(triples):
        pair_triples.setdefault((q_id, d_id), []).append(t)
    for _, idxs in sorted(pair_triples.items()):
        for t in idxs:
            rows.append(row)
            cols.append(t)
            vals.append(1.0)
        b.append(1.0)
        row += 1

    a_ub = coo_matrix((vals, (rows, cols)), shape=(row, n))
    origin_keys = {
        (d.dataset_id, d.origin_node) for d in instance.datasets.values()
    }
    bounds = tuple(
        (0.0, 1.0) if i < n_pi or placements[i - n_pi] not in origin_keys
        else (1.0, 1.0)
        for i in range(n)
    )
    return LpModel(
        triples=tuple(triples),
        placements=placements,
        costs=costs,
        a_ub=a_ub,
        b_ub=np.array(b),
        bounds=bounds,
    )


def _solve(model: LpModel, bounds: tuple[tuple[float, float], ...]) -> LpSolution | None:
    """Solve one LP node; ``None`` when infeasible."""
    if model.num_vars == 0:
        return LpSolution(0.0, np.empty(0), np.empty(0), True)
    res = linprog(
        model.costs,
        A_ub=model.a_ub,
        b_ub=model.b_ub,
        bounds=list(bounds),
        method="highs",
    )
    if not res.success:
        return None
    z = np.asarray(res.x)
    n_pi = len(model.triples)
    integral = bool(
        np.all(np.minimum(np.abs(z), np.abs(1.0 - z)) <= _INT_TOL)
    )
    return LpSolution(
        objective=float(-res.fun),
        pi=z[:n_pi],
        x=z[n_pi:],
        integral=integral,
    )


def solve_lp_relaxation(instance: ProblemInstance) -> LpSolution:
    """Solve the LP relaxation; its objective upper-bounds OPT.

    Raises
    ------
    RuntimeError
        If the solver fails (should not happen: the all-zero point plus
        origin copies is always feasible).
    """
    model = build_lp_model(instance)
    sol = _solve(model, model.bounds)
    if sol is None:
        raise RuntimeError("LP relaxation reported infeasible")
    return sol


def _greedy_incumbent(
    model: LpModel,
    instance: ProblemInstance,
    pi_hint: np.ndarray | None = None,
) -> LpSolution:
    """A feasible integral solution by volume-greedy packing.

    Seeds and tightens branch-and-bound incumbents: triples are committed
    in decreasing (hint, volume) order, respecting capacity, the ``K``
    bound and one-node-per-pair, re-using already-open replicas first.
    ``pi_hint`` (a node's fractional LP values) biases the order toward
    the relaxation's preferences.
    """
    n_pi = len(model.triples)
    pi = np.zeros(n_pi)
    placement_index = {key: i for i, key in enumerate(model.placements)}
    x = np.zeros(len(model.placements))
    for d in instance.datasets.values():
        x[placement_index[(d.dataset_id, d.origin_node)]] = 1.0

    load: dict[int, float] = {v: 0.0 for v in instance.placement_nodes}
    replicas: dict[int, set[int]] = {
        d.dataset_id: {d.origin_node} for d in instance.datasets.values()
    }
    served: set[tuple[int, int]] = set()

    def volume(t: int) -> float:
        return instance.dataset(model.triples[t][1]).volume_gb

    # Two passes: first triples landing on existing replicas, then ones
    # needing a new copy — so K slots go to genuinely uncovered demand.
    if pi_hint is None:
        order = sorted(range(n_pi), key=lambda t: (-volume(t), t))
    else:
        order = sorted(
            range(n_pi), key=lambda t: (-pi_hint[t] * volume(t), -volume(t), t)
        )
    for needs_new in (False, True):
        for t in order:
            q_id, d_id, v = model.triples[t]
            if (q_id, d_id) in served:
                continue
            has = v in replicas[d_id]
            if has == needs_new:
                continue
            if not has and len(replicas[d_id]) >= instance.max_replicas:
                continue
            demand = (
                instance.dataset(d_id).volume_gb
                * instance.query(q_id).compute_rate
            )
            if load[v] + demand > instance.topology.capacity(v) * (1 + 1e-12):
                continue
            load[v] += demand
            served.add((q_id, d_id))
            pi[t] = 1.0
            if not has:
                replicas[d_id].add(v)
                x[placement_index[(d_id, v)]] = 1.0
    objective = float(sum(volume(t) for t in range(n_pi) if pi[t] > 0.5))
    return LpSolution(objective=objective, pi=pi, x=x, integral=True)


@dataclass(order=True)
class _BnbNode:
    """Best-first queue entry: larger LP bound explored first."""

    neg_bound: float
    counter: int
    bounds: tuple[tuple[float, float], ...] = field(compare=False)


def _most_fractional(z: np.ndarray) -> int | None:
    """Index of the variable farthest from integrality, or ``None``."""
    frac = np.minimum(np.abs(z), np.abs(1.0 - z))
    idx = int(np.argmax(frac))
    return idx if frac[idx] > _INT_TOL else None


def solve_ilp(
    instance: ProblemInstance, *, max_nodes: int = 20000
) -> LpSolution:
    """Exact optimum by LP-based best-first branch-and-bound.

    Intended for small instances (tests, gap benches); raises if the node
    budget is exhausted before proving optimality.

    Parameters
    ----------
    max_nodes:
        Branch-and-bound node budget.
    """
    check_positive("max_nodes", max_nodes)
    model = build_lp_model(instance)
    root = _solve(model, model.bounds)
    if root is None:
        raise RuntimeError("root LP infeasible")
    if root.integral:
        return root

    counter = itertools.count()
    heap: list[_BnbNode] = [
        _BnbNode(-root.objective, next(counter), model.bounds)
    ]
    # Seed the incumbent with a greedy integral packing: pruning against a
    # strong lower bound keeps the tree small.
    best: LpSolution | None = _greedy_incumbent(model, instance)
    best_obj = best.objective
    explored = 0
    while heap:
        node = heapq.heappop(heap)
        if -node.neg_bound <= best_obj + 1e-9:
            continue  # cannot beat the incumbent
        explored += 1
        if explored > max_nodes:
            raise RuntimeError(
                f"branch-and-bound exceeded {max_nodes} nodes; instance too large"
            )
        sol = _solve(model, node.bounds)
        if sol is None or sol.objective <= best_obj + 1e-9:
            continue
        # Round this node's fractional solution into an incumbent: cheap,
        # and every improvement tightens pruning for the whole tree.
        rounded = _greedy_incumbent(model, instance, pi_hint=sol.pi)
        if rounded.objective > best_obj:
            best, best_obj = rounded, rounded.objective
            if sol.objective <= best_obj + 1e-9:
                continue
        z = np.concatenate([sol.pi, sol.x])
        branch_var = _most_fractional(z)
        if branch_var is None:
            best, best_obj = sol, sol.objective
            continue
        for fixed in (0.0, 1.0):
            child = list(node.bounds)
            child[branch_var] = (fixed, fixed)
            heapq.heappush(
                heap, _BnbNode(-sol.objective, next(counter), tuple(child))
            )
    return LpSolution(
        objective=best.objective,
        pi=best.pi,
        x=best.x,
        integral=True,
        nodes_explored=explored,
    )
