"""The paper's ILP (§3.2), its LP relaxation, and a small branch-and-bound.

The primal program (1)–(7), concretised per (query, dataset, node) triple:

* ``π_{mnl} ∈ {0,1}`` — query ``q_m`` evaluates dataset ``S_n`` at node
  ``v_l`` (only delay-feasible triples are instantiated, which encodes
  Constraint (4) exactly);
* ``x_{nl} ∈ {0,1}`` — a replica of ``S_n`` sits at ``v_l``;
* maximise ``Σ |S_n|·π_{mnl}`` subject to node capacities (2), assignment
  requires replica (3), the ``K`` bound (5), and each pair served at most
  once.

:func:`solve_lp_relaxation` gives a rigorous upper bound on every integral
solution (used for the optimality-gap certificates);
:func:`solve_ilp` runs LP-based best-first branch-and-bound for exact
optima on small instances (tests, gap benches).

Model assembly is vectorised: feasibility masks come from
:meth:`~repro.core.instance.ProblemInstance.pair_latency_vector` (one array
expression per (query, dataset) pair instead of a scalar ``pair_latency``
call per node) and the four constraint blocks are built as COO arrays with
``np.argsort``/``np.repeat``/``np.concatenate`` instead of per-row Python
appends.  :func:`build_lp_model_scalar` keeps the original per-triple loop
as the reference implementation; ``tests/core/test_lp_parity.py`` pins the
two paths to *bit-identical* models (same triples, placements, costs,
``A_ub``, ``b_ub`` and bounds).

The solve path shares one model between the relaxation, LP-rounding and
branch-and-bound (:func:`solve_lp_from_model`, the ``model=``/``root=``
parameters of :func:`solve_ilp`), and branch-and-bound children are
hot-started: the model is passed to HiGHS once and each node only changes
variable bounds, which keeps the parent basis dual-feasible — child solves
typically take a handful of dual simplex iterations instead of a full
cold solve.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix, csc_matrix

from repro.core.instance import ProblemInstance
from repro.util.validation import check_positive

__all__ = [
    "LpModel",
    "LpSolution",
    "build_lp_model",
    "build_lp_model_scalar",
    "solve_lp_from_model",
    "solve_lp_relaxation",
    "solve_ilp",
]

_INT_TOL = 1e-6


@dataclass(frozen=True)
class LpModel:
    """Index structure of the instantiated LP/ILP.

    Attributes
    ----------
    triples:
        All delay-feasible ``(query_id, dataset_id, node)`` triples; the
        first ``len(triples)`` variables are their ``π``.
    placements:
        All ``(dataset_id, node)`` pairs with an ``x`` variable (origins
        included); variables follow the ``π`` block.
    costs:
        ``linprog`` objective vector (negated volumes on ``π``).
    a_ub, b_ub:
        Inequality system.
    bounds:
        Per-variable ``(lower, upper)`` bounds as an ``(n, 2)`` array
        (origin copies pinned at 1).
    pi_query, pi_dataset, pi_node:
        Column views of :attr:`triples` (``intp`` arrays).
    pi_node_index:
        Dense placement-order index of each triple's node.
    pi_x_index:
        Index (within the ``x`` block) of each triple's placement
        variable.
    pi_pair_index:
        Dense id of each triple's ``(query, dataset)`` pair, numbered in
        sorted pair order (the order of the pair-once constraint rows).
    x_dataset, x_node:
        Column views of :attr:`placements`.
    x_node_index:
        Dense placement-order index of each placement's node.
    x_origin_mask:
        Which placement variables are origin copies (bounds pinned to 1).
    """

    triples: tuple[tuple[int, int, int], ...]
    placements: tuple[tuple[int, int], ...]
    costs: np.ndarray
    a_ub: coo_matrix
    b_ub: np.ndarray
    bounds: np.ndarray
    pi_query: np.ndarray = field(repr=False)
    pi_dataset: np.ndarray = field(repr=False)
    pi_node: np.ndarray = field(repr=False)
    pi_node_index: np.ndarray = field(repr=False)
    pi_x_index: np.ndarray = field(repr=False)
    pi_pair_index: np.ndarray = field(repr=False)
    x_dataset: np.ndarray = field(repr=False)
    x_node: np.ndarray = field(repr=False)
    x_node_index: np.ndarray = field(repr=False)
    x_origin_mask: np.ndarray = field(repr=False)

    @property
    def num_vars(self) -> int:
        """Total variable count (π block then x block)."""
        return len(self.triples) + len(self.placements)


@dataclass(frozen=True)
class LpSolution:
    """Result of an LP or ILP solve.

    Attributes
    ----------
    objective:
        Admitted-volume objective value (GB); for the relaxation this
        upper-bounds every integral solution.
    pi:
        Values of the ``π`` variables, aligned with ``model.triples``.
    x:
        Values of the ``x`` variables, aligned with ``model.placements``.
    integral:
        Whether all variables are within tolerance of {0, 1}.
    nodes_explored:
        Branch-and-bound nodes processed (1 for a bare LP solve).
    """

    objective: float
    pi: np.ndarray
    x: np.ndarray
    integral: bool
    nodes_explored: int = 1


def _empty_intp() -> np.ndarray:
    return np.empty(0, dtype=np.intp)


def build_lp_model(
    instance: ProblemInstance, *, method: str = "vector"
) -> LpModel:
    """Instantiate the paper's program for ``instance``.

    Only delay-feasible triples get a ``π`` variable; a pair with no
    feasible node simply cannot contribute, exactly as Constraint (4)
    forces ``π = 0`` there.

    Parameters
    ----------
    method:
        ``"vector"`` (default) assembles the model with array operations;
        ``"scalar"`` runs the original per-triple reference loop
        (:func:`build_lp_model_scalar`).  Both produce bit-identical
        models.
    """
    if method == "scalar":
        return build_lp_model_scalar(instance)
    if method != "vector":
        raise ValueError(f"unknown build method {method!r}")

    n_nodes = instance.num_placement_nodes
    nodes_arr = instance.placement_nodes_array
    node_index = instance.node_index

    # -- delay-feasible triples, one vector comparison per pair ----------
    tq_parts: list[np.ndarray] = []
    td_parts: list[np.ndarray] = []
    tn_parts: list[np.ndarray] = []
    for query in instance.queries:
        deadline = query.deadline_s
        for d_id in query.demanded:
            dataset = instance.dataset(d_id)
            latency = instance.pair_latency_vector(query, dataset)
            feasible = np.flatnonzero(latency <= deadline)
            if feasible.size:
                tq_parts.append(
                    np.full(feasible.size, query.query_id, dtype=np.intp)
                )
                td_parts.append(np.full(feasible.size, d_id, dtype=np.intp))
                tn_parts.append(feasible)
    if tq_parts:
        tq = np.concatenate(tq_parts)
        td = np.concatenate(td_parts)
        tn = np.concatenate(tn_parts)
    else:
        tq, td, tn = _empty_intp(), _empty_intp(), _empty_intp()
    n_pi = tq.size

    # -- placement variables: origins first, then first triple occurrence
    datasets = list(instance.datasets.values())
    origin_d = np.fromiter(
        (d.dataset_id for d in datasets), np.intp, count=len(datasets)
    )
    origin_nidx = np.fromiter(
        (node_index[d.origin_node] for d in datasets),
        np.intp,
        count=len(datasets),
    )
    stride = max(n_nodes, 1)  # (dataset, node) → unique scalar code
    origin_codes = origin_d * stride + origin_nidx
    codes = np.concatenate([origin_codes, td * stride + tn])
    uniq, first_pos = np.unique(codes, return_index=True)
    var_order = np.argsort(first_pos, kind="stable")
    uniq_ordered = uniq[var_order]
    rank = np.empty(uniq.size, dtype=np.intp)
    rank[var_order] = np.arange(uniq.size, dtype=np.intp)
    pi_x = rank[np.searchsorted(uniq, td * stride + tn)]
    x_d = uniq_ordered // stride
    x_nidx = uniq_ordered % stride
    n_x = uniq_ordered.size
    n = n_pi + n_x
    x_origin = np.zeros(n_x, dtype=bool)
    x_origin[rank[np.searchsorted(uniq, origin_codes)]] = True

    # -- per-dataset / per-query coefficient tables ----------------------
    ds_ids = origin_d
    ds_sort = np.argsort(ds_ids, kind="stable")
    sorted_ds_ids = ds_ids[ds_sort]
    sorted_volumes = np.fromiter(
        (d.volume_gb for d in datasets), np.float64, count=len(datasets)
    )[ds_sort]
    rates = np.fromiter(
        (q.compute_rate for q in instance.queries),
        np.float64,
        count=len(instance.queries),
    )
    triple_volumes = (
        sorted_volumes[np.searchsorted(sorted_ds_ids, td)]
        if n_pi
        else np.empty(0)
    )

    costs = np.zeros(n)
    costs[:n_pi] = -triple_volumes  # linprog minimises

    # -- (2) node capacity: triples grouped by node, t ascending ---------
    demand = triple_volumes * rates[tq] if n_pi else np.empty(0)
    cap_order = np.argsort(tn, kind="stable")
    cap_nodes, cap_inv = np.unique(tn, return_inverse=True)
    n_cap = cap_nodes.size
    rows_cap = cap_inv[cap_order]
    cols_cap = cap_order
    vals_cap = demand[cap_order]
    b_cap = instance.capacities[cap_nodes]

    # -- (3) π ≤ x: one row per triple, (π, x) entries interleaved -------
    base = n_cap
    rows_px = np.repeat(base + np.arange(n_pi, dtype=np.intp), 2)
    cols_px = np.empty(2 * n_pi, dtype=np.intp)
    cols_px[0::2] = np.arange(n_pi, dtype=np.intp)
    cols_px[1::2] = n_pi + pi_x
    vals_px = np.tile(np.array([1.0, -1.0]), n_pi)
    b_px = np.zeros(n_pi)

    # -- (5) Σ_l x ≤ K: placements grouped by dataset id -----------------
    base += n_pi
    k_order = np.argsort(x_d, kind="stable")
    k_ds, k_inv = np.unique(x_d, return_inverse=True)
    rows_k = base + k_inv[k_order]
    cols_k = n_pi + k_order
    vals_k = np.ones(n_x)
    b_k = np.full(k_ds.size, float(instance.max_replicas))

    # -- each (query, dataset) pair served at most once ------------------
    base += k_ds.size
    max_d = int(sorted_ds_ids[-1]) + 1 if datasets else 1
    pair_codes = tq * max_d + td
    p_order = np.argsort(pair_codes, kind="stable")
    _, pair_inv = np.unique(pair_codes, return_inverse=True)
    n_pairs = int(pair_inv.max()) + 1 if n_pi else 0
    rows_p = base + pair_inv[p_order]
    cols_p = p_order
    vals_p = np.ones(n_pi)
    b_p = np.ones(n_pairs)

    row_total = base + n_pairs
    a_ub = coo_matrix(
        (
            np.concatenate([vals_cap, vals_px, vals_k, vals_p]),
            (
                np.concatenate([rows_cap, rows_px, rows_k, rows_p]),
                np.concatenate([cols_cap, cols_px, cols_k, cols_p]),
            ),
        ),
        shape=(row_total, n),
    )
    b_ub = np.concatenate([b_cap, b_px, b_k, b_p])

    bounds = np.empty((n, 2))
    bounds[:, 0] = 0.0
    bounds[:, 1] = 1.0
    bounds[n_pi:, 0][x_origin] = 1.0  # origin copies pinned

    triple_nodes = nodes_arr[tn] if n_pi else _empty_intp()
    x_nodes = nodes_arr[x_nidx] if n_x else _empty_intp()
    return LpModel(
        triples=tuple(zip(tq.tolist(), td.tolist(), triple_nodes.tolist())),
        placements=tuple(zip(x_d.tolist(), x_nodes.tolist())),
        costs=costs,
        a_ub=a_ub,
        b_ub=b_ub,
        bounds=bounds,
        pi_query=tq,
        pi_dataset=td,
        pi_node=triple_nodes,
        pi_node_index=tn,
        pi_x_index=pi_x,
        pi_pair_index=pair_inv,
        x_dataset=x_d,
        x_node=x_nodes,
        x_node_index=x_nidx,
        x_origin_mask=x_origin,
    )


def build_lp_model_scalar(instance: ProblemInstance) -> LpModel:
    """Reference model build: the original per-triple scalar loop.

    Kept verbatim as the parity baseline for the vectorised
    :func:`build_lp_model`; only the derived index arrays at the end are
    new (computed with the same per-element Python lookups).
    """
    triples: list[tuple[int, int, int]] = []
    placement_vars: dict[tuple[int, int], int] = {}

    def placement_index(key: tuple[int, int]) -> int:
        if key not in placement_vars:
            placement_vars[key] = len(placement_vars)
        return placement_vars[key]

    # Origin copies always have an x variable (pinned to 1 below).
    for dataset in instance.datasets.values():
        placement_index((dataset.dataset_id, dataset.origin_node))

    for query in instance.queries:
        for d_id in query.demanded:
            dataset = instance.dataset(d_id)
            for v in instance.placement_nodes:
                if instance.pair_latency(query, dataset, v) <= query.deadline_s:
                    triples.append((query.query_id, d_id, v))
                    placement_index((d_id, v))

    n_pi = len(triples)
    placements = tuple(
        key for key, _ in sorted(placement_vars.items(), key=lambda kv: kv[1])
    )
    n_x = len(placements)
    n = n_pi + n_x

    costs = np.zeros(n)
    for t, (q_id, d_id, _) in enumerate(triples):
        costs[t] = -instance.dataset(d_id).volume_gb  # linprog minimises

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    b: list[float] = []
    row = 0

    # (2) node capacity
    triples_at_node: dict[int, list[int]] = {}
    for t, (_, _, v) in enumerate(triples):
        triples_at_node.setdefault(v, []).append(t)
    for v in instance.placement_nodes:
        idxs = triples_at_node.get(v, [])
        if not idxs:
            continue
        for t in idxs:
            q_id, d_id, _ = triples[t]
            rows.append(row)
            cols.append(t)
            vals.append(
                instance.dataset(d_id).volume_gb
                * instance.query(q_id).compute_rate
            )
        b.append(instance.topology.capacity(v))
        row += 1

    # (3) π ≤ x
    for t, (_, d_id, v) in enumerate(triples):
        rows.extend((row, row))
        cols.extend((t, n_pi + placement_vars[(d_id, v)]))
        vals.extend((1.0, -1.0))
        b.append(0.0)
        row += 1

    # (5) Σ_l x ≤ K
    x_by_dataset: dict[int, list[int]] = {}
    for (d_id, _), xi in placement_vars.items():
        x_by_dataset.setdefault(d_id, []).append(xi)
    for d_id, xis in sorted(x_by_dataset.items()):
        for xi in xis:
            rows.append(row)
            cols.append(n_pi + xi)
            vals.append(1.0)
        b.append(float(instance.max_replicas))
        row += 1

    # Each (query, dataset) pair served at most once.
    pair_triples: dict[tuple[int, int], list[int]] = {}
    for t, (q_id, d_id, _) in enumerate(triples):
        pair_triples.setdefault((q_id, d_id), []).append(t)
    for _, idxs in sorted(pair_triples.items()):
        for t in idxs:
            rows.append(row)
            cols.append(t)
            vals.append(1.0)
        b.append(1.0)
        row += 1

    a_ub = coo_matrix((vals, (rows, cols)), shape=(row, n))
    origin_keys = {
        (d.dataset_id, d.origin_node) for d in instance.datasets.values()
    }
    bounds = np.empty((n, 2))
    bounds[:, 0] = 0.0
    bounds[:, 1] = 1.0
    for i, key in enumerate(placements):
        if key in origin_keys:
            bounds[n_pi + i, 0] = 1.0

    node_index = instance.node_index
    pair_order = {pair: i for i, pair in enumerate(sorted(pair_triples))}
    return LpModel(
        triples=tuple(triples),
        placements=placements,
        costs=costs,
        a_ub=a_ub,
        b_ub=np.array(b),
        bounds=bounds,
        pi_query=np.fromiter(
            (q for q, _, _ in triples), np.intp, count=n_pi
        ),
        pi_dataset=np.fromiter(
            (d for _, d, _ in triples), np.intp, count=n_pi
        ),
        pi_node=np.fromiter(
            (v for _, _, v in triples), np.intp, count=n_pi
        ),
        pi_node_index=np.fromiter(
            (node_index[v] for _, _, v in triples), np.intp, count=n_pi
        ),
        pi_x_index=np.fromiter(
            (placement_vars[(d, v)] for _, d, v in triples),
            np.intp,
            count=n_pi,
        ),
        pi_pair_index=np.fromiter(
            (pair_order[(q, d)] for q, d, _ in triples), np.intp, count=n_pi
        ),
        x_dataset=np.fromiter((d for d, _ in placements), np.intp, count=n_x),
        x_node=np.fromiter((v for _, v in placements), np.intp, count=n_x),
        x_node_index=np.fromiter(
            (node_index[v] for _, v in placements), np.intp, count=n_x
        ),
        x_origin_mask=np.fromiter(
            (key in origin_keys for key in placements), bool, count=n_x
        ),
    )


def _solve(model: LpModel, bounds: np.ndarray) -> LpSolution | None:
    """Solve one LP (cold) via ``linprog``; ``None`` when infeasible."""
    if model.num_vars == 0:
        return LpSolution(0.0, np.empty(0), np.empty(0), True)
    res = linprog(
        model.costs,
        A_ub=model.a_ub,
        b_ub=model.b_ub,
        bounds=bounds,
        method="highs",
    )
    if not res.success:
        return None
    z = np.asarray(res.x)
    n_pi = len(model.triples)
    integral = bool(
        np.all(np.minimum(np.abs(z), np.abs(1.0 - z)) <= _INT_TOL)
    )
    return LpSolution(
        objective=float(-res.fun),
        pi=z[:n_pi],
        x=z[n_pi:],
        integral=integral,
    )


def solve_lp_from_model(model: LpModel) -> LpSolution:
    """Solve the LP relaxation of an already-built model.

    Use this (rather than :func:`solve_lp_relaxation`) when the model is
    shared with rounding or branch-and-bound, so it is only assembled
    once.

    Raises
    ------
    RuntimeError
        If the solver fails (should not happen: the all-zero point plus
        origin copies is always feasible).
    """
    sol = _solve(model, model.bounds)
    if sol is None:
        raise RuntimeError("LP relaxation reported infeasible")
    return sol


def solve_lp_relaxation(instance: ProblemInstance) -> LpSolution:
    """Build the model and solve its LP relaxation (upper-bounds OPT).

    Raises
    ------
    RuntimeError
        If the solver fails (should not happen: the all-zero point plus
        origin copies is always feasible).
    """
    return solve_lp_from_model(build_lp_model(instance))


def _highs_core():
    """scipy's bundled HiGHS bindings, or ``None`` when unavailable."""
    try:
        from scipy.optimize._highspy import _core  # type: ignore

        return _core
    except Exception:  # pragma: no cover - depends on scipy build
        return None


class _ChildSolver:
    """Hot-started LP solves for branch-and-bound children.

    The model is passed to HiGHS once; every node then only changes
    variable bounds and re-runs.  Bound changes keep the previous basis
    dual-feasible, so the dual simplex re-optimises in a handful of
    iterations instead of solving from scratch.  Falls back to cold
    ``linprog`` solves when the bundled bindings are unavailable.
    """

    def __init__(self, model: LpModel) -> None:
        self._model = model
        self._h = None
        core = _highs_core()
        if core is None:  # pragma: no cover - depends on scipy build
            return
        n = model.num_vars
        a_csc = csc_matrix(model.a_ub)
        h = core._Highs()
        h.setOptionValue("output_flag", False)
        h.setOptionValue("threads", 1)
        lp = core.HighsLp()
        lp.num_col_ = n
        lp.num_row_ = a_csc.shape[0]
        lp.col_cost_ = model.costs
        lp.col_lower_ = model.bounds[:, 0]
        lp.col_upper_ = model.bounds[:, 1]
        lp.row_lower_ = np.full(a_csc.shape[0], -np.inf)
        lp.row_upper_ = model.b_ub
        lp.a_matrix_.format_ = core.MatrixFormat.kColwise
        lp.a_matrix_.start_ = a_csc.indptr
        lp.a_matrix_.index_ = a_csc.indices
        lp.a_matrix_.value_ = a_csc.data
        if h.passModel(lp) != core.HighsStatus.kOk:  # pragma: no cover
            return
        self._core = core
        self._h = h
        self._all_cols = np.arange(n, dtype=np.int32)

    def solve(self, bounds: np.ndarray) -> LpSolution | None:
        """Solve the model under ``bounds``; ``None`` when infeasible."""
        model = self._model
        if self._h is None:  # pragma: no cover - depends on scipy build
            return _solve(model, bounds)
        h, core = self._h, self._core
        n = model.num_vars
        h.changeColsBounds(
            n, self._all_cols, bounds[:, 0].copy(), bounds[:, 1].copy()
        )
        h.run()
        status = h.getModelStatus()
        if status == core.HighsModelStatus.kInfeasible:
            return None
        if status != core.HighsModelStatus.kOptimal:  # pragma: no cover
            return _solve(model, bounds)  # numerical trouble: cold solve
        z = np.asarray(h.getSolution().col_value)
        n_pi = len(model.triples)
        integral = bool(
            np.all(np.minimum(np.abs(z), np.abs(1.0 - z)) <= _INT_TOL)
        )
        return LpSolution(
            objective=float(-h.getObjectiveValue()),
            pi=z[:n_pi],
            x=z[n_pi:],
            integral=integral,
        )


def _greedy_incumbent(
    model: LpModel,
    instance: ProblemInstance,
    pi_hint: np.ndarray | None = None,
) -> LpSolution:
    """A feasible integral solution by volume-greedy packing.

    Seeds and tightens branch-and-bound incumbents: triples are committed
    in decreasing (hint, volume) order, respecting capacity, the ``K``
    bound and one-node-per-pair, re-using already-open replicas first.
    ``pi_hint`` (a node's fractional LP values) biases the order toward
    the relaxation's preferences.

    The ordering keys and per-triple coefficients come from the model's
    precomputed arrays (stable argsort instead of a keyed ``sorted``, no
    dict or dataclass lookups inside the commit loop); the committed
    solution is bit-identical to the original per-tuple implementation.
    """
    n_pi = len(model.triples)
    volumes = -model.costs[:n_pi]  # exact: costs are negated volumes
    rates = np.fromiter(
        (q.compute_rate for q in instance.queries),
        np.float64,
        count=len(instance.queries),
    )
    demands = volumes * rates[model.pi_query] if n_pi else np.empty(0)

    if pi_hint is None:
        order = np.argsort(-volumes, kind="stable")
    else:
        # sorted(key=(-hint*vol, -vol, t)): lexsort is stable, so equal
        # keys fall back to ascending t exactly like the tuple compare.
        order = np.lexsort((-volumes, -(pi_hint * volumes)))

    n_datasets = int(model.x_dataset.max()) + 1 if len(model.placements) else 0
    replica_count = [0] * n_datasets
    for d in instance.datasets.values():
        replica_count[d.dataset_id] = 1  # the origin copy
    max_replicas = instance.max_replicas

    x = np.zeros(len(model.placements))
    x[model.x_origin_mask] = 1.0
    placed = model.x_origin_mask.tolist()  # replica present per x var

    caps = instance.capacities.tolist()
    load = [0.0] * instance.num_placement_nodes
    n_pairs = int(model.pi_pair_index.max()) + 1 if n_pi else 0
    served = [False] * n_pairs

    t_node = model.pi_node_index.tolist()
    t_xvar = model.pi_x_index.tolist()
    t_pair = model.pi_pair_index.tolist()
    t_dataset = model.pi_dataset.tolist()
    vol_list = volumes.tolist()
    dem_list = demands.tolist()

    pi = np.zeros(n_pi)
    order_list = order.tolist()
    # Two passes: first triples landing on existing replicas, then ones
    # needing a new copy — so K slots go to genuinely uncovered demand.
    for needs_new in (False, True):
        for t in order_list:
            if served[t_pair[t]]:
                continue
            xi = t_xvar[t]
            has = placed[xi]
            if has == needs_new:
                continue
            d_id = t_dataset[t]
            if not has and replica_count[d_id] >= max_replicas:
                continue
            v = t_node[t]
            demand = dem_list[t]
            if load[v] + demand > caps[v] * (1 + 1e-12):
                continue
            load[v] += demand
            served[t_pair[t]] = True
            pi[t] = 1.0
            if not has:
                replica_count[d_id] += 1
                placed[xi] = True
                x[xi] = 1.0
    pi_list = pi.tolist()
    objective = float(
        sum(vol_list[t] for t in range(n_pi) if pi_list[t] > 0.5)
    )
    return LpSolution(objective=objective, pi=pi, x=x, integral=True)


@dataclass(order=True)
class _BnbNode:
    """Best-first queue entry: larger LP bound explored first."""

    neg_bound: float
    counter: int
    bounds: np.ndarray = field(compare=False)


def _most_fractional(z: np.ndarray) -> int | None:
    """Index of the variable farthest from integrality, or ``None``."""
    frac = np.minimum(np.abs(z), np.abs(1.0 - z))
    idx = int(np.argmax(frac))
    return idx if frac[idx] > _INT_TOL else None


def solve_ilp(
    instance: ProblemInstance,
    *,
    max_nodes: int = 20000,
    model: LpModel | None = None,
    root: LpSolution | None = None,
) -> LpSolution:
    """Exact optimum by LP-based best-first branch-and-bound.

    Intended for small instances (tests, gap benches); raises if the node
    budget is exhausted before proving optimality.

    Parameters
    ----------
    max_nodes:
        Branch-and-bound node budget.
    model:
        A model previously built with :func:`build_lp_model`, to share
        the assembly with the relaxation / rounding paths.
    root:
        The model's LP relaxation (from :func:`solve_lp_from_model`), to
        avoid re-solving the root when the caller already has it.
    """
    check_positive("max_nodes", max_nodes)
    if model is None:
        model = build_lp_model(instance)
    if root is None:
        root = _solve(model, model.bounds)
    if root is None:
        raise RuntimeError("root LP infeasible")
    if root.integral:
        return root

    counter = itertools.count()
    heap: list[_BnbNode] = [
        _BnbNode(-root.objective, next(counter), model.bounds)
    ]
    children = _ChildSolver(model)
    # Seed the incumbent with a greedy integral packing: pruning against a
    # strong lower bound keeps the tree small.
    best: LpSolution | None = _greedy_incumbent(model, instance)
    best_obj = best.objective
    explored = 0
    while heap:
        node = heapq.heappop(heap)
        if -node.neg_bound <= best_obj + 1e-9:
            continue  # cannot beat the incumbent
        explored += 1
        if explored > max_nodes:
            raise RuntimeError(
                f"branch-and-bound exceeded {max_nodes} nodes; instance too large"
            )
        sol = children.solve(node.bounds)
        if sol is None or sol.objective <= best_obj + 1e-9:
            continue
        # Round this node's fractional solution into an incumbent: cheap,
        # and every improvement tightens pruning for the whole tree.
        rounded = _greedy_incumbent(model, instance, pi_hint=sol.pi)
        if rounded.objective > best_obj:
            best, best_obj = rounded, rounded.objective
            if sol.objective <= best_obj + 1e-9:
                continue
        z = np.concatenate([sol.pi, sol.x])
        branch_var = _most_fractional(z)
        if branch_var is None:
            best, best_obj = sol, sol.objective
            continue
        for fixed in (0.0, 1.0):
            child = node.bounds.copy()
            child[branch_var] = (fixed, fixed)
            heapq.heappush(
                heap, _BnbNode(-sol.objective, next(counter), child)
            )
    return LpSolution(
        objective=best.objective,
        pi=best.pi,
        x=best.x,
        integral=True,
        nodes_explored=explored,
    )
