"""Problem instances: topology + workload + replication bound ``K``.

A :class:`ProblemInstance` bundles everything a placement algorithm needs
and precomputes the arrays used in inner loops (path-delay vectors, node
capacity vectors), so algorithms stay allocation-free per decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from types import MappingProxyType
from typing import Mapping, Sequence

import numpy as np

from repro.core.types import Dataset, Query
from repro.network.paths import PathCache
from repro.topology.twotier import EdgeCloudTopology
from repro.util.validation import ValidationError, check_positive

__all__ = ["ProblemInstance"]


@dataclass(frozen=True)
class ProblemInstance:
    """One instance of the proactive data replication and placement problem.

    Attributes
    ----------
    topology:
        The two-tier edge cloud.
    datasets:
        Dataset id → :class:`Dataset`.
    queries:
        The query set ``Q`` (ids must be dense ``0..M-1``).
    max_replicas:
        ``K``, the maximum number of replicas per dataset (the origin copy
        counts toward ``K``; the paper's "at most K replicas in the
        system").
    """

    topology: EdgeCloudTopology
    datasets: Mapping[int, Dataset]
    queries: Sequence[Query]
    max_replicas: int = 3

    def __post_init__(self) -> None:
        check_positive("max_replicas", self.max_replicas)
        object.__setattr__(self, "datasets", MappingProxyType(dict(self.datasets)))
        object.__setattr__(self, "queries", tuple(self.queries))
        placement = set(self.topology.placement_nodes)
        for ds in self.datasets.values():
            if ds.origin_node not in placement:
                raise ValidationError(
                    f"dataset {ds.dataset_id} originates at non-placement node "
                    f"{ds.origin_node}"
                )
        for i, q in enumerate(self.queries):
            if q.query_id != i:
                raise ValidationError(
                    f"query ids must be dense 0..M-1; position {i} has id "
                    f"{q.query_id}"
                )
            if q.home_node not in placement:
                raise ValidationError(
                    f"query {q.query_id} has non-placement home node {q.home_node}"
                )
            for d in q.demanded:
                if d not in self.datasets:
                    raise ValidationError(
                        f"query {q.query_id} demands unknown dataset {d}"
                    )

    # -- cached derived structures ---------------------------------------

    @cached_property
    def paths(self) -> PathCache:
        """All-pairs minimum-delay oracle for :attr:`topology`."""
        return PathCache(self.topology)

    @cached_property
    def placement_nodes(self) -> tuple[int, ...]:
        """Placement node ids, in the canonical placement order."""
        return self.topology.placement_nodes

    @cached_property
    def node_index(self) -> dict[int, int]:
        """Node id → dense index into placement-order arrays."""
        return {v: i for i, v in enumerate(self.placement_nodes)}

    @cached_property
    def placement_nodes_array(self) -> np.ndarray:
        """Placement node ids as an ``intp`` array (placement order)."""
        arr = np.fromiter(
            self.placement_nodes, dtype=np.intp, count=len(self.placement_nodes)
        )
        arr.flags.writeable = False
        return arr

    @cached_property
    def capacities(self) -> np.ndarray:
        """``B(v)`` over placement nodes (placement order), GHz."""
        arr = self.topology.capacities_array()
        arr.flags.writeable = False
        return arr

    @cached_property
    def proc_delays(self) -> np.ndarray:
        """``d(v)`` over placement nodes (placement order), s/GB."""
        arr = self.topology.proc_delays_array()
        arr.flags.writeable = False
        return arr

    @property
    def home_delay_vectors(self) -> dict[int, np.ndarray]:
        """For each distinct home node: ``dt(p(v, home))`` over placement nodes.

        Memoised per path-cache :attr:`~repro.network.paths.PathCache.generation`:
        when the dynamics layer recomputes paths the next access rebuilds
        the vectors, and while the generation never moves (every
        dynamics-free run) this behaves exactly like the former
        ``cached_property`` — same objects, same values.
        """
        generation = self.paths.generation
        cached = self.__dict__.get("_home_delay_vectors")
        if cached is not None and cached[0] == generation:
            return cached[1]
        vectors: dict[int, np.ndarray] = {}
        for q in self.queries:
            if q.home_node not in vectors:
                vec = self.paths.placement_delays_to(q.home_node)
                vec.flags.writeable = False
                vectors[q.home_node] = vec
        object.__setattr__(self, "_home_delay_vectors", (generation, vectors))
        return vectors

    @property
    def home_delay_matrix(self) -> np.ndarray:
        """``dt(p(v, h))`` for *every* topology node ``h`` at once.

        Row ``h`` equals :meth:`home_delay_vectors`'s entry for ``h``
        (bit-for-bit — both are slices of the same all-pairs matrix),
        but covers ad-hoc homes that never appear in ``queries``.  This
        is the static table the serving gateway's screening engine
        indexes per batch instead of one cached-vector lookup per pair.
        """
        return self.paths.home_delay_matrix()

    # -- convenience ------------------------------------------------------

    @property
    def num_queries(self) -> int:
        """``|Q|``."""
        return len(self.queries)

    @property
    def num_datasets(self) -> int:
        """``|S|``."""
        return len(self.datasets)

    @property
    def num_placement_nodes(self) -> int:
        """``|V| = |CL ∪ DC|``."""
        return len(self.placement_nodes)

    def dataset(self, dataset_id: int) -> Dataset:
        """Lookup one dataset."""
        return self.datasets[dataset_id]

    def query(self, query_id: int) -> Query:
        """Lookup one query."""
        return self.queries[query_id]

    def total_demanded_volume(self) -> float:
        """Σ over queries of the volume they demand (upper bound on the objective)."""
        return sum(
            self.datasets[d].volume_gb for q in self.queries for d in q.demanded
        )

    def is_special_case(self) -> bool:
        """Whether every query demands exactly one dataset (Appro-S regime)."""
        return all(q.num_datasets == 1 for q in self.queries)

    def pair_latency(self, query: Query, dataset: Dataset, node: int) -> float:
        """Analytic latency of serving ``dataset`` for ``query`` at ``node``.

        ``|S_n|·d(v) + |S_n|·α_{nm}·dt(p(v, h_m))`` (§2.3).
        """
        alpha = query.alpha_for(dataset.dataset_id)
        dt = self.paths.delay(node, query.home_node)
        return dataset.volume_gb * (
            self.topology.proc_delay(node) + alpha * dt
        )

    def pair_latency_vector(self, query: Query, dataset: Dataset) -> np.ndarray:
        """:meth:`pair_latency` over *all* placement nodes, in placement order.

        One NumPy expression; element ``i`` equals
        ``pair_latency(query, dataset, placement_nodes[i])`` bit-for-bit
        (same IEEE operations, elementwise).
        """
        alpha = query.alpha_for(dataset.dataset_id)
        home_vec = self.home_delay_vectors.get(query.home_node)
        if home_vec is None:
            home_vec = self.paths.placement_delays_to(query.home_node)
        return dataset.volume_gb * (self.proc_delays + alpha * home_vec)
