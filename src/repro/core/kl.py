"""Vectorised Kernighan–Lin bisection matching networkx's seeded output.

The graph-partitioning baseline spends essentially all of its runtime in
``networkx.algorithms.community.kernighan_lin_bisection`` — a pure-Python
lazy-heap implementation whose cost on the (complete) placement graph is
quadratic with large constants.  This module reimplements the *same*
algorithm over a dense weight matrix with NumPy inner loops:

* the initial balanced partition comes from ``random.Random(seed)``
  shuffling positions, exactly as networkx's ``py_random_state`` does;
* per-sweep node costs are sequential left-to-right sums in neighbour
  order (``cumsum``), matching Python's ``sum`` over the adjacency dict
  bit-for-bit;
* each swap applies the same ``value + 2·w`` updates in the same order,
  so every selected node, sweep length and stopping decision reproduces
  the networkx run.

The only divergence is tie-breaking between *exactly equal* float costs:
networkx breaks ties by heap insertion counter, this implementation by
position.  With continuous (inverse-delay) weights exact collisions of
evolved cost sums do not occur; ``tests/core/test_vector_parity.py``
checks equality of whole partitions against networkx across seeds and
topologies.

Absent edges are modelled as weight ``0.0``, which contributes ``±0.0``
to sequential sums and updates — value-identical to skipping the term.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = ["kl_bisection_sides", "kl_refine_sides", "kl_sweep_pairs"]


def kl_sweep_pairs(
    weights2: np.ndarray, side: np.ndarray
) -> list[tuple[float, int, tuple[int, int]]]:
    """One modified-KL sweep: alternate-side pops with running total cost.

    Parameters
    ----------
    weights2:
        ``2·W`` — the doubled dense symmetric weight matrix (zero
        diagonal), so the inner update is a single multiply-add.
    side:
        Boolean side assignment (not modified).

    Returns
    -------
    list of ``(total_cost, i, (u, v))`` in pop order — the same tuples
    networkx's ``_kernighan_lin_sweep`` yields, with ``u``/``v`` as
    positions into ``side``.
    """
    n = side.shape[0]
    sign = np.where(side, 1.0, -1.0)
    # Initial "heap" values: cost_u summed sequentially over neighbours in
    # position order (cumsum is a running left-to-right sum), negated on
    # side 0 exactly as the side-0 heap stores it.
    cost = np.cumsum(0.5 * weights2 * sign, axis=1)[:, -1]
    val = np.where(side, cost, -cost)
    active0 = ~side
    active1 = side.copy()
    inf = np.inf
    results: list[tuple[float, int, tuple[int, int]]] = []
    tot = 0.0
    i = 0
    while active0.any() and active1.any():
        u = int(np.where(active0, val, inf).argmin())
        cost_u = float(val[u])
        active0[u] = False
        # side0 pop: same-side neighbours are charged, opposite relieved.
        val += weights2[u] * sign
        v = int(np.where(active1, val, inf).argmin())
        cost_v = float(val[v])
        active1[v] = False
        val += weights2[v] * -sign
        tot = tot + (cost_u + cost_v)
        i += 1
        results.append((tot, i, (u, v)))
    return results


def kl_refine_sides(
    weights: np.ndarray, side: np.ndarray, max_iter: int = 10
) -> np.ndarray:
    """Run KL improvement sweeps from an initial side assignment.

    ``side`` is modified in place and returned: ``True`` marks the
    positions of networkx's second returned set (``side == 1``),
    ``False`` the first.
    """
    weights2 = 2.0 * weights
    for _ in range(max_iter):
        costs = kl_sweep_pairs(weights2, side)
        min_cost, min_i, _ = min(costs)
        if min_cost >= 0:
            break
        for _, _, (u, v) in costs[:min_i]:
            side[u] = True
            side[v] = False
    return side


def kl_bisection_sides(
    weights: np.ndarray, seed: int, max_iter: int = 10
) -> np.ndarray:
    """Seeded KL bisection over a dense weight matrix, in position space.

    The initial balanced split shuffles positions with
    ``random.Random(seed)``; note that a networkx *subgraph* presents its
    nodes in set-iteration order rather than position order, which
    :func:`repro.core.graph_partition.partition_placement_nodes`
    replicates before calling :func:`kl_refine_sides` directly.
    """
    n = weights.shape[0]
    order = list(range(n))
    random.Random(seed).shuffle(order)
    side = np.zeros(n, dtype=bool)
    side[order[: n // 2]] = True
    return kl_refine_sides(weights, side, max_iter)
