"""LP-rounding placement: solve the relaxation, round deterministically.

An additional (non-paper) strong baseline that closes the loop on the ILP
machinery of :mod:`repro.core.ilp`:

1. solve the LP relaxation of the paper's program (Eqs. (1)–(7)),
2. commit replica placements in decreasing fractional ``x_{nl}`` until
   each dataset's ``K`` budget is spent (origins are pinned at 1),
3. greedily commit assignments in decreasing fractional ``π_{mnl}``
   against the rounded replica set, re-checking capacity and deadline,
4. admit per the selected semantics (all-or-nothing by default).

On small instances the LP is near-integral and this lands close to the
exact optimum; its cost is the LP solve, which grows quickly with
``|Q|·|S|·|V|`` — the scaling bench shows why the paper wants a
combinatorial primal-dual instead.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.state import ClusterState
from repro.core.base import PlacementAlgorithm, SolutionBuilder
from repro.core.ilp import build_lp_model, solve_lp_from_model
from repro.core.instance import ProblemInstance
from repro.core.types import Assignment, PlacementSolution
from repro.obs import get_registry

__all__ = ["LpRoundingG"]


class LpRoundingG(PlacementAlgorithm):
    """Deterministic LP-rounding for the general case.

    Parameters
    ----------
    partial_admission:
        ``False`` (default): a query is admitted only if every demanded
        dataset was served (all-or-nothing, comparable to
        :class:`~repro.core.primal_dual.ApproG`).  ``True``: keep each
        servable pair.
    """

    name = "lp-rounding-g"

    def __init__(self, *, partial_admission: bool = False) -> None:
        self.partial_admission = partial_admission

    def solve(self, instance: ProblemInstance) -> PlacementSolution:
        obs = get_registry()
        with obs.span(f"algo.{self.name}.solve", queries=instance.num_queries):
            return self._solve(instance, obs)

    def _solve(self, instance: ProblemInstance, obs) -> PlacementSolution:
        with obs.time(f"algo.{self.name}.lp_solve_s"):
            # One model, shared by the solve and the rounding lookups
            # (this used to build the model twice).
            model = build_lp_model(instance)
            lp = solve_lp_from_model(model)
        state = ClusterState(instance)
        builder = SolutionBuilder(instance, self.name)
        builder.extra("lp_objective", lp.objective)

        # Step 2: round x by decreasing fractional mass, respecting K.
        order = np.argsort(-lp.x, kind="stable")
        for xi in order:
            if lp.x[xi] <= 1e-9:
                break
            d_id, node = model.placements[int(xi)]
            if state.replicas.has(d_id, node):
                continue
            if state.replicas.can_place(d_id, node):
                state.replicas.place(d_id, node)
                obs.inc(f"algo.{self.name}.replicas_placed")

        # Step 3: round π by decreasing fractional mass against the rounded
        # replicas; tentative per-query assignment pools.
        by_query: dict[int, dict[int, int]] = {}
        pi_order = np.argsort(-lp.pi, kind="stable")
        for ti in pi_order:
            if lp.pi[ti] <= 1e-9:
                break
            q_id, d_id, node = model.triples[int(ti)]
            pool = by_query.setdefault(q_id, {})
            if d_id in pool:
                continue  # pair already has a preferred node
            if state.replicas.has(d_id, node):
                pool[d_id] = node

        # Step 4: commit per query in LP-value order (stable: by id).
        node_index = instance.node_index
        nodes_arr = instance.placement_nodes_array
        for query in instance.queries:
            pool = by_query.get(query.query_id, {})
            assignments: list[Assignment] = []
            failed = False
            with obs.time(f"algo.{self.name}.admission_s"):
                with state.transaction() as txn:
                    for d_id in query.demanded:
                        dataset = instance.dataset(d_id)
                        node = pool.get(d_id)
                        if node is None or not state.can_serve(
                            query, dataset, node
                        ):
                            # Fall back to the lowest-id feasible replica
                            # holder: one can_serve_mask pass instead of a
                            # scalar can_serve call per holder.
                            feasible = state.can_serve_mask(query, dataset)
                            holder_idx = [
                                node_index[v]
                                for v in state.replicas.nodes(d_id)
                                if feasible[node_index[v]]
                            ]
                            node = (
                                int(nodes_arr[holder_idx].min())
                                if holder_idx
                                else None
                            )
                        if node is None:
                            if self.partial_admission:
                                continue
                            failed = True
                            break
                        assignments.append(state.serve(query, dataset, node))
                    if not failed and assignments:
                        txn.commit()
                    else:
                        assignments = []
            if assignments:
                obs.inc(f"algo.{self.name}.admitted")
                builder.admit(query.query_id, assignments)
            else:
                obs.inc(f"algo.{self.name}.rejected")
                builder.reject(query.query_id)
        return builder.build(state)
