"""Solution metrics and invariant verification.

The two headline metrics of the paper's evaluation:

* **admitted volume** — Σ over admitted queries of the volume of the
  datasets they demand (the paper's objective, Eq. (1)),
* **system throughput** — admitted queries / total queries (§4.2).

:func:`verify_solution` re-checks every constraint of the ILP against a
finished :class:`~repro.core.types.PlacementSolution`; the experiment
runner calls it on every run, so no algorithm can win by cheating.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instance import ProblemInstance
from repro.core.types import PlacementSolution

__all__ = ["SolutionMetrics", "evaluate_solution", "verify_solution", "InvariantViolation"]

#: Relative tolerance for floating-point capacity/deadline comparisons.
_RTOL = 1e-9


class InvariantViolation(AssertionError):
    """A placement solution violates one of the problem's constraints."""


@dataclass(frozen=True)
class SolutionMetrics:
    """Headline metrics of one solution.

    Attributes
    ----------
    admitted_volume_gb:
        The paper's objective: Σ volumes demanded by admitted queries.
    throughput:
        Admitted / total queries, in [0, 1].
    num_admitted, num_queries:
        Raw counts.
    replicas_placed:
        Replicas beyond the origin copies.
    mean_utilization:
        Mean compute utilisation over placement nodes implied by the
        solution's assignments.
    """

    admitted_volume_gb: float
    throughput: float
    num_admitted: int
    num_queries: int
    replicas_placed: int
    mean_utilization: float


def evaluate_solution(
    instance: ProblemInstance, solution: PlacementSolution
) -> SolutionMetrics:
    """Compute the paper's metrics for one solution.

    The objective is summed over *served* (query, dataset) assignments —
    ``Σ |S_n|·π_ml`` exactly as in Eq. (1) — which coincides with the
    demanded volume of admitted queries under all-or-nothing admission and
    remains correct under partial admission.
    """
    volume = sum(
        instance.dataset(d_id).volume_gb for (_, d_id) in solution.assignments
    )
    throughput = (
        len(solution.admitted) / instance.num_queries if instance.num_queries else 0.0
    )
    extra_replicas = sum(
        max(0, len(nodes) - 1) for nodes in solution.replicas.values()
    )
    load: dict[int, float] = {v: 0.0 for v in instance.placement_nodes}
    for a in solution.assignments.values():
        load[a.node] += a.compute_ghz
    utils = [
        load[v] / instance.topology.capacity(v) for v in instance.placement_nodes
    ]
    return SolutionMetrics(
        admitted_volume_gb=volume,
        throughput=throughput,
        num_admitted=len(solution.admitted),
        num_queries=instance.num_queries,
        replicas_placed=extra_replicas,
        mean_utilization=sum(utils) / len(utils) if utils else 0.0,
    )


def verify_solution(
    instance: ProblemInstance,
    solution: PlacementSolution,
    *,
    all_or_nothing: bool = True,
) -> None:
    """Re-check every ILP constraint; raise :class:`InvariantViolation` on failure.

    Checks performed:

    1. every dataset has ≤ K copies, and its origin copy is present;
    2. every assignment's node holds the dataset's replica;
    3. per-node compute load ≤ capacity (Constraint (2));
    4. every assignment meets its query's deadline (Constraint (4));
    5. admitted queries have all demanded pairs assigned (all-or-nothing
       mode) or at least one (partial mode); rejected queries have none;
    6. admitted ∪ rejected covers exactly the query set.
    """
    placement = set(instance.placement_nodes)

    for dataset_id, nodes in solution.replicas.items():
        dataset = instance.dataset(dataset_id)
        if len(nodes) > instance.max_replicas:
            raise InvariantViolation(
                f"dataset {dataset_id} has {len(nodes)} > K="
                f"{instance.max_replicas} copies"
            )
        if dataset.origin_node not in nodes:
            raise InvariantViolation(
                f"dataset {dataset_id} lost its origin copy at "
                f"{dataset.origin_node}"
            )
        for v in nodes:
            if v not in placement:
                raise InvariantViolation(
                    f"dataset {dataset_id} replicated to non-placement node {v}"
                )

    load: dict[int, float] = {}
    for (q_id, d_id), a in solution.assignments.items():
        if a.query_id != q_id or a.dataset_id != d_id:
            raise InvariantViolation(f"assignment key/value mismatch at ({q_id}, {d_id})")
        query = instance.query(q_id)
        dataset = instance.dataset(d_id)
        if d_id not in query.demanded:
            raise InvariantViolation(
                f"query {q_id} assigned dataset {d_id} it never demanded"
            )
        if a.node not in solution.replicas.get(d_id, ()):
            raise InvariantViolation(
                f"pair ({q_id}, {d_id}) served at node {a.node} without a replica"
            )
        expected = instance.pair_latency(query, dataset, a.node)
        if a.latency_s > query.deadline_s * (1.0 + _RTOL):
            raise InvariantViolation(
                f"pair ({q_id}, {d_id}) latency {a.latency_s:.4f}s exceeds "
                f"deadline {query.deadline_s:.4f}s"
            )
        if abs(expected - a.latency_s) > 1e-6 * max(1.0, expected):
            raise InvariantViolation(
                f"pair ({q_id}, {d_id}) recorded latency {a.latency_s:.6f} != "
                f"analytic {expected:.6f}"
            )
        load[a.node] = load.get(a.node, 0.0) + a.compute_ghz

    for v, used in load.items():
        cap = instance.topology.capacity(v)
        if used > cap * (1.0 + _RTOL):
            raise InvariantViolation(
                f"node {v} load {used:.3f} GHz exceeds capacity {cap:.3f} GHz"
            )

    all_ids = set(range(instance.num_queries))
    if set(solution.admitted) | set(solution.rejected) != all_ids:
        raise InvariantViolation("admitted ∪ rejected does not cover the query set")

    for q_id in solution.admitted:
        query = instance.query(q_id)
        served = {d for (q, d) in solution.assignments if q == q_id}
        if all_or_nothing and served != set(query.demanded):
            raise InvariantViolation(
                f"admitted query {q_id} served {sorted(served)} but demanded "
                f"{sorted(query.demanded)}"
            )
        if not served:
            raise InvariantViolation(f"admitted query {q_id} has no assignments")
    for q_id in solution.rejected:
        served = {d for (q, d) in solution.assignments if q == q_id}
        if served:
            raise InvariantViolation(
                f"rejected query {q_id} still holds assignments {sorted(served)}"
            )
