"""Epoch-to-epoch replica migration under workload drift.

The paper places replicas proactively for a *known* query batch.  Real
edge workloads drift: the next evaluation window brings a different query
mix.  This module plans successive epochs:

* replicas placed in earlier epochs are **carried over** (they already
  hold the data — serving from them costs nothing extra),
* the placement algorithm runs on the carried-over state, placing new
  replicas where the drifted demand needs them,
* carried replicas that served *nothing* this epoch are **garbage
  collected**, freeing their ``K`` slots for the next epoch,
* every *newly placed* replica is charged migration traffic: its volume
  shipped from the nearest existing copy.

Three strategies bound the design space (and the migration bench compares
them): ``carry`` (the above), ``fresh`` (ignore history — maximal
migration traffic), ``frozen`` (never place after epoch 0 — zero traffic,
degrading admission as demand drifts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cluster.state import ClusterState
from repro.core.instance import ProblemInstance
from repro.core.metrics import evaluate_solution, verify_solution
from repro.core.primal_dual import ApproG, PrimalDualConfig
from repro.core.types import PlacementSolution
from repro.util.validation import ValidationError

__all__ = ["EpochReport", "MigrationPlanner"]

_STRATEGIES = ("carry", "fresh", "frozen")


@dataclass(frozen=True)
class EpochReport:
    """Outcome of planning one epoch.

    Attributes
    ----------
    solution:
        The epoch's placement (verified).
    admitted_volume_gb:
        The epoch's objective value.
    kept, added, dropped:
        Non-origin replica counts: carried over and still useful / newly
        placed this epoch / garbage-collected after serving nothing.
    migration_gb:
        Volume shipped to seed the newly placed replicas.
    migration_cost_s:
        Σ over new replicas of ``volume × dt(nearest existing copy →
        new node)`` — the network time the seeding occupies.
    """

    solution: PlacementSolution
    admitted_volume_gb: float
    kept: int
    added: int
    dropped: int
    migration_gb: float
    migration_cost_s: float


class MigrationPlanner:
    """Plans a sequence of epochs over a fixed topology + dataset collection.

    Parameters
    ----------
    strategy:
        ``"carry"`` (default), ``"fresh"`` or ``"frozen"`` (see module
        docs).
    config:
        Primal-dual tunables for the per-epoch Appro-G pass.
    """

    def __init__(
        self,
        strategy: str = "carry",
        config: PrimalDualConfig | None = None,
    ) -> None:
        if strategy not in _STRATEGIES:
            raise ValidationError(
                f"strategy must be one of {_STRATEGIES}, got {strategy!r}"
            )
        self.strategy = strategy
        self.config = config or PrimalDualConfig()
        self._carried: dict[int, tuple[int, ...]] | None = None

    def reset(self) -> None:
        """Forget carried replicas (start a fresh sequence)."""
        self._carried = None

    @property
    def carried(self) -> Mapping[int, tuple[int, ...]] | None:
        """Replicas carried into the next epoch (``None`` before any)."""
        return self._carried

    def seed_carry(self, replicas: Mapping[int, tuple[int, ...]]) -> None:
        """Adopt an externally produced replica map as the carried state.

        Used by the controller to chain an initial batch placement into
        the epoch sequence.  Origin copies need not be excluded; they are
        re-seeded by every epoch's cluster state anyway.
        """
        self._carried = {d: tuple(nodes) for d, nodes in replicas.items()}

    def _seed_state(self, instance: ProblemInstance) -> ClusterState:
        """Cluster state with the strategy's carried replicas pre-placed."""
        state = ClusterState(instance)
        if self.strategy == "fresh" or self._carried is None:
            return state
        for d_id, nodes in self._carried.items():
            if d_id not in instance.datasets:
                continue
            for v in nodes:
                if v in state.nodes and state.replicas.can_place(d_id, v):
                    state.replicas.place(d_id, v)
        return state

    def plan_epoch(self, instance: ProblemInstance) -> EpochReport:
        """Place this epoch's workload and account the migration."""
        state = self._seed_state(instance)
        carried = {
            d_id: set(state.replicas.nodes(d_id)) for d_id in instance.datasets
        }

        if self.strategy == "frozen" and self._carried is not None:
            # After epoch 0 the replica set is fixed: admit only against
            # copies that already exist.
            solution = _solve_frozen(instance, state, self.config)
        else:
            solution = ApproG(self.config).solve_on_state(instance, state)
        verify_solution(instance, solution)

        used_nodes: dict[int, set[int]] = {d: set() for d in instance.datasets}
        for (q_id, d_id), a in solution.assignments.items():
            used_nodes[d_id].add(a.node)

        kept = added = dropped = 0
        migration_gb = 0.0
        migration_cost_s = 0.0
        next_carry: dict[int, tuple[int, ...]] = {}
        # Only the adaptive strategy garbage-collects: "frozen" keeps its
        # epoch-0 replica set verbatim.
        gc_stale = self.strategy == "carry"
        for d_id, nodes in solution.replicas.items():
            dataset = instance.dataset(d_id)
            origin = dataset.origin_node
            survivors = []
            for v in nodes:
                if v == origin:
                    continue
                was_carried = v in carried[d_id]
                if was_carried:
                    if v in used_nodes[d_id] or not gc_stale:
                        kept += 1
                        survivors.append(v)
                    else:
                        dropped += 1  # garbage-collect the stale copy
                else:
                    added += 1
                    survivors.append(v)
                    sources = carried[d_id] or {origin}
                    nearest = min(
                        instance.paths.delay(src, v) for src in sources
                    )
                    migration_gb += dataset.volume_gb
                    migration_cost_s += dataset.volume_gb * nearest
            next_carry[d_id] = tuple(sorted(survivors))
        if self.strategy != "fresh":
            self._carried = next_carry

        return EpochReport(
            solution=solution,
            admitted_volume_gb=evaluate_solution(
                instance, solution
            ).admitted_volume_gb,
            kept=kept,
            added=added,
            dropped=dropped,
            migration_gb=migration_gb,
            migration_cost_s=migration_cost_s,
        )

    def run(self, epochs: Sequence[ProblemInstance]) -> list[EpochReport]:
        """Plan a sequence of epochs, carrying state per the strategy."""
        self.reset()
        return [self.plan_epoch(instance) for instance in epochs]


def _solve_frozen(
    instance: ProblemInstance,
    state: ClusterState,
    config: PrimalDualConfig,
) -> PlacementSolution:
    """Admission against a fixed replica set (no new placements).

    Reuses the Appro-G kernel but filters its candidate choice to nodes
    already holding each dataset.
    """
    from repro.core.base import SolutionBuilder
    from repro.core.primal_dual import _Kernel, _query_order
    from repro.core.types import Assignment

    kernel = _Kernel(config, instance)
    builder = SolutionBuilder(instance, "appro-g-frozen")
    for query in _query_order(instance, config.order):
        assignments: list[Assignment] = []
        failed = False
        with state.transaction() as txn:
            for d_id in query.demanded:
                dataset = instance.dataset(d_id)
                holders = [
                    v
                    for v in state.replicas.nodes(d_id)
                    if state.can_serve(query, dataset, v)
                ]
                if not holders:
                    failed = True
                    break
                best = min(
                    holders,
                    key=lambda v: (
                        kernel.prices.theta(state, v),
                        state.pair_latency(query, dataset, v),
                        v,
                    ),
                )
                assignments.append(state.serve(query, dataset, best))
            if not failed:
                txn.commit()
        if failed or not assignments:
            builder.reject(query.query_id)
        else:
            builder.admit(query.query_id, assignments)
    return builder.build(state)
