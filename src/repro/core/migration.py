"""Epoch-to-epoch replica migration under workload drift.

The paper places replicas proactively for a *known* query batch.  Real
edge workloads drift: the next evaluation window brings a different query
mix.  This module plans successive epochs:

* replicas placed in earlier epochs are **carried over** (they already
  hold the data — serving from them costs nothing extra),
* the placement algorithm runs on the carried-over state, placing new
  replicas where the drifted demand needs them,
* carried replicas that served *nothing* this epoch are **garbage
  collected**, freeing their ``K`` slots for the next epoch,
* every *newly placed* replica is charged migration traffic: its volume
  shipped from the nearest existing copy.

Three strategies bound the design space (and the migration bench compares
them): ``carry`` (the above), ``fresh`` (ignore history — maximal
migration traffic), ``frozen`` (never place after epoch 0 — zero traffic,
degrading admission as demand drifts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cluster.state import ClusterState
from repro.core.instance import ProblemInstance
from repro.core.metrics import evaluate_solution, verify_solution
from repro.core.primal_dual import ApproG, PrimalDualConfig
from repro.core.types import PlacementSolution
from repro.util.validation import ValidationError

__all__ = [
    "EpochReport",
    "MigrationPlan",
    "MigrationPlanner",
    "MigrationStep",
    "diff_replica_maps",
    "solve_frozen",
]

_STRATEGIES = ("carry", "fresh", "frozen")


@dataclass(frozen=True)
class EpochReport:
    """Outcome of planning one epoch.

    Attributes
    ----------
    solution:
        The epoch's placement (verified).
    admitted_volume_gb:
        The epoch's objective value.
    kept, added, dropped:
        Non-origin replica counts: carried over and still useful / newly
        placed this epoch / garbage-collected after serving nothing.
    migration_gb:
        Volume shipped to seed the newly placed replicas.
    migration_cost_s:
        Σ over new replicas of ``volume × dt(nearest existing copy →
        new node)`` — the network time the seeding occupies.
    dropped_replicas:
        The garbage-collected ``(dataset_id, node)`` copies behind the
        ``dropped`` count — each was carried into the epoch and served
        nothing (pinned by the cross-strategy consistency suite).
    """

    solution: PlacementSolution
    admitted_volume_gb: float
    kept: int
    added: int
    dropped: int
    migration_gb: float
    migration_cost_s: float
    dropped_replicas: tuple[tuple[int, int], ...] = ()


@dataclass(frozen=True)
class MigrationStep:
    """One bounded-churn migration: place a copy, retire a copy, or both.

    A step with both ``add_node`` and ``drop_node`` is a *move*: the two
    mutations belong to one transaction, so a failed placement never
    strands the dataset one copy short.  Only placements ship data —
    ``volume_gb``/``ship_cost_s`` are zero for a pure drop.

    Attributes
    ----------
    dataset_id:
        The dataset whose replica set changes.
    add_node:
        Node receiving a new copy (``None`` for a pure drop).
    drop_node:
        Node losing its copy (``None`` for a pure add).
    volume_gb:
        Data shipped to seed the new copy (the dataset's volume).
    ship_from:
        Nearest node already holding a copy at planning time — the
        seeding source (``None`` for a pure drop).
    ship_cost_s:
        ``volume_gb × dt(ship_from → add_node)``, as charged by
        :class:`MigrationPlanner`.
    """

    dataset_id: int
    add_node: int | None
    drop_node: int | None
    volume_gb: float = 0.0
    ship_from: int | None = None
    ship_cost_s: float = 0.0

    @property
    def is_move(self) -> bool:
        """Whether the step swaps one copy for another atomically."""
        return self.add_node is not None and self.drop_node is not None


@dataclass(frozen=True)
class MigrationPlan:
    """A bounded-churn diff between two replica maps.

    Attributes
    ----------
    steps:
        Steps in execution order (cheapest shipping first; pure drops
        last — they free slots but reclaim no objective on their own).
    migration_gb, migration_cost_s:
        Total shipped volume / network time over the planned placements.
    deferred_steps, deferred_gb:
        Placements the churn caps pushed to a later cycle (and their
        volume) — the plan's own record of what it *didn't* do.
    """

    steps: tuple[MigrationStep, ...] = ()
    migration_gb: float = 0.0
    migration_cost_s: float = 0.0
    deferred_steps: int = 0
    deferred_gb: float = 0.0

    @property
    def adds(self) -> int:
        """Planned replica placements (moves included)."""
        return sum(1 for s in self.steps if s.add_node is not None)

    @property
    def drops(self) -> int:
        """Planned replica retirements (moves included)."""
        return sum(1 for s in self.steps if s.drop_node is not None)

    def __bool__(self) -> bool:
        return bool(self.steps)


def diff_replica_maps(
    instance: ProblemInstance,
    current: Mapping[int, Sequence[int]],
    target: Mapping[int, Sequence[int]],
    *,
    max_migration_gb: float = math.inf,
    max_moves_per_dataset: int | None = None,
) -> MigrationPlan:
    """Diff two replica maps into a bounded-churn :class:`MigrationPlan`.

    Pure and deterministic: the same arguments always yield the identical
    plan.  Placements are charged shipping from the nearest *current*
    copy (origin included), exactly as :class:`MigrationPlanner` charges
    epoch migration.  Origin copies never move; nodes present in both
    maps are untouched.

    Per dataset, surplus drops are paired with planned adds into atomic
    *move* steps while the dataset sits at its ``K`` bound (a bare add
    would be refused), and steps are ordered cheapest-shipping-first so a
    tight ``max_migration_gb`` budget buys the most placements.  The caps:

    * ``max_migration_gb`` — total shipped volume per plan; placements
      beyond it (and their paired drops) are deferred, never truncated
      mid-move.
    * ``max_moves_per_dataset`` — replica *mutations* (adds + drops) per
      dataset per plan.
    """
    if max_migration_gb < 0.0:
        raise ValidationError(
            f"max_migration_gb must be >= 0, got {max_migration_gb}"
        )
    if max_moves_per_dataset is not None and max_moves_per_dataset < 1:
        raise ValidationError(
            f"max_moves_per_dataset must be >= 1 or None, got {max_moves_per_dataset}"
        )
    placement = set(instance.placement_nodes)
    add_steps: list[MigrationStep] = []
    drop_steps: list[MigrationStep] = []
    deferred = 0
    deferred_gb = 0.0
    for d_id in sorted(instance.datasets):
        dataset = instance.dataset(d_id)
        origin = dataset.origin_node
        have = set(current.get(d_id, ())) | {origin}
        want = (set(target.get(d_id, ())) | {origin}) & placement
        adds = sorted(want - have)
        drops = sorted(v for v in have - want if v != origin)
        # Pair adds with drops into atomic moves: while the dataset sits
        # at its K bound a bare place() is refused, and a move never dips
        # the copy count, so pairing keeps every step individually legal.
        paired = min(len(adds), len(drops))
        moves = list(zip(adds[:paired], drops[:paired]))
        slack = instance.max_replicas - len(have)
        pure_adds = adds[paired: paired + max(0, slack)]
        over_k = adds[paired + max(0, slack):]  # K binding, no surplus to swap
        pure_drops = drops[paired:]
        if max_moves_per_dataset is not None:
            # Adds reclaim objective value, drops only free slots: spend
            # the per-dataset mutation budget on moves (2 each) and adds
            # first, then on the leftover drops.
            budget = max_moves_per_dataset
            kept_moves = moves[: budget // 2]
            budget -= 2 * len(kept_moves)
            over_k += [a for a, _ in moves[len(kept_moves):]]
            moves = kept_moves
            over_k += pure_adds[budget:]
            pure_adds = pure_adds[:budget]
            budget -= len(pure_adds)
            pure_drops = pure_drops[:budget]
        deferred += len(over_k)
        deferred_gb += dataset.volume_gb * len(over_k)
        sources = sorted(have)
        for v, src_drop in moves + [(v, None) for v in pure_adds]:
            nearest = min(sources, key=lambda s: (instance.paths.delay(s, v), s))
            cost = dataset.volume_gb * instance.paths.delay(nearest, v)
            add_steps.append(
                MigrationStep(d_id, v, src_drop, dataset.volume_gb, nearest, cost)
            )
        drop_steps += [MigrationStep(d_id, None, v) for v in pure_drops]

    add_steps.sort(key=lambda s: (s.ship_cost_s, s.dataset_id, s.add_node))
    steps: list[MigrationStep] = []
    migration_gb = migration_cost_s = 0.0
    for step in add_steps:
        if migration_gb + step.volume_gb <= max_migration_gb * (1.0 + 1e-9):
            steps.append(step)
            migration_gb += step.volume_gb
            migration_cost_s += step.ship_cost_s
        else:
            deferred += 1
            deferred_gb += step.volume_gb
    steps += drop_steps
    return MigrationPlan(
        steps=tuple(steps),
        migration_gb=migration_gb,
        migration_cost_s=migration_cost_s,
        deferred_steps=deferred,
        deferred_gb=deferred_gb,
    )


class MigrationPlanner:
    """Plans a sequence of epochs over a fixed topology + dataset collection.

    Parameters
    ----------
    strategy:
        ``"carry"`` (default), ``"fresh"`` or ``"frozen"`` (see module
        docs).
    config:
        Primal-dual tunables for the per-epoch Appro-G pass.
    """

    def __init__(
        self,
        strategy: str = "carry",
        config: PrimalDualConfig | None = None,
    ) -> None:
        if strategy not in _STRATEGIES:
            raise ValidationError(
                f"strategy must be one of {_STRATEGIES}, got {strategy!r}"
            )
        self.strategy = strategy
        self.config = config or PrimalDualConfig()
        self._carried: dict[int, tuple[int, ...]] | None = None

    def reset(self) -> None:
        """Forget carried replicas (start a fresh sequence)."""
        self._carried = None

    @property
    def carried(self) -> Mapping[int, tuple[int, ...]] | None:
        """Replicas carried into the next epoch (``None`` before any)."""
        return self._carried

    def seed_carry(self, replicas: Mapping[int, tuple[int, ...]]) -> None:
        """Adopt an externally produced replica map as the carried state.

        Used by the controller to chain an initial batch placement into
        the epoch sequence.  Origin copies need not be excluded; they are
        re-seeded by every epoch's cluster state anyway.
        """
        self._carried = {d: tuple(nodes) for d, nodes in replicas.items()}

    def _seed_state(self, instance: ProblemInstance) -> ClusterState:
        """Cluster state with the strategy's carried replicas pre-placed."""
        state = ClusterState(instance)
        if self.strategy == "fresh" or self._carried is None:
            return state
        for d_id, nodes in self._carried.items():
            if d_id not in instance.datasets:
                continue
            for v in nodes:
                if v in state.nodes and state.replicas.can_place(d_id, v):
                    state.replicas.place(d_id, v)
        return state

    def plan_epoch(self, instance: ProblemInstance) -> EpochReport:
        """Place this epoch's workload and account the migration."""
        state = self._seed_state(instance)
        carried = {
            d_id: set(state.replicas.nodes(d_id)) for d_id in instance.datasets
        }

        if self.strategy == "frozen" and self._carried is not None:
            # After epoch 0 the replica set is fixed: admit only against
            # copies that already exist.
            solution = solve_frozen(instance, state, self.config)
        else:
            solution = ApproG(self.config).solve_on_state(instance, state)
        verify_solution(instance, solution)

        used_nodes: dict[int, set[int]] = {d: set() for d in instance.datasets}
        for (q_id, d_id), a in solution.assignments.items():
            used_nodes[d_id].add(a.node)

        kept = added = dropped = 0
        migration_gb = 0.0
        migration_cost_s = 0.0
        dropped_replicas: list[tuple[int, int]] = []
        next_carry: dict[int, tuple[int, ...]] = {}
        # Only the adaptive strategy garbage-collects: "frozen" keeps its
        # epoch-0 replica set verbatim.
        gc_stale = self.strategy == "carry"
        for d_id, nodes in solution.replicas.items():
            dataset = instance.dataset(d_id)
            origin = dataset.origin_node
            survivors = []
            for v in nodes:
                if v == origin:
                    continue
                was_carried = v in carried[d_id]
                if was_carried:
                    if v in used_nodes[d_id] or not gc_stale:
                        kept += 1
                        survivors.append(v)
                    else:
                        dropped += 1  # garbage-collect the stale copy
                        dropped_replicas.append((d_id, v))
                else:
                    added += 1
                    survivors.append(v)
                    sources = carried[d_id] or {origin}
                    nearest = min(
                        instance.paths.delay(src, v) for src in sources
                    )
                    migration_gb += dataset.volume_gb
                    migration_cost_s += dataset.volume_gb * nearest
            next_carry[d_id] = tuple(sorted(survivors))
        if self.strategy != "fresh":
            self._carried = next_carry

        return EpochReport(
            solution=solution,
            admitted_volume_gb=evaluate_solution(
                instance, solution
            ).admitted_volume_gb,
            kept=kept,
            added=added,
            dropped=dropped,
            migration_gb=migration_gb,
            migration_cost_s=migration_cost_s,
            dropped_replicas=tuple(dropped_replicas),
        )

    def run(self, epochs: Sequence[ProblemInstance]) -> list[EpochReport]:
        """Plan a sequence of epochs, carrying state per the strategy."""
        self.reset()
        return [self.plan_epoch(instance) for instance in epochs]


def solve_frozen(
    instance: ProblemInstance,
    state: ClusterState,
    config: PrimalDualConfig | None = None,
) -> PlacementSolution:
    """Admission against a fixed replica set (no new placements).

    Reuses the Appro-G kernel but filters its candidate choice to nodes
    already holding each dataset.  Shared by the ``frozen`` strategy and
    the serving re-optimizer, which uses it to score how well the *live*
    replica map serves a demand window before paying any migration.
    """
    config = config or PrimalDualConfig()
    from repro.core.base import SolutionBuilder
    from repro.core.primal_dual import _Kernel, _query_order
    from repro.core.types import Assignment

    kernel = _Kernel(config, instance)
    builder = SolutionBuilder(instance, "appro-g-frozen")
    for query in _query_order(instance, config.order):
        assignments: list[Assignment] = []
        failed = False
        with state.transaction() as txn:
            for d_id in query.demanded:
                dataset = instance.dataset(d_id)
                holders = [
                    v
                    for v in state.replicas.nodes(d_id)
                    if state.can_serve(query, dataset, v)
                ]
                if not holders:
                    failed = True
                    break
                best = min(
                    holders,
                    key=lambda v: (
                        kernel.prices.theta(state, v),
                        state.pair_latency(query, dataset, v),
                        v,
                    ),
                )
                assignments.append(state.serve(query, dataset, best))
            if not failed:
                txn.commit()
        if failed or not assignments:
            builder.reject(query.query_id)
        else:
            builder.admit(query.query_id, assignments)
    return builder.build(state)
