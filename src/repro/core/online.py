"""Online variant: queries arrive over time and release compute on completion.

The paper solves a *static* batch (§2.4 explicitly defers dynamics).  This
extension runs the same placement machinery in an online session:

* queries arrive at Poisson instants;
* an admitted query holds its compute only while it runs (its analytic
  latency scaled by ``hold_factor``), then releases it;
* replicas placed along the way **persist** — they are proactive state
  that keeps serving later arrivals.

Because capacity churns, the primal-dual price term matters more than in
the batch setting: a node that is busy *now* prices itself out, and later
arrivals re-use the freed capacity.  ``OnlineSession`` accepts any
per-pair placement rule; adapters for Appro's kernel and the greedy walk
are provided.

With ``OnlineConfig.faults`` set, the session additionally injects seeded
node crash/recover events (:mod:`repro.sim.faults`) into the same
simulator.  A crash kills the node's replicas and in-flight allocations;
each running query hit by it attempts an all-or-nothing failover of its
lost pairs onto surviving replicas — the same
:func:`repro.core.repair.best_failover_candidate` rule as the static
repair pass — with bounded exponential-backoff retries.  The resulting
:class:`~repro.sim.faults.FaultReport` (availability curve, MTTR,
interrupted vs recovered queries, degraded-admission throughput) rides on
the :class:`OnlineReport`.  With faults disabled the session runs the
exact pre-fault code path, bit for bit.

With ``OnlineConfig.link_faults`` set, the *network* churns too
(:mod:`repro.network.dynamics`): seeded link degrade/sever/restore events
(including correlated partitions) recompute the instance's path cache
under an epoch stamp, so every later admission prices the inflated or
partitioned paths.  Running queries whose serving path is cut — home
unreachable, or the inflated latency bursts the deadline — are re-placed
onto reachable replicas all-or-nothing, and the severed-path invariant
(:meth:`~repro.cluster.state.ClusterState.check_invariants` check 5) is
re-asserted after every event.  The resulting
:class:`~repro.network.dynamics.NetworkReport` rides on the
:class:`OnlineReport`; with link faults disabled the path-cache
generation never moves and the session is bit-identical to before.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Protocol

from repro.cluster.state import ClusterState
from repro.core.greedy import (
    _greedy_place_pair,
    _ship_greedy_place_pair,
    make_sync_greedy_place_pair,
)
from repro.core.instance import ProblemInstance
from repro.core.primal_dual import PrimalDualConfig, _Kernel
from repro.core.repair import best_failover_candidate
from repro.core.types import Assignment, Query
from repro.network.dynamics import (
    LinkEvent,
    LinkFaultConfig,
    LinkState,
    NetworkDynamics,
    NetworkReport,
    build_link_schedule,
)
from repro.obs import get_registry
from repro.sim.engine import Simulator
from repro.sim.faults import (
    FaultConfig,
    FaultInjector,
    FaultReport,
    build_fault_schedule,
)
from repro.util.rng import spawn_rng
from repro.util.validation import check_positive

__all__ = [
    "OnlineConfig",
    "OnlineOutcome",
    "OnlineReport",
    "OnlineSession",
    "appro_rule",
    "greedy_rule",
    "ship_greedy_rule",
    "sync_greedy_rule",
]


class PlacementRule(Protocol):
    """Per-pair placement rule used by the online session."""

    def __call__(
        self, state: ClusterState, query: Query, dataset_id: int
    ) -> Assignment | None:
        """Serve the pair now, or return ``None`` to refuse."""
        ...


def appro_rule(
    instance: ProblemInstance, config: PrimalDualConfig | None = None
) -> PlacementRule:
    """The primal-dual kernel as an online rule."""
    kernel = _Kernel(config or PrimalDualConfig(), instance)
    return kernel.place_pair


def greedy_rule(instance: ProblemInstance) -> PlacementRule:
    """The §4.1 greedy walk as an online rule."""
    del instance  # greedy needs no precomputation
    return _greedy_place_pair


def ship_greedy_rule(instance: ProblemInstance) -> PlacementRule:
    """The greedy walk with admission-time replication paying its
    shipping latency against the deadline (see
    :func:`repro.core.greedy._ship_greedy_place_pair`)."""
    del instance  # needs no precomputation
    return _ship_greedy_place_pair


def sync_greedy_rule(instance: ProblemInstance) -> PlacementRule:
    """The greedy walk with the §2.4 consistency tax on new replicas.

    Placing a *new* copy of a write-hot dataset charges the
    update-threshold sync cost (:class:`repro.cluster.consistency.ConsistencyModel`)
    against the pair's deadline — see
    :func:`repro.core.greedy.make_sync_greedy_place_pair`."""
    del instance  # the rule reads the model lazily per dataset
    return make_sync_greedy_place_pair()


@dataclass(frozen=True)
class OnlineConfig:
    """Online-session parameters.

    Attributes
    ----------
    mean_interarrival_s:
        Mean Poisson gap between query arrivals.
    hold_factor:
        Compute hold time = ``hold_factor`` × the query's analytic
        response latency (analytics jobs occupy their allocation for the
        duration of evaluation; >1 models result post-processing).
    seed:
        Arrival-draw seed.
    faults:
        Optional fault-injection parameters; ``None`` (the default) runs
        the fault-free session unchanged.
    link_faults:
        Optional link-dynamics parameters
        (:class:`~repro.network.dynamics.LinkFaultConfig`); ``None`` (the
        default) keeps the network static and the session bit-identical
        to pre-dynamics runs.
    """

    mean_interarrival_s: float = 0.2
    hold_factor: float = 1.0
    seed: int = 0
    faults: FaultConfig | None = None
    link_faults: LinkFaultConfig | None = None

    def __post_init__(self) -> None:
        check_positive("mean_interarrival_s", self.mean_interarrival_s)
        check_positive("hold_factor", self.hold_factor)


@dataclass(frozen=True)
class OnlineOutcome:
    """Decision record for one arrival."""

    query_id: int
    arrival_s: float
    admitted: bool
    volume_gb: float


@dataclass(frozen=True)
class OnlineReport:
    """Aggregate result of one online session.

    Attributes
    ----------
    outcomes:
        Per-arrival decisions, in arrival order.
    admitted_volume_gb:
        Σ volume of admitted queries' demanded datasets.
    throughput:
        Admitted / total arrivals.
    peak_allocated_ghz:
        Maximum total compute held at any instant.
    replicas_placed:
        Replicas beyond origins at session end.
    faults:
        Fault-injection outcome (availability curve, MTTR, interrupted vs
        recovered queries, …); ``None`` when faults were disabled.
    netfaults:
        Link-dynamics outcome (link availability curve, partitions,
        rerouted/interrupted/recovered queries, …); ``None`` when link
        faults were disabled.
    """

    outcomes: tuple[OnlineOutcome, ...]
    admitted_volume_gb: float
    throughput: float
    peak_allocated_ghz: float
    replicas_placed: int
    faults: FaultReport | None = None
    netfaults: NetworkReport | None = None


class _ActiveQuery:
    """Bookkeeping for one admitted query while its hold runs.

    Only maintained when fault injection is on: maps each demanded dataset
    to its live assignment so a crash can identify, evict, and fail over
    exactly the lost pairs.
    """

    __slots__ = ("query", "assignments", "pending", "hit", "lost_at")

    def __init__(self, query: Query, assignments: dict[int, Assignment]) -> None:
        self.query = query
        self.assignments = assignments  # dataset id → live assignment
        self.pending: set[int] = set()  # dataset ids awaiting failover
        self.hit = False  # ever lost a pair to a crash
        self.lost_at = 0.0  # instant of the most recent loss


class OnlineSession:
    """Run a problem instance's queries as an online arrival stream."""

    def __init__(self, config: OnlineConfig | None = None) -> None:
        self.config = config or OnlineConfig()

    def run(
        self,
        instance: ProblemInstance,
        rule_factory: Callable[[ProblemInstance], PlacementRule],
    ) -> OnlineReport:
        """Play all queries through ``rule_factory(instance)``.

        Queries arrive in id order at Poisson instants; each arrival is an
        all-or-nothing admission attempt against the *current* cluster
        state; admitted queries release their compute after their hold
        time.

        When :attr:`OnlineConfig.faults` is set, seeded crash/recover
        events are injected into the same simulator (arrivals win FIFO
        ties at equal instants).  Queries hit by a crash fail their lost
        pairs over to surviving replicas, all-or-nothing per query, with
        bounded exponential-backoff retries; a query whose service is
        never fully restored before its hold ends counts as interrupted.
        Failover does not extend the hold — the original completion
        instant stands.
        """
        rule = rule_factory(instance)
        state = ClusterState(instance)
        sim = Simulator()
        rng = spawn_rng(self.config.seed, "online/arrivals")
        obs = get_registry()
        fault_cfg = self.config.faults
        link_cfg = self.config.link_faults

        outcomes: list[OnlineOutcome] = []
        peak = [0.0]
        injector: FaultInjector | None = None
        dynamics: NetworkDynamics | None = None
        active: dict[int, _ActiveQuery] = {}

        def finish(q_id: int) -> None:
            # Hold expired: release whatever the query still has allocated.
            record = active.pop(q_id, None)
            if record is None:
                return  # interrupted earlier; nothing left to release
            for a in record.assignments.values():
                state.release(a)
            if record.pending:
                # The hold ended while lost pairs were still awaiting
                # failover: service was never fully restored.
                injector.note_interrupted()
            elif record.hit:
                injector.note_recovered()

        def interrupt(q_id: int) -> None:
            record = active.pop(q_id)
            for a in record.assignments.values():
                state.release(a)
            injector.note_interrupted()

        def attempt_failover(q_id: int, attempt: int) -> None:
            record = active.get(q_id)
            if record is None or not record.pending:
                return  # finished, interrupted, or already failed over
            query = record.query
            repaired: list[Assignment] = []
            ok = True
            with obs.time("online.failover_s"):
                with state.transaction() as txn:
                    for d_id in sorted(record.pending):
                        best = best_failover_candidate(
                            state, query, instance.dataset(d_id)
                        )
                        if best is None:
                            ok = False
                            break
                        repaired.append(
                            state.serve(query, instance.dataset(d_id), best.node)
                        )
                    if ok:
                        txn.commit()
            injector.note_failover(ok, sim.now - record.lost_at)
            if ok:
                for a in repaired:
                    record.assignments[a.dataset_id] = a
                record.pending.clear()
            elif attempt >= fault_cfg.failover_retries:
                interrupt(q_id)
            else:
                # Bounded exponential backoff; a node recovery in the
                # meantime can make the retry succeed.
                sim.schedule_in(
                    fault_cfg.failover_backoff_s * (2.0**attempt),
                    lambda: attempt_failover(q_id, attempt + 1),
                )

        def on_links_changed(event: LinkEvent) -> None:
            # Paths were just recomputed on the new effective delays.
            # Restores only improve latencies, so only degrades/severs can
            # cut a running query: its home became unreachable from the
            # serving node, or the inflated path burst the deadline.
            if event.kind == "restore" or not active:
                return
            for q_id in sorted(active):
                record = active.get(q_id)
                if record is None:
                    continue
                query = record.query
                cut: list[int] = []
                moved = False
                for d_id, a in record.assignments.items():
                    lat = instance.pair_latency(
                        query, instance.dataset(d_id), a.node
                    )
                    if not math.isfinite(lat) or lat > query.deadline_s:
                        cut.append(d_id)
                    elif lat != a.latency_s:
                        moved = True
                if not cut:
                    if moved:
                        dynamics.note_rerouted()
                    continue
                # Re-place the cut pairs onto reachable replicas,
                # all-or-nothing: QoS is per query, not per pair.
                repaired: list[Assignment] = []
                ok = True
                with obs.time("online.netfault_failover_s"):
                    with state.transaction() as txn:
                        for d_id in cut:
                            state.release(record.assignments[d_id])
                        for d_id in cut:
                            best = best_failover_candidate(
                                state, query, instance.dataset(d_id)
                            )
                            if best is None:
                                ok = False
                                break
                            repaired.append(
                                state.serve(
                                    query, instance.dataset(d_id), best.node
                                )
                            )
                        if ok:
                            txn.commit()
                if ok:
                    for a in repaired:
                        record.assignments[a.dataset_id] = a
                    dynamics.note_recovered()
                else:
                    # Rollback restored the original allocations; release
                    # them for real and interrupt the query.
                    record = active.pop(q_id)
                    for a in record.assignments.values():
                        state.release(a)
                    dynamics.note_interrupted()
            # The severed-path invariant must hold at every instant: no
            # surviving in-flight pair is served across a cut link.
            state.check_invariants(
                [
                    a
                    for rec in active.values()
                    for a in rec.assignments.values()
                ],
                link_state=dynamics.link_state,
                homes={
                    rec.query.query_id: rec.query.home_node
                    for rec in active.values()
                },
            )

        def on_pairs_lost(node: int, evicted: tuple[object, ...]) -> None:
            # A crash evicted these (query, dataset) allocations; mark the
            # pairs pending and drive failover per query, ascending id
            # (the same order the static repair pass uses).
            hit: set[int] = set()
            for q_id, d_id in evicted:
                record = active.get(q_id)
                if record is None:
                    continue
                record.assignments.pop(d_id, None)
                record.pending.add(d_id)
                record.hit = True
                record.lost_at = sim.now
                hit.add(q_id)
            for q_id in sorted(hit):
                attempt_failover(q_id, 0)

        def on_arrival(query: Query) -> None:
            if injector is not None:
                injector.note_arrival(state.has_down_nodes)
            assignments: list[Assignment] = []
            failed = False
            with obs.time("online.admission_s"):
                # Vectorised pre-probe: a pair with no servable node now
                # cannot gain one inside the transaction (capacity only
                # shrinks, replica slots are per-dataset and ``demanded``
                # has no duplicates), and ``serve`` enforces exactly the
                # ``can_serve`` conditions — so when any demanded pair has
                # an all-false mask, the all-or-nothing admission is doomed
                # and the rule/transaction machinery can be skipped.
                for d_id in query.demanded:
                    if not state.can_serve_mask(
                        query, instance.dataset(d_id)
                    ).any():
                        failed = True
                        break
                if not failed:
                    with state.transaction() as txn:
                        for d_id in query.demanded:
                            a = rule(state, query, d_id)
                            if a is None:
                                failed = True
                                break
                            assignments.append(a)
                        if not failed:
                            txn.commit()
            if failed:
                obs.inc("online.rejected")
                # Replicas placed during the failed probe are rolled back
                # with the transaction for *all* rules — the online setting
                # compares placement quality, not bookkeeping styles.
                outcomes.append(
                    OnlineOutcome(query.query_id, sim.now, False, 0.0)
                )
                return
            obs.inc("online.admitted")
            peak[0] = max(peak[0], state.total_allocated())
            response = max(a.latency_s for a in assignments)
            hold = response * self.config.hold_factor
            if injector is None and dynamics is None:
                for a in assignments:
                    sim.schedule_in(hold, lambda a=a: state.release(a))
            else:
                if injector is not None:
                    injector.note_admission(state.has_down_nodes)
                active[query.query_id] = _ActiveQuery(
                    query, {a.dataset_id: a for a in assignments}
                )
                sim.schedule_in(hold, lambda q=query.query_id: finish(q))
            volume = query.demanded_volume(instance.datasets)
            outcomes.append(
                OnlineOutcome(query.query_id, sim.now, True, volume)
            )

        with obs.span("online.session", queries=len(instance.queries)):
            t = 0.0
            for query in instance.queries:
                t += float(rng.exponential(self.config.mean_interarrival_s))
                sim.schedule(t, lambda q=query: on_arrival(q))
            if fault_cfg is not None:
                # The fault horizon is the last arrival instant; faults are
                # scheduled after the arrivals, so an arrival wins the FIFO
                # tie against a crash at the same instant.
                schedule = build_fault_schedule(
                    instance.placement_nodes, t, fault_cfg
                )
                injector = FaultInjector(sim, state, schedule, on_pairs_lost)
                injector.arm()
            if link_cfg is not None:
                # Link events share the horizon; they are armed last, so
                # node-fault semantics win FIFO ties at equal instants.
                link_schedule = build_link_schedule(
                    instance.topology, t, link_cfg
                )
                dynamics = NetworkDynamics(
                    sim,
                    LinkState(instance.topology),
                    instance.paths,
                    link_schedule,
                    inflation=link_cfg.inflation,
                    on_change=on_links_changed,
                )
                dynamics.arm()
            try:
                sim.run()
            finally:
                if dynamics is not None and instance.paths.generation > 0:
                    # Leave the (possibly shared) instance's path cache on
                    # the base delays: values return bit-identical to a
                    # pristine cache, only the generation stamp differs.
                    dynamics.link_state.restore_all()
                    instance.paths.recompute(
                        dynamics.link_state.effective_delays()
                    )

        admitted = [o for o in outcomes if o.admitted]
        return OnlineReport(
            outcomes=tuple(outcomes),
            admitted_volume_gb=sum(o.volume_gb for o in admitted),
            throughput=len(admitted) / len(outcomes) if outcomes else 0.0,
            peak_allocated_ghz=peak[0],
            replicas_placed=sum(
                max(0, state.replicas.count(d) - 1) for d in instance.datasets
            ),
            faults=injector.report(sim.now) if injector is not None else None,
            netfaults=(
                dynamics.report(sim.now) if dynamics is not None else None
            ),
        )
