"""Online variant: queries arrive over time and release compute on completion.

The paper solves a *static* batch (§2.4 explicitly defers dynamics).  This
extension runs the same placement machinery in an online session:

* queries arrive at Poisson instants;
* an admitted query holds its compute only while it runs (its analytic
  latency scaled by ``hold_factor``), then releases it;
* replicas placed along the way **persist** — they are proactive state
  that keeps serving later arrivals.

Because capacity churns, the primal-dual price term matters more than in
the batch setting: a node that is busy *now* prices itself out, and later
arrivals re-use the freed capacity.  ``OnlineSession`` accepts any
per-pair placement rule; adapters for Appro's kernel and the greedy walk
are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.cluster.state import ClusterState
from repro.core.greedy import _greedy_place_pair
from repro.core.instance import ProblemInstance
from repro.core.primal_dual import PrimalDualConfig, _Kernel
from repro.core.types import Assignment, Query
from repro.obs import get_registry
from repro.sim.engine import Simulator
from repro.util.rng import spawn_rng
from repro.util.validation import check_positive

__all__ = [
    "OnlineConfig",
    "OnlineOutcome",
    "OnlineReport",
    "OnlineSession",
    "appro_rule",
    "greedy_rule",
]


class PlacementRule(Protocol):
    """Per-pair placement rule used by the online session."""

    def __call__(
        self, state: ClusterState, query: Query, dataset_id: int
    ) -> Assignment | None:
        """Serve the pair now, or return ``None`` to refuse."""
        ...


def appro_rule(
    instance: ProblemInstance, config: PrimalDualConfig | None = None
) -> PlacementRule:
    """The primal-dual kernel as an online rule."""
    kernel = _Kernel(config or PrimalDualConfig(), instance)
    return kernel.place_pair


def greedy_rule(instance: ProblemInstance) -> PlacementRule:
    """The §4.1 greedy walk as an online rule."""
    del instance  # greedy needs no precomputation
    return _greedy_place_pair


@dataclass(frozen=True)
class OnlineConfig:
    """Online-session parameters.

    Attributes
    ----------
    mean_interarrival_s:
        Mean Poisson gap between query arrivals.
    hold_factor:
        Compute hold time = ``hold_factor`` × the query's analytic
        response latency (analytics jobs occupy their allocation for the
        duration of evaluation; >1 models result post-processing).
    seed:
        Arrival-draw seed.
    """

    mean_interarrival_s: float = 0.2
    hold_factor: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("mean_interarrival_s", self.mean_interarrival_s)
        check_positive("hold_factor", self.hold_factor)


@dataclass(frozen=True)
class OnlineOutcome:
    """Decision record for one arrival."""

    query_id: int
    arrival_s: float
    admitted: bool
    volume_gb: float


@dataclass(frozen=True)
class OnlineReport:
    """Aggregate result of one online session.

    Attributes
    ----------
    outcomes:
        Per-arrival decisions, in arrival order.
    admitted_volume_gb:
        Σ volume of admitted queries' demanded datasets.
    throughput:
        Admitted / total arrivals.
    peak_allocated_ghz:
        Maximum total compute held at any instant.
    replicas_placed:
        Replicas beyond origins at session end.
    """

    outcomes: tuple[OnlineOutcome, ...]
    admitted_volume_gb: float
    throughput: float
    peak_allocated_ghz: float
    replicas_placed: int


class OnlineSession:
    """Run a problem instance's queries as an online arrival stream."""

    def __init__(self, config: OnlineConfig | None = None) -> None:
        self.config = config or OnlineConfig()

    def run(
        self,
        instance: ProblemInstance,
        rule_factory: Callable[[ProblemInstance], PlacementRule],
    ) -> OnlineReport:
        """Play all queries through ``rule_factory(instance)``.

        Queries arrive in id order at Poisson instants; each arrival is an
        all-or-nothing admission attempt against the *current* cluster
        state; admitted queries release their compute after their hold
        time.
        """
        rule = rule_factory(instance)
        state = ClusterState(instance)
        sim = Simulator()
        rng = spawn_rng(self.config.seed, "online/arrivals")
        obs = get_registry()

        outcomes: list[OnlineOutcome] = []
        peak = [0.0]

        def on_arrival(query: Query) -> None:
            assignments: list[Assignment] = []
            failed = False
            with obs.time("online.admission_s"):
                # Vectorised pre-probe: a pair with no servable node now
                # cannot gain one inside the transaction (capacity only
                # shrinks, replica slots are per-dataset and ``demanded``
                # has no duplicates), and ``serve`` enforces exactly the
                # ``can_serve`` conditions — so when any demanded pair has
                # an all-false mask, the all-or-nothing admission is doomed
                # and the rule/transaction machinery can be skipped.
                for d_id in query.demanded:
                    if not state.can_serve_mask(
                        query, instance.dataset(d_id)
                    ).any():
                        failed = True
                        break
                if not failed:
                    with state.transaction() as txn:
                        for d_id in query.demanded:
                            a = rule(state, query, d_id)
                            if a is None:
                                failed = True
                                break
                            assignments.append(a)
                        if not failed:
                            txn.commit()
            if failed:
                obs.inc("online.rejected")
                # Replicas placed during the failed probe are rolled back
                # with the transaction for *all* rules — the online setting
                # compares placement quality, not bookkeeping styles.
                outcomes.append(
                    OnlineOutcome(query.query_id, sim.now, False, 0.0)
                )
                return
            obs.inc("online.admitted")
            peak[0] = max(peak[0], state.total_allocated())
            response = max(a.latency_s for a in assignments)
            hold = response * self.config.hold_factor
            for a in assignments:
                sim.schedule_in(hold, lambda a=a: state.release(a))
            volume = query.demanded_volume(instance.datasets)
            outcomes.append(
                OnlineOutcome(query.query_id, sim.now, True, volume)
            )

        with obs.span("online.session", queries=len(instance.queries)):
            t = 0.0
            for query in instance.queries:
                t += float(rng.exponential(self.config.mean_interarrival_s))
                sim.schedule(t, lambda q=query: on_arrival(q))
            sim.run()

        admitted = [o for o in outcomes if o.admitted]
        return OnlineReport(
            outcomes=tuple(outcomes),
            admitted_volume_gb=sum(o.volume_gb for o in admitted),
            throughput=len(admitted) / len(outcomes) if outcomes else 0.0,
            peak_allocated_ghz=peak[0],
            replicas_placed=sum(
                max(0, state.replicas.count(d) - 1) for d in instance.datasets
            ),
        )
