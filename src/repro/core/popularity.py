"""Popularity baseline (paper §4.3 testbed benchmark; Hou et al. [13]).

"The benchmark work first calculates the popularity of a node (cloudlet
and data center) according to the ratio of the number of dataset replicas
on the node to the total number of dataset replicas of all nodes.  It then
selects a node with the highest popularity for each dataset, and places a
replica of the dataset if the delay requirement of a query can be
satisfied; otherwise, it then selects another node with the second highest
popularity to place the replica; this procedure continues until the query
is admitted or there are already K replicas of the dataset."

Popularity is recomputed against the *live* replica distribution, so
placement is rich-get-richer: nodes that start with origin copies attract
further replicas until their compute saturates — the failure mode the
proposed algorithm's capacity pricing avoids.
"""

from __future__ import annotations

from repro.cluster.state import ClusterState
from repro.core.base import PlacementAlgorithm, SolutionBuilder, require_special_case
from repro.core.feasibility import pair_latency_vector
from repro.core.instance import ProblemInstance
from repro.core.types import Assignment, PlacementSolution, Query

__all__ = [
    "PopularityS",
    "PopularityG",
    "ReplicaPopularityCounter",
    "node_popularity",
]


def node_popularity(state: ClusterState) -> dict[int, float]:
    """Replica share per node: replicas-on-node / total replicas.

    This is the naive full recompute — a scan of every dataset's replica
    set.  The solvers below maintain the same map incrementally through
    :class:`ReplicaPopularityCounter`; this function remains the
    reference the parity suite pins the counter against.
    """
    total = state.replicas.total_replicas()
    counts: dict[int, float] = {v: 0.0 for v in state.nodes}
    if total == 0:
        return counts
    for d_id in state.instance.datasets:
        for v in state.replicas.nodes(d_id):
            counts[v] += 1.0
    return {v: c / total for v, c in counts.items()}


class ReplicaPopularityCounter:
    """Incrementally maintained :func:`node_popularity`.

    Recomputing popularity from scratch inside every ranked walk is
    O(queries × datasets × replicas): the replica sets are rescanned for
    each (query, dataset) pair even though at most *one* replica is
    placed per pair.  The counter seeds itself from the state once and
    is then bumped on each placement, keeping the map O(1) per step —
    and bit-identical to the recompute, because the per-node shares are
    produced by the same ``count / total`` division (pinned by
    ``tests/core/test_baselines.py``).
    """

    __slots__ = ("_counts", "_total")

    def __init__(self, state: ClusterState) -> None:
        self._counts: dict[int, int] = {v: 0 for v in state.nodes}
        self._total = 0
        for d_id in state.instance.datasets:
            for v in state.replicas.nodes(d_id):
                self._counts[v] += 1
                self._total += 1

    def record_placement(self, node: int) -> None:
        """Account one replica newly placed on ``node``."""
        self._counts[node] += 1
        self._total += 1

    def popularity(self) -> dict[int, float]:
        """The live replica-share map (same values as the recompute)."""
        total = self._total
        if total == 0:
            return {v: 0.0 for v in self._counts}
        return {v: c / total for v, c in self._counts.items()}


def _popularity_place_pair(
    state: ClusterState,
    query: Query,
    dataset_id: int,
    counter: ReplicaPopularityCounter | None = None,
) -> Assignment | None:
    """One popularity-guided step for a (query, dataset) pair.

    The deadline check consults the pair's latency vector, computed once
    for the whole ranked walk instead of per node.  ``counter`` supplies
    the incrementally maintained popularity map (and is told about the
    placement this step makes); without one the map is recomputed naively
    — the reference path the parity suite compares against.
    """
    dataset = state.instance.dataset(dataset_id)
    deadline_ok = (
        pair_latency_vector(state, query, dataset) <= query.deadline_s
    )
    node_index = state.instance.node_index
    popularity = (
        counter.popularity() if counter is not None else node_popularity(state)
    )
    ranked = sorted(
        state.nodes, key=lambda v: (-popularity[v], v)
    )
    for v in ranked:
        has_replica = state.replicas.has(dataset_id, v)
        if not has_replica and not state.replicas.can_place(dataset_id, v):
            continue
        if not deadline_ok[node_index[v]]:
            continue
        if not state.nodes[v].can_fit(state.compute_demand(query, dataset)):
            continue
        assignment = state.serve(query, dataset, v)
        if counter is not None and not has_replica:
            counter.record_placement(v)
        return assignment
    return None


class PopularityS(PlacementAlgorithm):
    """Popularity baseline, special case."""

    name = "popularity-s"

    def solve(self, instance: ProblemInstance) -> PlacementSolution:
        require_special_case(instance, self.name)
        state = ClusterState(instance)
        counter = ReplicaPopularityCounter(state)
        builder = SolutionBuilder(instance, self.name)
        for query in instance.queries:
            assignment = _popularity_place_pair(
                state, query, query.demanded[0], counter
            )
            if assignment is None:
                builder.reject(query.query_id)
            else:
                builder.admit(query.query_id, [assignment])
        builder.extra("replicas_total", state.replicas.total_replicas())
        return builder.build(state)


class PopularityG(PlacementAlgorithm):
    """Popularity baseline, general case (all-or-nothing).

    As with :class:`~repro.core.greedy.GreedyG`, replicas created while
    probing a query persist even when the query is ultimately rejected
    (proactive placement is not undone); only the compute is returned.
    """

    name = "popularity-g"

    def solve(self, instance: ProblemInstance) -> PlacementSolution:
        state = ClusterState(instance)
        counter = ReplicaPopularityCounter(state)
        builder = SolutionBuilder(instance, self.name)
        for query in instance.queries:
            assignments: list[Assignment] = []
            failed = False
            for d_id in query.demanded:
                a = _popularity_place_pair(state, query, d_id, counter)
                if a is None:
                    failed = True
                    break
                assignments.append(a)
            if failed:
                for a in assignments:
                    state.release(a)
                builder.reject(query.query_id)
            else:
                builder.admit(query.query_id, assignments)
        builder.extra("replicas_total", state.replicas.total_replicas())
        return builder.build(state)
