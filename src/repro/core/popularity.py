"""Popularity baseline (paper §4.3 testbed benchmark; Hou et al. [13]).

"The benchmark work first calculates the popularity of a node (cloudlet
and data center) according to the ratio of the number of dataset replicas
on the node to the total number of dataset replicas of all nodes.  It then
selects a node with the highest popularity for each dataset, and places a
replica of the dataset if the delay requirement of a query can be
satisfied; otherwise, it then selects another node with the second highest
popularity to place the replica; this procedure continues until the query
is admitted or there are already K replicas of the dataset."

Popularity is recomputed against the *live* replica distribution, so
placement is rich-get-richer: nodes that start with origin copies attract
further replicas until their compute saturates — the failure mode the
proposed algorithm's capacity pricing avoids.
"""

from __future__ import annotations

from repro.cluster.state import ClusterState
from repro.core.base import PlacementAlgorithm, SolutionBuilder, require_special_case
from repro.core.feasibility import pair_latency_vector
from repro.core.instance import ProblemInstance
from repro.core.types import Assignment, PlacementSolution, Query

__all__ = ["PopularityS", "PopularityG", "node_popularity"]


def node_popularity(state: ClusterState) -> dict[int, float]:
    """Replica share per node: replicas-on-node / total replicas."""
    total = state.replicas.total_replicas()
    counts: dict[int, float] = {v: 0.0 for v in state.nodes}
    if total == 0:
        return counts
    for d_id in state.instance.datasets:
        for v in state.replicas.nodes(d_id):
            counts[v] += 1.0
    return {v: c / total for v, c in counts.items()}


def _popularity_place_pair(
    state: ClusterState, query: Query, dataset_id: int
) -> Assignment | None:
    """One popularity-guided step for a (query, dataset) pair.

    The deadline check consults the pair's latency vector, computed once
    for the whole ranked walk instead of per node.
    """
    dataset = state.instance.dataset(dataset_id)
    deadline_ok = (
        pair_latency_vector(state, query, dataset) <= query.deadline_s
    )
    node_index = state.instance.node_index
    popularity = node_popularity(state)
    ranked = sorted(
        state.nodes, key=lambda v: (-popularity[v], v)
    )
    for v in ranked:
        has_replica = state.replicas.has(dataset_id, v)
        if not has_replica and not state.replicas.can_place(dataset_id, v):
            continue
        if not deadline_ok[node_index[v]]:
            continue
        if not state.nodes[v].can_fit(state.compute_demand(query, dataset)):
            continue
        return state.serve(query, dataset, v)
    return None


class PopularityS(PlacementAlgorithm):
    """Popularity baseline, special case."""

    name = "popularity-s"

    def solve(self, instance: ProblemInstance) -> PlacementSolution:
        require_special_case(instance, self.name)
        state = ClusterState(instance)
        builder = SolutionBuilder(instance, self.name)
        for query in instance.queries:
            assignment = _popularity_place_pair(state, query, query.demanded[0])
            if assignment is None:
                builder.reject(query.query_id)
            else:
                builder.admit(query.query_id, [assignment])
        builder.extra("replicas_total", state.replicas.total_replicas())
        return builder.build(state)


class PopularityG(PlacementAlgorithm):
    """Popularity baseline, general case (all-or-nothing).

    As with :class:`~repro.core.greedy.GreedyG`, replicas created while
    probing a query persist even when the query is ultimately rejected
    (proactive placement is not undone); only the compute is returned.
    """

    name = "popularity-g"

    def solve(self, instance: ProblemInstance) -> PlacementSolution:
        state = ClusterState(instance)
        builder = SolutionBuilder(instance, self.name)
        for query in instance.queries:
            assignments: list[Assignment] = []
            failed = False
            for d_id in query.demanded:
                a = _popularity_place_pair(state, query, d_id)
                if a is None:
                    failed = True
                    break
                assignments.append(a)
            if failed:
                for a in assignments:
                    state.release(a)
                builder.reject(query.query_id)
            else:
                builder.admit(query.query_id, assignments)
        builder.extra("replicas_total", state.replicas.total_replicas())
        return builder.build(state)
