"""The paper's contribution: primal-dual placement (Appro-S / Appro-G).

Algorithm 1 (``Appro-S``) handles the special case where each query demands
one dataset; Algorithm 2 (``Appro-G``) handles the general case by invoking
the single-dataset kernel once per demanded dataset.

Concretisation of the paper's pseudo-code
-----------------------------------------
The paper raises the dual variables ``θ_l`` (compute price), ``η_ml``
(delay price), ``µ_qm`` (replica price) uniformly until dual constraint (9)
tightens for some node, then assigns the query there.  Under uniform
raising, the constraint for node ``v_l`` tightens at a time proportional to
the node's *cost rate*; picking the tightening node is therefore picking
the feasible node with the minimum price-weighted cost rate

``cost(m, n, l) = θ_l + γ_delay·(lat/d_qm) + γ_replica·(used_slots/K)·[new replica]``

where

* ``θ_l`` is the multiplicative compute price of
  :class:`~repro.core.duals.NodePrices` (idle nodes cheap, full nodes
  priced at the query's whole gain — the "dynamic update"),
* the delay term charges pairs that would sit close to their deadline,
  implementing ``η_ml`` (it leaves slack for later queries with tighter
  QoS),
* the replica term charges the creation of a new copy against the
  dataset's remaining ``K`` budget, implementing ``µ_qm``.

A query is admitted at the argmin node iff its cost rate does not exceed
the relaxed complementary-slackness factor ``β`` (Eq. (17)): when every
feasible node is expensive — nearly full, nearly deadline-violating, or
requiring the last replica slots — the query is rejected even though it
would *fit*, preserving resources for higher-value queries.  Queries are
examined in descending order of demanded volume, the order in which the
uniform raising tightens constraints when gains are heterogeneous (and the
order that serves the pay-as-you-go objective first).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.state import ClusterState
from repro.core.base import PlacementAlgorithm, SolutionBuilder, require_special_case
from repro.core.duals import NodePrices, dual_certificate
from repro.core.feasibility import CandidateNode, CandidateSet, candidate_set
from repro.core.instance import ProblemInstance
from repro.core.types import Assignment, PlacementSolution, Query
from repro.obs import get_registry
from repro.util.validation import check_fraction, check_positive

__all__ = ["PrimalDualConfig", "ApproS", "ApproG"]


@dataclass(frozen=True)
class PrimalDualConfig:
    """Tunables of the primal-dual scheme.

    Attributes
    ----------
    theta_floor:
        Idle compute price (see :class:`~repro.core.duals.NodePrices`).
    gamma_delay:
        Weight of the delay price ``η`` in the cost rate.
    gamma_replica:
        Weight of the replica price ``µ`` in the cost rate.
    beta:
        Relaxed complementary-slackness admission threshold (Eq. (17)):
        admit iff the best cost rate ≤ ``β``.  With the three cost terms
        bounded by ``1 + γ_delay + γ_replica``, setting ``β`` at or above
        that sum disables price-based rejection entirely.
    order:
        Query examination order.  ``"density"`` (default) examines queries
        by ascending compute rate then ascending volume — the queries whose
        admission costs the least compute per GB of objective first, i.e.
        the primal-dual gain/cost ratio.  ``"volume"`` is descending
        demanded volume; ``"arrival"`` is input order.
    capacity_pricing:
        Ablation switch: ``False`` freezes ``θ_l`` at the floor, removing
        capacity awareness from the cost rate.
    """

    theta_floor: float = 0.01
    gamma_delay: float = 0.1
    gamma_replica: float = 0.5
    beta: float = 1.6
    order: str = "density"
    capacity_pricing: bool = True

    def __post_init__(self) -> None:
        check_fraction("theta_floor", self.theta_floor)
        if self.theta_floor >= 1.0:
            raise ValueError("theta_floor must be < 1")
        check_positive("gamma_delay", self.gamma_delay)
        check_positive("gamma_replica", self.gamma_replica)
        check_positive("beta", self.beta)
        if self.order not in ("volume", "density", "arrival"):
            raise ValueError(f"unknown order {self.order!r}")


def _query_order(instance: ProblemInstance, order: str) -> list[Query]:
    """Queries in the configured examination order (stable, deterministic)."""
    queries = list(instance.queries)
    if order == "arrival":
        return queries
    if order == "volume":
        key = lambda q: (-q.demanded_volume(instance.datasets), q.query_id)
    else:  # density: cheapest compute per GB of objective first
        key = lambda q: (
            q.compute_rate,
            q.demanded_volume(instance.datasets),
            q.query_id,
        )
    queries.sort(key=key)
    return queries


class _Kernel:
    """Single-(query, dataset) primal-dual placement step, shared by S and G.

    On construction it precomputes, per dataset, each node's *coverage*:
    the total volume of demand the node could serve within deadline if it
    held the dataset.  Creating a replica at a low-coverage node is charged
    a higher ``µ`` — this is the "overall perspective" the paper credits
    Appro with: replica slots are a global budget (K per dataset) and the
    dual price of a slot reflects the demand it could unlock, not just the
    current query.
    """

    def __init__(self, config: PrimalDualConfig, instance: ProblemInstance) -> None:
        self.config = config
        self.prices = NodePrices(theta_floor=config.theta_floor)
        self._node_index = instance.node_index
        self._coverage = self._demand_coverage(instance)
        cap_max = max(
            instance.topology.capacity(v) for v in instance.placement_nodes
        )
        # Smallness indexed by placement position (array) — the cost-rate
        # vector gathers it with the candidate indices, no dict lookups.
        self._smallness = 1.0 - instance.capacities / cap_max

    @staticmethod
    def _demand_coverage(
        instance: ProblemInstance,
    ) -> dict[int, np.ndarray]:
        """Per dataset: fraction of demanded volume reachable in time,
        as a vector over placement positions.

        Vectorised over placement nodes: for each (query, dataset) pair the
        whole latency vector ``|S_n|·(d(v) + α·dt(v → h_m))`` comes from
        the instance's precomputed arrays in one NumPy expression — this
        precomputation dominates the algorithm's runtime on large
        instances when done scalar-wise.
        """
        nodes = instance.placement_nodes
        proc = instance.proc_delays
        acc = {d: np.zeros(len(nodes)) for d in instance.datasets}
        for query in instance.queries:
            home_vec = instance.home_delay_vectors[query.home_node]
            for d_id, alpha in zip(query.demanded, query.selectivity):
                volume = instance.dataset(d_id).volume_gb
                latency = volume * (proc + alpha * home_vec)
                acc[d_id] += volume * (latency <= query.deadline_s)
        coverage: dict[int, np.ndarray] = {}
        for d_id, vec in acc.items():
            top = float(vec.max()) if vec.size else 0.0
            if top > 0.0:
                vec = vec / top
            vec.flags.writeable = False
            coverage[d_id] = vec
        return coverage

    def cost_rate(
        self,
        state: ClusterState,
        query: Query,
        candidate: CandidateNode,
        dataset_id: int,
    ) -> float:
        """Price-weighted cost rate of one serving option (see module docs).

        Scalar reference implementation; the hot path evaluates the same
        expression over a whole candidate set with :meth:`cost_vector`.
        """
        cfg = self.config
        theta = (
            self.prices.theta(state, candidate.node)
            if cfg.capacity_pricing
            else cfg.theta_floor
        )
        cost = theta + cfg.gamma_delay * (candidate.latency_s / query.deadline_s)
        if not candidate.has_replica:
            used = state.replicas.count(dataset_id)
            scarcity = used / state.replicas.max_replicas
            pos = self._node_index[candidate.node]
            misplacement = 1.0 - self._coverage[dataset_id][pos]
            smallness = self._smallness[pos]
            cost += cfg.gamma_replica * (scarcity + misplacement + smallness)
        return cost

    def cost_vector(
        self,
        state: ClusterState,
        query: Query,
        candidates: CandidateSet,
        dataset_id: int,
    ) -> np.ndarray:
        """Cost rate of every candidate at once (array ops, no dict lookups).

        Elementwise identical to :meth:`cost_rate`: same operations in the
        same order, evaluated over arrays.
        """
        cfg = self.config
        if cfg.capacity_pricing:
            theta = self.prices.theta_array(state)[candidates.indices]
        else:
            theta = cfg.theta_floor
        cost = theta + cfg.gamma_delay * (candidates.latency_s / query.deadline_s)
        new_replica = ~candidates.has_replica
        if new_replica.any():
            used = state.replicas.count(dataset_id)
            scarcity = used / state.replicas.max_replicas
            pos = candidates.indices[new_replica]
            misplacement = 1.0 - self._coverage[dataset_id][pos]
            smallness = self._smallness[pos]
            cost[new_replica] += cfg.gamma_replica * (
                scarcity + misplacement + smallness
            )
        return cost

    @staticmethod
    def argmin_candidate(candidates: CandidateSet, cost: np.ndarray) -> int:
        """Position of the cheapest candidate, ties broken by node id.

        Matches ``min(candidates, key=lambda c: (cost(c), c.node))`` on the
        scalar path.
        """
        ties = np.nonzero(cost == cost.min())[0]
        if ties.size == 1:
            return int(ties[0])
        return int(ties[np.argmin(candidates.nodes[ties])])

    def place_pair(
        self, state: ClusterState, query: Query, dataset_id: int
    ) -> Assignment | None:
        """Serve one (query, dataset) pair at the cheapest node, or refuse.

        Returns the committed assignment, or ``None`` when no feasible node
        exists or the cheapest cost rate exceeds ``β`` (price rejection).
        The full cost-rate vector is evaluated once with array ops and the
        minimum kept — no per-candidate re-evaluation.
        """
        obs = get_registry()
        dataset = state.instance.dataset(dataset_id)
        candidates = candidate_set(state, query, dataset)
        if not candidates:
            obs.inc("algo.appro.no_candidates")
            return None
        cost = self.cost_vector(state, query, candidates, dataset_id)
        best = self.argmin_candidate(candidates, cost)
        if cost[best] > self.config.beta:
            obs.inc("algo.appro.price_rejections")
            return None
        if not candidates.has_replica[best]:
            obs.inc("algo.appro.replicas_placed")
        return state.serve(query, dataset, int(candidates.nodes[best]))


class ApproS(PlacementAlgorithm):
    """Algorithm 1 — primal-dual placement for single-dataset queries."""

    name = "appro-s"

    def __init__(self, config: PrimalDualConfig | None = None) -> None:
        self.config = config or PrimalDualConfig()

    def solve(self, instance: ProblemInstance) -> PlacementSolution:
        require_special_case(instance, self.name)
        obs = get_registry()
        with obs.span(f"algo.{self.name}.solve", queries=instance.num_queries):
            state = ClusterState(instance)
            kernel = _Kernel(self.config, instance)
            builder = SolutionBuilder(instance, self.name)
            for query in _query_order(instance, self.config.order):
                with obs.time(f"algo.{self.name}.admission_s"):
                    assignment = kernel.place_pair(
                        state, query, query.demanded[0]
                    )
                if assignment is None:
                    obs.inc(f"algo.{self.name}.rejected")
                    builder.reject(query.query_id)
                else:
                    obs.inc(f"algo.{self.name}.admitted")
                    builder.admit(query.query_id, [assignment])
            builder.extra(
                "dual_objective", dual_certificate(instance, state, kernel.prices)
            )
            builder.extra("replicas_total", state.replicas.total_replicas())
            return builder.build(state)


class ApproG(PlacementAlgorithm):
    """Algorithm 2 — the general case via the single-dataset kernel.

    For each query, the kernel places every demanded dataset inside a
    cluster-state transaction; the query is admitted only if *all* its
    datasets were servable (its QoS covers the max over datasets), else the
    transaction rolls back and the query is rejected.  With
    ``partial_admission=True`` the literal Algorithm 2 accumulation is used
    instead: each servable pair is kept, and a query counts as admitted if
    at least one pair was served.
    """

    name = "appro-g"

    def __init__(
        self,
        config: PrimalDualConfig | None = None,
        *,
        partial_admission: bool = False,
    ) -> None:
        self.config = config or PrimalDualConfig()
        self.partial_admission = partial_admission

    def solve(self, instance: ProblemInstance) -> PlacementSolution:
        return self.solve_on_state(instance, ClusterState(instance))

    def solve_on_state(
        self, instance: ProblemInstance, state: ClusterState
    ) -> PlacementSolution:
        """Run the kernel against a caller-prepared cluster state.

        Used by :mod:`repro.core.migration` to carry replica placements
        over from a previous epoch; ``state`` must belong to ``instance``
        and carry no compute allocations.
        """
        obs = get_registry()
        with obs.span(f"algo.{self.name}.solve", queries=instance.num_queries):
            kernel = _Kernel(self.config, instance)
            builder = SolutionBuilder(instance, self.name)
            for query in _query_order(instance, self.config.order):
                # Place the query's largest datasets first: they are the most
                # constrained (fewest delay-feasible nodes), so a doomed query
                # aborts its transaction early.
                datasets = sorted(
                    query.demanded,
                    key=lambda d: (-instance.dataset(d).volume_gb, d),
                )
                assignments: list[Assignment] = []
                with obs.time(f"algo.{self.name}.admission_s"):
                    with state.transaction() as txn:
                        for d_id in datasets:
                            a = kernel.place_pair(state, query, d_id)
                            if a is None:
                                if not self.partial_admission:
                                    assignments.clear()
                                    break
                                continue
                            assignments.append(a)
                        else:
                            txn.commit()
                        if self.partial_admission:
                            if assignments:
                                txn.commit()
                            else:
                                assignments.clear()
                if assignments:
                    obs.inc(f"algo.{self.name}.admitted")
                    builder.admit(query.query_id, assignments)
                else:
                    obs.inc(f"algo.{self.name}.rejected")
                    builder.reject(query.query_id)
            builder.extra(
                "dual_objective", dual_certificate(instance, state, kernel.prices)
            )
            builder.extra("replicas_total", state.replicas.total_replicas())
            return builder.build(state)
