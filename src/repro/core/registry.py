"""Algorithm registry: name → factory.

Experiments and examples refer to algorithms by their paper names
(``appro-s``, ``greedy-g``, ...); the registry centralises construction so
sweep code never hard-codes classes.
"""

from __future__ import annotations

from typing import Callable

from repro.core.base import PlacementAlgorithm
from repro.core.graph_partition import GraphG, GraphS
from repro.core.greedy import GreedyG, GreedyS
from repro.core.popularity import PopularityG, PopularityS
from repro.core.bandwidth import BandwidthApproG
from repro.core.lp_rounding import LpRoundingG
from repro.core.primal_dual import ApproG, ApproS

__all__ = ["ALGORITHMS", "make_algorithm", "available_algorithms"]

#: Name → zero-argument factory for every algorithm in the paper.
ALGORITHMS: dict[str, Callable[[], PlacementAlgorithm]] = {
    "appro-s": ApproS,
    "appro-g": ApproG,
    "greedy-s": GreedyS,
    "greedy-g": GreedyG,
    "graph-s": GraphS,
    "graph-g": GraphG,
    "popularity-s": PopularityS,
    "popularity-g": PopularityG,
    "lp-rounding-g": LpRoundingG,
    "appro-bw-g": BandwidthApproG,
}


def make_algorithm(name: str) -> PlacementAlgorithm:
    """Instantiate an algorithm by its registry name.

    Raises
    ------
    KeyError
        With the list of known names, when ``name`` is not registered.
    """
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        ) from None
    return factory()


def available_algorithms() -> tuple[str, ...]:
    """Registered algorithm names, sorted."""
    return tuple(sorted(ALGORITHMS))
