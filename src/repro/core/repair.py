"""Node failures and placement repair (availability, §2.3 motivation).

The paper replicates datasets partly "to make datasets in the two-tier
edge cloud highly available, reliable and scalable".  This module
quantifies that claim: knock out placement nodes, measure which admitted
queries lose service, and repair the placement by failing the affected
pairs over to surviving replicas (placing fresh replicas with the freed
``K`` slots where necessary).

The headline metric is **availability**: the fraction of the originally
admitted volume still served after failure + repair.  The availability
bench sweeps K to show the paper's replication premium paying off exactly
when nodes fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.cluster.state import ClusterState
from repro.core.feasibility import CandidateNode, candidate_nodes
from repro.core.instance import ProblemInstance
from repro.core.metrics import evaluate_solution
from repro.core.types import Assignment, Dataset, PlacementSolution, Query
from repro.util.validation import ValidationError

__all__ = [
    "FailureImpact",
    "RepairReport",
    "best_failover_candidate",
    "fail_nodes",
    "repair_placement",
]


def best_failover_candidate(
    state: ClusterState,
    query: Query,
    dataset: Dataset,
    *,
    excluded: frozenset[int] = frozenset(),
) -> CandidateNode | None:
    """Cheapest surviving node a lost (query, dataset) pair can fail over to.

    The repair rule shared by the static :func:`repair_placement` pass and
    the dynamic fault-injection failover
    (:mod:`repro.sim.faults` / ``OnlineSession``): among the fully feasible
    candidates not in ``excluded``, pick the lowest analytic latency (node
    id breaks ties).  ``None`` when no surviving node can serve the pair.
    Fault-aware states already exclude down nodes via their feasibility
    masks; ``excluded`` exists for the static pass, where failed nodes are
    modelled by pinning capacity instead.
    """
    options = [
        c
        for c in candidate_nodes(state, query, dataset)
        if c.node not in excluded
    ]
    if not options:
        return None
    return min(options, key=lambda c: (c.latency_s, c.node))


@dataclass(frozen=True)
class FailureImpact:
    """What a set of node failures breaks in a placement.

    Attributes
    ----------
    failed_nodes:
        The nodes taken offline.
    lost_pairs:
        (query, dataset) assignments that were served on failed nodes.
    lost_replicas:
        (dataset, node) replica copies destroyed, origins included.
    affected_queries:
        Queries with at least one lost pair.
    orphaned_datasets:
        Datasets that lost *every* copy (origin included) — unrecoverable
        without regeneration.
    """

    failed_nodes: frozenset[int]
    lost_pairs: tuple[tuple[int, int], ...]
    lost_replicas: tuple[tuple[int, int], ...]
    affected_queries: frozenset[int]
    orphaned_datasets: frozenset[int]


@dataclass(frozen=True)
class RepairReport:
    """Outcome of repairing a placement after failures.

    Attributes
    ----------
    impact:
        The failure being repaired.
    solution:
        The repaired placement (over the surviving topology's nodes).
    recovered_queries, dropped_queries:
        Affected queries whose service was restored / had to be rejected.
    availability:
        Served-volume after repair ÷ served-volume before failure, in
        [0, 1].
    """

    impact: FailureImpact
    solution: PlacementSolution
    recovered_queries: frozenset[int]
    dropped_queries: frozenset[int]
    availability: float


def fail_nodes(
    instance: ProblemInstance,
    solution: PlacementSolution,
    nodes: Iterable[int],
) -> FailureImpact:
    """Compute the impact of taking ``nodes`` offline under ``solution``."""
    failed = frozenset(int(v) for v in nodes)
    unknown = failed - set(instance.placement_nodes)
    if unknown:
        raise ValidationError(f"cannot fail non-placement nodes: {sorted(unknown)}")

    lost_pairs = tuple(
        sorted(key for key, a in solution.assignments.items() if a.node in failed)
    )
    lost_replicas = tuple(
        sorted(
            (d_id, v)
            for d_id, reps in solution.replicas.items()
            for v in reps
            if v in failed
        )
    )
    orphaned = frozenset(
        d_id
        for d_id, reps in solution.replicas.items()
        if set(reps) <= failed
    )
    return FailureImpact(
        failed_nodes=failed,
        lost_pairs=lost_pairs,
        lost_replicas=lost_replicas,
        affected_queries=frozenset(q for q, _ in lost_pairs),
        orphaned_datasets=orphaned,
    )


def _rebuild_state(
    instance: ProblemInstance,
    solution: PlacementSolution,
    impact: FailureImpact,
) -> tuple[ClusterState, dict[tuple[int, int], Assignment]]:
    """Reconstruct post-failure cluster state with surviving assignments."""
    state = ClusterState(instance)
    # Mirror surviving replica placements (skip origins: already seeded;
    # skip copies on failed nodes entirely).
    for d_id, reps in solution.replicas.items():
        for v in reps:
            if v in impact.failed_nodes:
                continue
            if not state.replicas.has(d_id, v):
                state.replicas.place(d_id, v)
    # Failed nodes can host nothing: pin their capacity to zero by
    # allocating it away (the topology object itself is immutable).
    for v in impact.failed_nodes:
        state.nodes[v].allocate("__failed__", state.nodes[v].available_ghz)

    surviving: dict[tuple[int, int], Assignment] = {}
    for key, a in solution.assignments.items():
        if a.node in impact.failed_nodes:
            continue
        query = instance.query(a.query_id)
        dataset = instance.dataset(a.dataset_id)
        state.nodes[a.node].allocate(key, state.compute_demand(query, dataset))
        surviving[key] = a
    return state, surviving


def repair_placement(
    instance: ProblemInstance,
    solution: PlacementSolution,
    impact: FailureImpact,
    *,
    all_or_nothing: bool = True,
) -> RepairReport:
    """Fail the lost pairs over to surviving or fresh replicas.

    For each affected query (ascending id), every lost pair is re-served
    at the cheapest-latency feasible surviving node; under all-or-nothing
    semantics a query that cannot recover *all* its lost pairs is dropped
    entirely (its surviving allocations are released too).

    Notes
    -----
    Destroyed non-origin copies free their ``K`` slots (repair may re-clone
    from any surviving copy), while the origin's ledger entry is never
    dropped — the record of the authoritative copy remains even when its
    node is down, so it still occupies one slot.  A pair whose dataset lost
    *every* copy (orphaned) is unrecoverable and drops its query.
    """
    state, surviving = _rebuild_state(instance, solution, impact)

    recovered: set[int] = set()
    dropped: set[int] = set()
    new_assignments: dict[tuple[int, int], Assignment] = dict(surviving)

    for q_id in sorted(impact.affected_queries):
        query = instance.query(q_id)
        lost = [d for (qq, d) in impact.lost_pairs if qq == q_id]
        repaired: list[Assignment] = []
        failed_repair = False
        with state.transaction() as txn:
            for d_id in lost:
                if d_id in impact.orphaned_datasets:
                    failed_repair = True  # no surviving copy to clone from
                    break
                dataset = instance.dataset(d_id)
                best = best_failover_candidate(
                    state, query, dataset, excluded=impact.failed_nodes
                )
                if best is None:
                    failed_repair = True
                    break
                repaired.append(state.serve(query, dataset, best.node))
            if not failed_repair:
                txn.commit()
        if failed_repair and all_or_nothing:
            dropped.add(q_id)
            for key in [k for k in new_assignments if k[0] == q_id]:
                state.release(new_assignments.pop(key))
        else:
            recovered.add(q_id)
            for a in repaired:
                new_assignments[(a.query_id, a.dataset_id)] = a

    admitted = frozenset(solution.admitted) - frozenset(dropped)
    replicas = state.replicas.replica_map()
    repaired_solution = PlacementSolution(
        algorithm=f"{solution.algorithm}+repair",
        replicas=replicas,
        assignments=new_assignments,
        admitted=admitted,
        rejected=frozenset(range(instance.num_queries)) - admitted,
        extras=dict(solution.extras),
    )
    before = evaluate_solution(instance, solution).admitted_volume_gb
    after = evaluate_solution(instance, repaired_solution).admitted_volume_gb
    return RepairReport(
        impact=impact,
        solution=repaired_solution,
        recovered_queries=frozenset(recovered),
        dropped_queries=frozenset(dropped),
        availability=(after / before) if before > 0 else 1.0,
    )
