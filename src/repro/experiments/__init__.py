"""Experiment harness: runners, figure reproducers, table rendering.

Reproduces every evaluation figure of the paper:

====== ===========================================================
Figure Producer
====== ===========================================================
2a/2b  :func:`repro.experiments.figures.figure2`
3a/3b  :func:`repro.experiments.figures.figure3`
4a/4b  :func:`repro.experiments.figures.figure4`
5a/5b  :func:`repro.experiments.figures.figure5`
7a/7b  :func:`repro.experiments.figures.figure7`
8a/8b  :func:`repro.experiments.figures.figure8`
====== ===========================================================

Each producer returns a :class:`~repro.experiments.figures.FigureSeries`
whose rows average the paper's 15 random topologies (configurable);
``render_figure`` prints it as the text table the benchmark harness emits.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import AggregateMetrics, run_algorithm, compare_algorithms
from repro.experiments.figures import (
    FigureSeries,
    figure2,
    figure3,
    figure4,
    figure5,
    figure7,
    figure8,
    FIGURES,
)
from repro.experiments.tables import render_figure, render_comparison
from repro.experiments.plots import bar_chart, plot_figure
from repro.experiments.stats import ConfidenceInterval, mean_ci, paired_ratio_ci, paired_test
from repro.experiments.report import RESULT_SECTIONS, build_report

__all__ = [
    "ExperimentConfig",
    "AggregateMetrics",
    "run_algorithm",
    "compare_algorithms",
    "FigureSeries",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure7",
    "figure8",
    "FIGURES",
    "render_figure",
    "render_comparison",
    "bar_chart",
    "plot_figure",
    "ConfidenceInterval",
    "mean_ci",
    "paired_ratio_ci",
    "paired_test",
    "RESULT_SECTIONS",
    "build_report",
]
