"""Experiment configuration shared by all figure reproducers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.topology.twotier import TwoTierConfig
from repro.util.validation import check_positive
from repro.workload.params import PaperDefaults

__all__ = ["ExperimentConfig"]


@dataclass(frozen=True)
class ExperimentConfig:
    """How figure experiments are run.

    Attributes
    ----------
    repeats:
        Topologies averaged per data point — "each value in the figures is
        the mean of the results by applying each mentioned algorithm on 15
        different topologies" (§4.1).
    seed:
        Root seed; repeat ``i`` derives its topology/workload streams from
        ``(seed, i)``.
    topology:
        Base two-tier configuration (network-size sweeps scale it).
    params:
        Base workload parameters.
    n_jobs:
        Worker processes for the repeat fan-out (1 = in-process serial).
        Results are bit-identical for any value — see
        :mod:`repro.experiments.parallel`.
    """

    repeats: int = 15
    seed: int = 2019
    topology: TwoTierConfig = field(default_factory=TwoTierConfig)
    params: PaperDefaults = field(default_factory=PaperDefaults)
    n_jobs: int = 1

    def __post_init__(self) -> None:
        check_positive("repeats", self.repeats)
        check_positive("n_jobs", self.n_jobs)
