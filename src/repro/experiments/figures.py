"""Reproducers for every figure in the paper's evaluation (§4.2–4.3).

Each ``figureN`` function regenerates the data behind both panels of the
paper's figure N — panel (a) is the volume of datasets demanded by
admitted queries, panel (b) the system throughput — as a
:class:`FigureSeries` of per-algorithm rows over the swept parameter.

Notes on paper fidelity
-----------------------
* The paper's Fig. 3 caption and prose are swapped with Fig. 4's; we
  follow the prose: Fig. 3 sweeps network size in the general case,
  Fig. 4 sweeps ``F`` (max datasets per query).
* Fig. 7 is labelled ``Appro-S``/``Popularity-S`` while sweeping ``F``;
  a ``F > 1`` sweep is only meaningful for the general variants, so the
  testbed sweep runs ``appro-g``/``popularity-g`` (at ``F = 1`` they
  coincide with the -S algorithms).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Callable, Mapping, Sequence

from repro.core.registry import make_algorithm
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import compare_algorithms
from repro.sim.testbed import TestbedExperiment, run_testbed_experiment
from repro.util.rng import derive_seed
from repro.workload.params import PaperDefaults

__all__ = [
    "FigureSeries",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure7",
    "figure8",
    "FIGURES",
]

#: Core network sizes for the size sweeps (paper base: 32 = 6 DC + 24 CL + 2 SW,
#: swept "up to 200" with a dip observed at the largest size).
NETWORK_SIZES: tuple[int, ...] = (32, 60, 100, 150, 200)

#: F values for the datasets-per-query sweeps (Figs. 4 and 7).
F_VALUES: tuple[int, ...] = (1, 2, 3, 4, 5, 6)

#: K values for the replica-bound sweeps (Figs. 5 and 8).
K_VALUES: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7)


@dataclass(frozen=True)
class FigureSeries:
    """Data behind one two-panel figure.

    Attributes
    ----------
    figure_id:
        E.g. ``"fig2"``.
    title:
        Human-readable description.
    x_label, x_values:
        The swept parameter.
    volume:
        Algorithm → series for panel (a), GB.
    throughput:
        Algorithm → series for panel (b), fraction.
    """

    figure_id: str
    title: str
    x_label: str
    x_values: tuple
    volume: Mapping[str, tuple[float, ...]]
    throughput: Mapping[str, tuple[float, ...]]

    def __post_init__(self) -> None:
        object.__setattr__(self, "volume", MappingProxyType(dict(self.volume)))
        object.__setattr__(
            self, "throughput", MappingProxyType(dict(self.throughput))
        )
        for table in (self.volume, self.throughput):
            for alg, series in table.items():
                if len(series) != len(self.x_values):
                    raise ValueError(
                        f"{self.figure_id}: series {alg} has {len(series)} points "
                        f"for {len(self.x_values)} x-values"
                    )

    @property
    def algorithms(self) -> tuple[str, ...]:
        """Algorithms present, in insertion order."""
        return tuple(self.volume)


def _sweep(
    figure_id: str,
    title: str,
    x_label: str,
    x_values: Sequence,
    algorithms: list[str],
    config: ExperimentConfig,
    point: Callable[[object], tuple],
) -> FigureSeries:
    """Run ``compare_algorithms`` at each sweep point.

    ``point(x)`` maps an x-value to ``(topology_config, params)``.
    """
    volume: dict[str, list[float]] = {a: [] for a in algorithms}
    throughput: dict[str, list[float]] = {a: [] for a in algorithms}
    for x in x_values:
        topology_config, params = point(x)
        results = compare_algorithms(
            algorithms, config, topology_config=topology_config, params=params
        )
        for a in algorithms:
            volume[a].append(results[a].volume_mean)
            throughput[a].append(results[a].throughput_mean)
    return FigureSeries(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        x_values=tuple(x_values),
        volume={a: tuple(v) for a, v in volume.items()},
        throughput={a: tuple(v) for a, v in throughput.items()},
    )


def figure2(config: ExperimentConfig | None = None) -> FigureSeries:
    """Fig. 2 — special case vs network size: Appro-S, Greedy-S, Graph-S."""
    config = config or ExperimentConfig()
    params = config.params.single_dataset()
    return _sweep(
        "fig2",
        "Special case (one dataset per query) vs network size",
        "network size (core nodes)",
        NETWORK_SIZES,
        ["appro-s", "greedy-s", "graph-s"],
        config,
        lambda n: (config.topology.scaled_to(int(n)), params),
    )


def figure3(config: ExperimentConfig | None = None) -> FigureSeries:
    """Fig. 3 — general case vs network size: Appro-G, Greedy-G, Graph-G."""
    config = config or ExperimentConfig()
    return _sweep(
        "fig3",
        "General case (multiple datasets per query) vs network size",
        "network size (core nodes)",
        NETWORK_SIZES,
        ["appro-g", "greedy-g", "graph-g"],
        config,
        lambda n: (config.topology.scaled_to(int(n)), config.params),
    )


def figure4(config: ExperimentConfig | None = None) -> FigureSeries:
    """Fig. 4 — impact of ``F`` (max datasets per query), general case."""
    config = config or ExperimentConfig()
    return _sweep(
        "fig4",
        "Impact of the maximum number of datasets demanded by each query",
        "F (max datasets per query)",
        F_VALUES,
        ["appro-g", "greedy-g", "graph-g"],
        config,
        lambda f: (
            config.topology,
            config.params.with_max_datasets_per_query(int(f)),
        ),
    )


def figure5(config: ExperimentConfig | None = None) -> FigureSeries:
    """Fig. 5 — impact of ``K`` (max replicas per dataset), general case."""
    config = config or ExperimentConfig()
    return _sweep(
        "fig5",
        "Impact of the maximum number K of replicas of each dataset",
        "K (max replicas per dataset)",
        K_VALUES,
        ["appro-g", "greedy-g", "graph-g"],
        config,
        lambda k: (config.topology, config.params.with_max_replicas(int(k))),
    )


def _testbed_sweep(
    figure_id: str,
    title: str,
    x_label: str,
    x_values: Sequence,
    algorithms: list[str],
    config: ExperimentConfig,
    params_for: Callable[[object], PaperDefaults],
) -> FigureSeries:
    """Average testbed runs per sweep point (paired seeds across algorithms)."""
    volume: dict[str, list[float]] = {a: [] for a in algorithms}
    throughput: dict[str, list[float]] = {a: [] for a in algorithms}
    for x in x_values:
        params = params_for(x)
        sums = {a: [0.0, 0.0] for a in algorithms}
        for repeat in range(config.repeats):
            seed = derive_seed(config.seed, f"testbed/{figure_id}/{repeat}")
            experiment = TestbedExperiment(params=params, seed=seed)
            for a in algorithms:
                report = run_testbed_experiment(make_algorithm(a), experiment)
                if not report.results_faithful:
                    raise RuntimeError(
                        f"{a}: replica evaluation diverged from origin data"
                    )
                sums[a][0] += report.metrics.admitted_volume_gb
                sums[a][1] += report.metrics.throughput
        for a in algorithms:
            volume[a].append(sums[a][0] / config.repeats)
            throughput[a].append(sums[a][1] / config.repeats)
    return FigureSeries(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        x_values=tuple(x_values),
        volume={a: tuple(v) for a, v in volume.items()},
        throughput={a: tuple(v) for a, v in throughput.items()},
    )


def figure7(config: ExperimentConfig | None = None) -> FigureSeries:
    """Fig. 7 — testbed, impact of ``F``: Appro vs Popularity.

    The paper labels these series ``-S``; the sweep requires the general
    variants for ``F > 1`` (see module notes).
    """
    config = config or ExperimentConfig(repeats=5)
    return _testbed_sweep(
        "fig7",
        "Testbed: impact of F (Appro vs Popularity)",
        "F (max datasets per query)",
        F_VALUES,
        ["appro-g", "popularity-g"],
        config,
        lambda f: config.params.with_max_datasets_per_query(int(f)),
    )


def figure8(config: ExperimentConfig | None = None) -> FigureSeries:
    """Fig. 8 — testbed, impact of ``K``: Appro-G vs Popularity-G."""
    config = config or ExperimentConfig(repeats=5)
    return _testbed_sweep(
        "fig8",
        "Testbed: impact of K (Appro-G vs Popularity-G)",
        "K (max replicas per dataset)",
        K_VALUES,
        ["appro-g", "popularity-g"],
        config,
        lambda k: config.params.with_max_replicas(int(k)),
    )


#: Figure id → producer, for harness code that iterates all figures.
FIGURES: dict[str, Callable[[ExperimentConfig | None], FigureSeries]] = {
    "fig2": figure2,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig7": figure7,
    "fig8": figure8,
}
