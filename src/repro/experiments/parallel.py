"""Process-pool fan-out for experiment repeats, bit-identical to serial.

The repeat loop is embarrassingly parallel: each ``(seed, repeat)``
instance is constructed deterministically inside its worker (nothing
random crosses the process boundary) and solved for every requested
algorithm, so a repeat's metrics do not depend on which process computed
them.  The parent collects results in submission order — repeat order —
which makes the aggregated means and stdevs byte-for-byte equal to a
serial run's, for any ``n_jobs``.

Observability composes across the boundary: when the parent has a
collecting registry installed, each worker records into a private
:class:`~repro.obs.registry.MetricsRegistry` and ships a snapshot back
with its result; the parent merges snapshots in repeat order (counters
add, summaries merge exact stats, spans append — see
:meth:`~repro.obs.registry.MetricsRegistry.merge_snapshot`).

Workers memoise instances in their own module-level cache (the parent's
cache is per-process), and executors are reused across calls so a figure
sweep pays the pool start-up once.
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor

from repro.obs import get_registry
from repro.topology.twotier import TwoTierConfig
from repro.workload.params import PaperDefaults

__all__ = ["run_repeats"]

_executors: dict[int, ProcessPoolExecutor] = {}


def _get_executor(n_jobs: int) -> ProcessPoolExecutor:
    executor = _executors.get(n_jobs)
    if executor is None:
        executor = _executors[n_jobs] = ProcessPoolExecutor(max_workers=n_jobs)
    return executor


@atexit.register
def _shutdown_executors() -> None:
    for executor in _executors.values():
        executor.shutdown(wait=False, cancel_futures=True)
    _executors.clear()


def _run_repeat(
    names: list[str],
    topology_config: TwoTierConfig,
    params: PaperDefaults,
    seed: int,
    repeat: int,
    collect: bool,
) -> tuple[int, dict[str, tuple[float, float]], dict | None]:
    """Worker body: build the repeat's instance, solve every algorithm.

    Runs in the worker process (also callable in-process for tests).
    Imports are local to keep ``runner`` ↔ ``parallel`` acyclic.
    """
    from repro.experiments.runner import cached_instance, solve_one
    from repro.obs import MetricsRegistry, use_registry

    instance = cached_instance(topology_config, params, seed, repeat)
    if collect:
        registry = MetricsRegistry()
        with use_registry(registry):
            metrics = {name: solve_one(instance, name) for name in names}
        return repeat, metrics, registry.snapshot()
    metrics = {name: solve_one(instance, name) for name in names}
    return repeat, metrics, None


def run_repeats(
    names: list[str],
    topology_config: TwoTierConfig,
    params: PaperDefaults,
    seed: int,
    repeats: int,
    n_jobs: int,
) -> dict[str, tuple[list[float], list[float]]]:
    """Fan the repeat loop out over ``n_jobs`` worker processes.

    Returns ``name → (volumes, throughputs)`` with repeat-ordered lists,
    exactly as the serial loop in
    :func:`repro.experiments.runner.compare_algorithms` produces them.
    """
    parent = get_registry()
    collect = bool(parent.enabled)
    executor = _get_executor(n_jobs)
    futures = [
        executor.submit(
            _run_repeat, names, topology_config, params, seed, repeat, collect
        )
        for repeat in range(repeats)
    ]
    per_algo: dict[str, tuple[list[float], list[float]]] = {
        name: ([], []) for name in names
    }
    for future in futures:
        _, metrics, snapshot = future.result()
        for name, (volume, throughput) in metrics.items():
            per_algo[name][0].append(volume)
            per_algo[name][1].append(throughput)
        if snapshot is not None and parent.enabled:
            parent.merge_snapshot(snapshot)
    return per_algo
