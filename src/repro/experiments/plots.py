"""Terminal plots: render figure series as Unicode charts.

No plotting dependency is available offline, so the harness renders its
own: grouped bar charts for per-algorithm series over a swept parameter.
Used by ``python -m repro figure --plot`` and handy in notebooks/logs.
"""

from __future__ import annotations

from repro.experiments.figures import FigureSeries
from repro.util.validation import ValidationError, check_positive

__all__ = ["bar_chart", "plot_figure"]

#: Eighth-block characters for sub-cell bar resolution.
_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, vmax: float, width: int) -> str:
    """Render one horizontal bar of ``value`` against scale ``vmax``."""
    if vmax <= 0.0:
        return ""
    cells = value / vmax * width
    full = int(cells)
    frac = int(round((cells - full) * 8))
    if frac == 8:
        full += 1
        frac = 0
    bar = _BLOCKS[-1] * min(full, width)
    if full < width and frac > 0:
        bar += _BLOCKS[frac]
    return bar


def bar_chart(
    title: str,
    rows: dict[str, float],
    *,
    width: int = 40,
    fmt: str = ".1f",
) -> str:
    """A labelled horizontal bar chart.

    >>> print(bar_chart("demo", {"a": 2.0, "b": 1.0}, width=4))  # doctest: +SKIP
    demo
    a │████ 2.0
    b │██   1.0
    """
    check_positive("width", width)
    if not rows:
        raise ValidationError("bar_chart needs at least one row")
    vmax = max(rows.values())
    name_w = max(len(k) for k in rows)
    lines = [title]
    for name, value in rows.items():
        lines.append(
            f"{name.ljust(name_w)} │{_bar(value, vmax, width).ljust(width)} "
            f"{value:{fmt}}"
        )
    return "\n".join(lines)


def plot_figure(series: FigureSeries, *, width: int = 36) -> str:
    """Render both panels of a figure as grouped bar charts.

    One group per x-value; within a group, one bar per algorithm.
    """
    check_positive("width", width)
    out: list[str] = [f"=== {series.figure_id}: {series.title} ==="]
    panels = [
        (f"{series.figure_id}(a) volume (GB)", series.volume, ".1f"),
        (f"{series.figure_id}(b) throughput", series.throughput, ".3f"),
    ]
    name_w = max(len(a) for a in series.algorithms)
    for header, table, fmt in panels:
        out.append("")
        out.append(f"--- {header} ---")
        vmax = max(
            (v for vs in table.values() for v in vs), default=0.0
        )
        for i, x in enumerate(series.x_values):
            out.append(f"{series.x_label} = {x}")
            for alg in series.algorithms:
                value = table[alg][i]
                out.append(
                    f"  {alg.ljust(name_w)} │"
                    f"{_bar(value, vmax, width).ljust(width)} {value:{fmt}}"
                )
    return "\n".join(out)
