"""Assemble one markdown report from persisted bench tables.

Every bench writes its rendered table to ``benchmarks/results/<name>.txt``;
:func:`build_report` stitches them into a single markdown document (the
regenerated companion to EXPERIMENTS.md), and the CLI exposes it as
``report``.
"""

from __future__ import annotations

from pathlib import Path

from repro.util.validation import ValidationError

__all__ = ["RESULT_SECTIONS", "build_report"]

#: Canonical section order; files not listed are appended alphabetically.
RESULT_SECTIONS: tuple[tuple[str, str], ...] = (
    ("fig2", "Fig. 2 — special case vs network size"),
    ("fig3", "Fig. 3 — general case vs network size"),
    ("fig4", "Fig. 4 — impact of F (max datasets per query)"),
    ("fig5", "Fig. 5 — impact of K (max replicas)"),
    ("fig7", "Fig. 7 — testbed, impact of F"),
    ("fig8", "Fig. 8 — testbed, impact of K"),
    ("ablation_pricing", "Ablation — capacity pricing"),
    ("ablation_admission", "Ablation — admission semantics"),
    ("optimality_gap", "Ablation — optimality gap"),
    ("optimality_gap_medium", "Ablation — optimality gap (medium instances)"),
    ("consistency", "Ablation — consistency maintenance"),
    ("sensitivity", "Ablation — knob sensitivity"),
    ("online", "Extension — online arrivals"),
    ("availability", "Extension — availability under failures"),
    ("migration", "Extension — migration under drift"),
    ("reoptimize", "Extension — live re-optimization under drift"),
    ("bandwidth", "Extension — link budgets"),
    ("serve", "Extension — admission gateway latency under load"),
    ("serve_sustained", "Extension — sustained admission throughput"),
    ("faults", "Extension — dynamic fault injection"),
)


def build_report(results_dir: str | Path) -> str:
    """Concatenate persisted bench tables into one markdown report.

    Raises
    ------
    ValidationError
        If the directory has no ``.txt`` result files (run the benches
        first).
    """
    results_dir = Path(results_dir)
    available = {p.stem: p for p in sorted(results_dir.glob("*.txt"))}
    if not available:
        raise ValidationError(
            f"no bench results in {results_dir}; run "
            f"`pytest benchmarks/ --benchmark-only` first"
        )
    parts = [
        "# Regenerated results",
        "",
        "Produced by `python -m repro report` from the tables the benches",
        f"persisted under `{results_dir}/`.",
    ]
    seen: set[str] = set()
    for stem, title in RESULT_SECTIONS:
        if stem in available:
            seen.add(stem)
            parts += ["", f"## {title}", "", "```"]
            parts.append(available[stem].read_text().rstrip())
            parts.append("```")
    for stem in sorted(set(available) - seen):
        parts += ["", f"## {stem}", "", "```"]
        parts.append(available[stem].read_text().rstrip())
        parts.append("```")
    return "\n".join(parts) + "\n"
