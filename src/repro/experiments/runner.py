"""Run algorithms across repeated random topologies and aggregate metrics.

Every solution is re-verified against the full constraint set before its
metrics count, so a buggy algorithm fails loudly rather than winning a
figure.

Instances are deterministic in ``(seed, repeat)`` and immutable once
built, so one build serves every algorithm of a comparison (the paper's
paired design) and a small LRU keeps them across sweep calls.  With
``config.n_jobs > 1`` the repeat loop fans out to worker processes (see
:mod:`repro.experiments.parallel`); aggregation folds per-repeat metrics
in repeat order either way, so serial and parallel runs are
bit-identical.
"""

from __future__ import annotations

import math
import statistics
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.instance import ProblemInstance
from repro.core.metrics import evaluate_solution, verify_solution
from repro.core.registry import make_algorithm
from repro.experiments.config import ExperimentConfig
from repro.topology.twotier import TwoTierConfig, generate_two_tier
from repro.util.rng import derive_seed, spawn_rng
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_workload

__all__ = [
    "AggregateMetrics",
    "cached_instance",
    "compare_algorithms",
    "make_instance",
    "run_algorithm",
    "solve_one",
]


@dataclass(frozen=True)
class AggregateMetrics:
    """Mean ± stdev of the paper's metrics over the repeats.

    Attributes
    ----------
    algorithm:
        Registry name.
    volume_mean, volume_std:
        Admitted volume (GB).
    throughput_mean, throughput_std:
        System throughput.
    repeats:
        Sample count.
    """

    algorithm: str
    volume_mean: float
    volume_std: float
    throughput_mean: float
    throughput_std: float
    repeats: int


def make_instance(
    topology_config: TwoTierConfig,
    params: PaperDefaults,
    seed: int,
    repeat: int,
) -> ProblemInstance:
    """Build the problem instance for one experiment repeat.

    Topology and workload derive independent streams from
    ``(seed, repeat)``, so changing the workload parameters does not
    reshuffle the topology and vice versa.
    """
    repeat_seed = derive_seed(seed, f"repeat/{repeat}")
    topology = generate_two_tier(topology_config, seed=repeat_seed)
    return generate_workload(
        topology, spawn_rng(repeat_seed, "workload"), params
    )


#: Instances kept across calls; a fig3-size instance with its path cache
#: is a few MB, so a few dozen covers a whole sweep point comfortably.
_INSTANCE_CACHE_MAX = 48
_instance_cache: OrderedDict[tuple, ProblemInstance] = OrderedDict()


def cached_instance(
    topology_config: TwoTierConfig,
    params: PaperDefaults,
    seed: int,
    repeat: int,
) -> ProblemInstance:
    """LRU-cached :func:`make_instance`.

    Instances (and their lazily built path caches) are immutable, so a
    cached instance is safe to share across algorithms and callers.  The
    key uses the configs' dataclass reprs — both are frozen dataclasses,
    so the repr is a complete value description.
    """
    key = (repr(topology_config), repr(params), seed, repeat)
    instance = _instance_cache.get(key)
    if instance is None:
        instance = make_instance(topology_config, params, seed, repeat)
        _instance_cache[key] = instance
        while len(_instance_cache) > _INSTANCE_CACHE_MAX:
            _instance_cache.popitem(last=False)
    else:
        _instance_cache.move_to_end(key)
    return instance


def solve_one(instance: ProblemInstance, name: str) -> tuple[float, float]:
    """Solve + verify one algorithm on one instance.

    Returns ``(admitted_volume_gb, throughput)``.
    """
    solution = make_algorithm(name).solve(instance)
    verify_solution(instance, solution)
    metrics = evaluate_solution(instance, solution)
    return metrics.admitted_volume_gb, metrics.throughput


def _aggregate(
    name: str, volumes: list[float], throughputs: list[float]
) -> AggregateMetrics:
    return AggregateMetrics(
        algorithm=name,
        volume_mean=statistics.fmean(volumes),
        volume_std=statistics.stdev(volumes) if len(volumes) > 1 else 0.0,
        throughput_mean=statistics.fmean(throughputs),
        throughput_std=(
            statistics.stdev(throughputs) if len(throughputs) > 1 else 0.0
        ),
        repeats=len(volumes),
    )


def run_algorithm(
    name: str,
    config: ExperimentConfig,
    *,
    topology_config: TwoTierConfig | None = None,
    params: PaperDefaults | None = None,
) -> AggregateMetrics:
    """Average one algorithm's metrics over the configured repeats."""
    return compare_algorithms(
        [name], config, topology_config=topology_config, params=params
    )[name]


def compare_algorithms(
    names: list[str],
    config: ExperimentConfig,
    *,
    topology_config: TwoTierConfig | None = None,
    params: PaperDefaults | None = None,
) -> dict[str, AggregateMetrics]:
    """Aggregate several algorithms on the *same* instances.

    Instances are deterministic in ``(seed, repeat)``, so every algorithm
    sees identical topologies and workloads — the paper's paired design.
    Each ``(seed, repeat)`` instance is built exactly once and shared by
    all algorithms; ``config.n_jobs`` selects the in-process loop or the
    process-pool fan-out, with identical results.
    """
    topology_config = topology_config or config.topology
    params = params or config.params
    per_algo: dict[str, tuple[list[float], list[float]]] = {
        name: ([], []) for name in names
    }
    if config.n_jobs > 1:
        from repro.experiments.parallel import run_repeats

        per_algo = run_repeats(
            names,
            topology_config,
            params,
            config.seed,
            config.repeats,
            config.n_jobs,
        )
    else:
        for repeat in range(config.repeats):
            instance = cached_instance(
                topology_config, params, config.seed, repeat
            )
            for name in names:
                volume, throughput = solve_one(instance, name)
                per_algo[name][0].append(volume)
                per_algo[name][1].append(throughput)
    results = {
        name: _aggregate(name, volumes, throughputs)
        for name, (volumes, throughputs) in per_algo.items()
    }
    for m in results.values():
        if not math.isfinite(m.volume_mean):
            raise RuntimeError(f"non-finite metrics for {m.algorithm}")
    return results
