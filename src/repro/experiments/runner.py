"""Run algorithms across repeated random topologies and aggregate metrics.

Every solution is re-verified against the full constraint set before its
metrics count, so a buggy algorithm fails loudly rather than winning a
figure.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass

from repro.core.instance import ProblemInstance
from repro.core.metrics import evaluate_solution, verify_solution
from repro.core.registry import make_algorithm
from repro.experiments.config import ExperimentConfig
from repro.topology.twotier import TwoTierConfig, generate_two_tier
from repro.util.rng import derive_seed, spawn_rng
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_workload

__all__ = ["AggregateMetrics", "make_instance", "run_algorithm", "compare_algorithms"]


@dataclass(frozen=True)
class AggregateMetrics:
    """Mean ± stdev of the paper's metrics over the repeats.

    Attributes
    ----------
    algorithm:
        Registry name.
    volume_mean, volume_std:
        Admitted volume (GB).
    throughput_mean, throughput_std:
        System throughput.
    repeats:
        Sample count.
    """

    algorithm: str
    volume_mean: float
    volume_std: float
    throughput_mean: float
    throughput_std: float
    repeats: int


def make_instance(
    topology_config: TwoTierConfig,
    params: PaperDefaults,
    seed: int,
    repeat: int,
) -> ProblemInstance:
    """Build the problem instance for one experiment repeat.

    Topology and workload derive independent streams from
    ``(seed, repeat)``, so changing the workload parameters does not
    reshuffle the topology and vice versa.
    """
    repeat_seed = derive_seed(seed, f"repeat/{repeat}")
    topology = generate_two_tier(topology_config, seed=repeat_seed)
    return generate_workload(
        topology, spawn_rng(repeat_seed, "workload"), params
    )


def run_algorithm(
    name: str,
    config: ExperimentConfig,
    *,
    topology_config: TwoTierConfig | None = None,
    params: PaperDefaults | None = None,
) -> AggregateMetrics:
    """Average one algorithm's metrics over the configured repeats."""
    topology_config = topology_config or config.topology
    params = params or config.params
    volumes: list[float] = []
    throughputs: list[float] = []
    for repeat in range(config.repeats):
        instance = make_instance(topology_config, params, config.seed, repeat)
        algorithm = make_algorithm(name)
        solution = algorithm.solve(instance)
        verify_solution(instance, solution)
        metrics = evaluate_solution(instance, solution)
        volumes.append(metrics.admitted_volume_gb)
        throughputs.append(metrics.throughput)
    return AggregateMetrics(
        algorithm=name,
        volume_mean=statistics.fmean(volumes),
        volume_std=statistics.stdev(volumes) if len(volumes) > 1 else 0.0,
        throughput_mean=statistics.fmean(throughputs),
        throughput_std=(
            statistics.stdev(throughputs) if len(throughputs) > 1 else 0.0
        ),
        repeats=config.repeats,
    )


def compare_algorithms(
    names: list[str],
    config: ExperimentConfig,
    *,
    topology_config: TwoTierConfig | None = None,
    params: PaperDefaults | None = None,
) -> dict[str, AggregateMetrics]:
    """Aggregate several algorithms on the *same* instances.

    Instances are deterministic in ``(seed, repeat)``, so every algorithm
    sees identical topologies and workloads — the paper's paired design.
    """
    results = {
        name: run_algorithm(
            name, config, topology_config=topology_config, params=params
        )
        for name in names
    }
    for m in results.values():
        if not math.isfinite(m.volume_mean):
            raise RuntimeError(f"non-finite metrics for {m.algorithm}")
    return results
