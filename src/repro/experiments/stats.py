"""Statistical support for experiment comparisons.

The paper reports bare means over 15 topologies; a production harness
should say how confident those means are.  This module provides:

* :func:`mean_ci` — a Student-t confidence interval on a sample mean,
* :func:`paired_ratio_ci` — a bootstrap CI on the mean per-instance ratio
  between two algorithms run on *paired* instances (the experiment
  runner's design), which is the right way to state "Appro is X× Greedy",
* :func:`paired_test` — a paired t-test p-value for "algorithm A beats
  algorithm B" on the same instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError, check_fraction, check_positive

__all__ = ["ConfidenceInterval", "mean_ci", "paired_ratio_ci", "paired_test"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a two-sided confidence interval.

    Attributes
    ----------
    estimate:
        The point estimate (a mean or mean ratio).
    low, high:
        Interval bounds.
    confidence:
        Coverage level, e.g. 0.95.
    """

    estimate: float
    low: float
    high: float
    confidence: float

    def __post_init__(self) -> None:
        if not self.low <= self.estimate <= self.high:
            raise ValidationError(
                f"estimate {self.estimate} outside [{self.low}, {self.high}]"
            )

    @property
    def half_width(self) -> float:
        """Half the interval width."""
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.estimate:.3f} [{self.low:.3f}, {self.high:.3f}]"


def mean_ci(
    samples: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval on the mean of ``samples``.

    A single sample yields a degenerate interval at the point estimate.
    """
    check_fraction("confidence", confidence)
    if not samples:
        raise ValidationError("mean_ci needs at least one sample")
    arr = np.asarray(samples, dtype=float)
    mean = float(arr.mean())
    # Exact zero-variance check: ``np.allclose`` with its default rtol
    # would treat large-magnitude samples with real spread (e.g.
    # [1e6 - 5, 1e6, 1e6 + 5]) as constant and silently return a
    # zero-width interval.
    if arr.size == 1 or bool((arr == arr[0]).all()):
        return ConfidenceInterval(mean, mean, mean, confidence)
    sem = float(stats.sem(arr))
    half = float(stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1)) * sem
    return ConfidenceInterval(mean, mean - half, mean + half, confidence)


def paired_ratio_ci(
    numerator: Sequence[float],
    denominator: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap CI on the ratio of paired means ``mean(num)/mean(den)``.

    Instances are paired (same topology/workload per index), so both
    series are resampled with the *same* indices.  Zero-mean denominators
    in a resample are skipped (the ratio is unbounded there).
    """
    check_fraction("confidence", confidence)
    check_positive("resamples", resamples)
    if len(numerator) != len(denominator) or not numerator:
        raise ValidationError("paired series must be equal-length and non-empty")
    num = np.asarray(numerator, dtype=float)
    den = np.asarray(denominator, dtype=float)
    if den.mean() == 0.0:
        raise ValidationError("denominator mean is zero")
    point = float(num.mean() / den.mean())

    rng = spawn_rng(seed, "stats/bootstrap")
    n = len(num)
    ratios = []
    for _ in range(resamples):
        idx = rng.integers(0, n, size=n)
        d = den[idx].mean()
        if d != 0.0:
            ratios.append(num[idx].mean() / d)
    if not ratios:
        return ConfidenceInterval(point, point, point, confidence)
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(ratios, [tail, 1.0 - tail])
    # The bootstrap distribution may not contain the point estimate for
    # tiny samples; clamp to keep the interval well-formed.
    return ConfidenceInterval(
        point, min(float(low), point), max(float(high), point), confidence
    )


def paired_test(
    a: Sequence[float], b: Sequence[float]
) -> tuple[float, float]:
    """Paired t-test of ``a > b`` on paired instances.

    Returns ``(mean_difference, one_sided_p_value)``; a small p-value
    supports "A beats B".  Identical series return p = 0.5 (no evidence).
    """
    if len(a) != len(b) or not a:
        raise ValidationError("paired series must be equal-length and non-empty")
    diff = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    if np.allclose(diff, 0.0):
        return 0.0, 0.5
    result = stats.ttest_rel(a, b, alternative="greater")
    return float(diff.mean()), float(result.pvalue)
