"""Plain-text rendering of figure series and comparisons.

The benchmark harness prints these tables — the textual equivalent of the
paper's plots, one row per algorithm per panel.
"""

from __future__ import annotations

from repro.experiments.figures import FigureSeries
from repro.experiments.runner import AggregateMetrics

__all__ = ["render_figure", "render_comparison"]


def _panel(
    header: str,
    x_label: str,
    x_values: tuple,
    rows: dict[str, tuple[float, ...]],
    fmt: str,
) -> list[str]:
    name_w = max(len("algorithm"), *(len(a) for a in rows))
    col_w = max(8, *(len(f"{x}") for x in x_values))
    lines = [header]
    head = "algorithm".ljust(name_w) + " | " + " ".join(
        f"{x!s:>{col_w}}" for x in x_values
    )
    lines.append(head)
    lines.append("-" * len(head))
    for alg, series in rows.items():
        lines.append(
            alg.ljust(name_w)
            + " | "
            + " ".join(f"{v:>{col_w}{fmt}}" for v in series)
        )
    lines.append(f"(x-axis: {x_label})")
    return lines


def render_figure(series: FigureSeries) -> str:
    """Render both panels of a figure as an aligned text table."""
    lines = [f"=== {series.figure_id}: {series.title} ==="]
    lines += _panel(
        f"--- {series.figure_id}(a): volume of datasets demanded by admitted queries (GB) ---",
        series.x_label,
        series.x_values,
        dict(series.volume),
        ".1f",
    )
    lines.append("")
    lines += _panel(
        f"--- {series.figure_id}(b): system throughput ---",
        series.x_label,
        series.x_values,
        dict(series.throughput),
        ".3f",
    )
    return "\n".join(lines)


def render_comparison(results: dict[str, AggregateMetrics]) -> str:
    """Render one-point algorithm comparison (mean ± std over repeats)."""
    name_w = max(len("algorithm"), *(len(a) for a in results))
    lines = [
        "algorithm".ljust(name_w)
        + " |   volume(GB)      throughput    (repeats)"
    ]
    lines.append("-" * len(lines[0]))
    for alg, m in results.items():
        lines.append(
            alg.ljust(name_w)
            + f" | {m.volume_mean:8.1f}±{m.volume_std:<6.1f}"
            + f" {m.throughput_mean:6.3f}±{m.throughput_std:<6.3f}"
            + f" ({m.repeats})"
        )
    return "\n".join(lines)
