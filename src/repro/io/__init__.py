"""Persistence: save and load topologies, instances, solutions, traces.

Experiments become shareable artifacts: a problem instance round-trips
through JSON (human-diffable), usage traces through compressed ``.npz``
(columnar).  All loaders validate through the same constructors as
programmatic creation, so a corrupted file fails loudly rather than
producing an invalid instance.
"""

from repro.io.serialize import (
    instance_to_dict,
    instance_from_dict,
    save_instance,
    load_instance,
    solution_to_dict,
    solution_from_dict,
    save_solution,
    load_solution,
    topology_to_dict,
    topology_from_dict,
)
from repro.io.traceio import save_trace, load_trace

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "solution_to_dict",
    "solution_from_dict",
    "save_solution",
    "load_solution",
    "topology_to_dict",
    "topology_from_dict",
    "save_trace",
    "load_trace",
]
