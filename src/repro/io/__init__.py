"""Persistence: save and load topologies, instances, solutions, traces.

Experiments become shareable artifacts: a problem instance round-trips
through JSON (human-diffable), usage traces through compressed ``.npz``
(columnar), and live :class:`~repro.cluster.state.ClusterState` (node
ledgers, replicas, liveness) through the same JSON layer — the serving
gateway's checkpoints are `state` dumps.  All loaders validate through
the same constructors as programmatic creation, so a corrupted file
fails loudly rather than producing an invalid instance, and all savers
write atomically (temp file + ``os.replace``) so a crash mid-write never
leaves a truncated file.
"""

from repro.io.serialize import (
    atomic_write_text,
    instance_to_dict,
    instance_from_dict,
    save_instance,
    load_instance,
    query_to_dict,
    query_from_dict,
    dataset_to_dict,
    dataset_from_dict,
    solution_to_dict,
    solution_from_dict,
    save_solution,
    load_solution,
    state_to_dict,
    state_from_dict,
    save_state,
    load_state,
    topology_to_dict,
    topology_from_dict,
)
from repro.io.traceio import save_trace, load_trace

__all__ = [
    "atomic_write_text",
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "query_to_dict",
    "query_from_dict",
    "dataset_to_dict",
    "dataset_from_dict",
    "solution_to_dict",
    "solution_from_dict",
    "save_solution",
    "load_solution",
    "state_to_dict",
    "state_from_dict",
    "save_state",
    "load_state",
    "topology_to_dict",
    "topology_from_dict",
    "save_trace",
    "load_trace",
]
