"""JSON serialisation of topologies, instances, solutions and cluster state.

The wire format is versioned (``format`` key) and round-trips through the
library's validating constructors — loading re-runs every invariant check
construction does.

All ``save_*`` helpers write **atomically**: the payload goes to a
temporary file in the destination directory first and is then moved over
the target with :func:`os.replace`, so a crash mid-write can never leave
a truncated JSON file behind.  The serving gateway's checkpoints
(:mod:`repro.serve.gateway`) reuse the same :func:`atomic_write_text`
helper.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable

from repro.cluster.state import ClusterState
from repro.core.instance import ProblemInstance
from repro.core.types import Assignment, Dataset, PlacementSolution, Query
from repro.topology.nodes import NodeKind, NodeSpec
from repro.topology.twotier import EdgeCloudTopology
from repro.util.validation import ValidationError

__all__ = [
    "atomic_write_text",
    "topology_to_dict",
    "topology_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "solution_to_dict",
    "solution_from_dict",
    "save_solution",
    "load_solution",
    "query_to_dict",
    "query_from_dict",
    "dataset_to_dict",
    "dataset_from_dict",
    "state_to_dict",
    "state_from_dict",
    "save_state",
    "load_state",
]

_FORMAT_TOPOLOGY = "repro/topology/v1"
_FORMAT_INSTANCE = "repro/instance/v1"
_FORMAT_SOLUTION = "repro/solution/v1"
_FORMAT_STATE = "repro/state/v1"


def _require_format(payload: dict, expected: str) -> None:
    got = payload.get("format")
    if got != expected:
        raise ValidationError(f"expected format {expected!r}, got {got!r}")


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically.

    The text lands in a temporary file in the same directory and is moved
    over ``path`` with :func:`os.replace` (atomic on POSIX and Windows
    within one filesystem), so readers either see the old file or the
    complete new one — never a truncated write.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


# -- topology ---------------------------------------------------------------

def topology_to_dict(topology: EdgeCloudTopology) -> dict[str, Any]:
    """Serialise a topology to plain JSON-compatible data."""
    return {
        "format": _FORMAT_TOPOLOGY,
        "nodes": [
            {
                "node_id": s.node_id,
                "kind": s.kind.value,
                "name": s.name,
                "capacity_ghz": s.capacity_ghz,
                "proc_delay_s_per_gb": s.proc_delay_s_per_gb,
                "x": s.x,
                "y": s.y,
                "region": s.region,
            }
            for s in topology.nodes
        ],
        "links": [
            {"u": u, "v": v, "delay": d}
            for (u, v), d in sorted(topology.link_delays.items())
        ],
    }


def topology_from_dict(payload: dict[str, Any]) -> EdgeCloudTopology:
    """Reconstruct a topology; validation happens in the constructors."""
    _require_format(payload, _FORMAT_TOPOLOGY)
    specs = [
        NodeSpec(
            node_id=n["node_id"],
            kind=NodeKind(n["kind"]),
            name=n["name"],
            capacity_ghz=n["capacity_ghz"],
            proc_delay_s_per_gb=n["proc_delay_s_per_gb"],
            x=n["x"],
            y=n["y"],
            region=n.get("region", ""),
        )
        for n in payload["nodes"]
    ]
    delays = {(l["u"], l["v"]): l["delay"] for l in payload["links"]}
    return EdgeCloudTopology(specs, delays)


# -- queries and datasets -----------------------------------------------------

def query_to_dict(query: Query) -> dict[str, Any]:
    """Serialise one query (also the serving protocol's wire form)."""
    return {
        "query_id": query.query_id,
        "home_node": query.home_node,
        "demanded": list(query.demanded),
        "selectivity": list(query.selectivity),
        "compute_rate": query.compute_rate,
        "deadline_s": query.deadline_s,
        "name": query.name,
    }


def query_from_dict(payload: dict[str, Any]) -> Query:
    """Reconstruct one query with full validation."""
    return Query(
        query_id=payload["query_id"],
        home_node=payload["home_node"],
        demanded=tuple(payload["demanded"]),
        selectivity=tuple(payload["selectivity"]),
        compute_rate=payload["compute_rate"],
        deadline_s=payload["deadline_s"],
        name=payload.get("name", ""),
    )


def dataset_to_dict(dataset: Dataset) -> dict[str, Any]:
    """Serialise one dataset."""
    return {
        "dataset_id": dataset.dataset_id,
        "volume_gb": dataset.volume_gb,
        "origin_node": dataset.origin_node,
        "name": dataset.name,
    }


def dataset_from_dict(payload: dict[str, Any]) -> Dataset:
    """Reconstruct one dataset with full validation."""
    return Dataset(
        dataset_id=payload["dataset_id"],
        volume_gb=payload["volume_gb"],
        origin_node=payload["origin_node"],
        name=payload.get("name", ""),
    )


# -- instance ----------------------------------------------------------------

def instance_to_dict(instance: ProblemInstance) -> dict[str, Any]:
    """Serialise a problem instance (topology embedded)."""
    return {
        "format": _FORMAT_INSTANCE,
        "topology": topology_to_dict(instance.topology),
        "max_replicas": instance.max_replicas,
        "datasets": [dataset_to_dict(d) for d in instance.datasets.values()],
        "queries": [query_to_dict(q) for q in instance.queries],
    }


def instance_from_dict(payload: dict[str, Any]) -> ProblemInstance:
    """Reconstruct a problem instance with full validation."""
    _require_format(payload, _FORMAT_INSTANCE)
    topology = topology_from_dict(payload["topology"])
    datasets = {
        d["dataset_id"]: dataset_from_dict(d) for d in payload["datasets"]
    }
    queries = [
        query_from_dict(q)
        for q in sorted(payload["queries"], key=lambda q: q["query_id"])
    ]
    return ProblemInstance(
        topology=topology,
        datasets=datasets,
        queries=queries,
        max_replicas=payload["max_replicas"],
    )


def save_instance(instance: ProblemInstance, path: str | Path) -> None:
    """Write an instance to a JSON file (atomically)."""
    atomic_write_text(path, json.dumps(instance_to_dict(instance), indent=1))


def load_instance(path: str | Path) -> ProblemInstance:
    """Read an instance from a JSON file."""
    return instance_from_dict(json.loads(Path(path).read_text()))


# -- solution -----------------------------------------------------------------

def solution_to_dict(solution: PlacementSolution) -> dict[str, Any]:
    """Serialise a placement solution."""
    return {
        "format": _FORMAT_SOLUTION,
        "algorithm": solution.algorithm,
        "replicas": {
            str(d_id): list(nodes) for d_id, nodes in solution.replicas.items()
        },
        "assignments": [
            {
                "query_id": a.query_id,
                "dataset_id": a.dataset_id,
                "node": a.node,
                "latency_s": a.latency_s,
                "compute_ghz": a.compute_ghz,
            }
            for a in solution.assignments.values()
        ],
        "admitted": sorted(solution.admitted),
        "rejected": sorted(solution.rejected),
        "extras": dict(solution.extras),
    }


def solution_from_dict(payload: dict[str, Any]) -> PlacementSolution:
    """Reconstruct a placement solution."""
    _require_format(payload, _FORMAT_SOLUTION)
    assignments = {
        (a["query_id"], a["dataset_id"]): Assignment(
            query_id=a["query_id"],
            dataset_id=a["dataset_id"],
            node=a["node"],
            latency_s=a["latency_s"],
            compute_ghz=a["compute_ghz"],
        )
        for a in payload["assignments"]
    }
    return PlacementSolution(
        algorithm=payload["algorithm"],
        replicas={
            int(d_id): tuple(nodes)
            for d_id, nodes in payload["replicas"].items()
        },
        assignments=assignments,
        admitted=frozenset(payload["admitted"]),
        rejected=frozenset(payload["rejected"]),
        extras=payload.get("extras", {}),
    )


def save_solution(solution: PlacementSolution, path: str | Path) -> None:
    """Write a solution to a JSON file (atomically)."""
    atomic_write_text(path, json.dumps(solution_to_dict(solution), indent=1))


def load_solution(path: str | Path) -> PlacementSolution:
    """Read a solution from a JSON file."""
    return solution_from_dict(json.loads(Path(path).read_text()))


# -- cluster state ------------------------------------------------------------

def state_to_dict(
    state: ClusterState, *, include_instance: bool = True
) -> dict[str, Any]:
    """Serialise live :class:`~repro.cluster.state.ClusterState`.

    Captures everything the state owns beyond the (immutable) instance:
    per-node reservations and allocation ledgers (in insertion order, so a
    restore replays them identically), replica locations, and the
    liveness layer (nodes currently down).  Origin copies are implied by
    the instance's datasets; non-origin replicas are listed explicitly.

    Allocation tags must be ``(query_id, dataset_id)`` integer pairs —
    the only tags :meth:`ClusterState.serve` creates.  Exotic tags placed
    by hand raise :class:`ValidationError` rather than serialising
    unloadably.
    """
    nodes = []
    for v, ledger in state.nodes.items():
        amounts = ledger.snapshot()
        allocations = []
        for tag in ledger.allocation_tags():
            if not (
                isinstance(tag, tuple)
                and len(tag) == 2
                and all(isinstance(part, int) for part in tag)
            ):
                raise ValidationError(
                    f"node {v}: allocation tag {tag!r} is not a "
                    f"(query_id, dataset_id) pair"
                )
            allocations.append(
                {
                    "query_id": tag[0],
                    "dataset_id": tag[1],
                    "ghz": amounts[tag],
                }
            )
        nodes.append(
            {
                "node": v,
                "reserved_ghz": ledger.reserved_ghz,
                "allocations": allocations,
            }
        )
    payload: dict[str, Any] = {
        "format": _FORMAT_STATE,
        "nodes": nodes,
        "replicas": {
            str(d_id): list(locs)
            for d_id, locs in sorted(state.replicas.replica_map().items())
        },
        "down": sorted(state.down_nodes()),
    }
    if include_instance:
        payload["instance"] = instance_to_dict(state.instance)
    return payload


def state_from_dict(
    payload: dict[str, Any],
    instance: ProblemInstance | None = None,
    *,
    shard_nodes: Iterable[int] | None = None,
) -> ClusterState:
    """Reconstruct a :class:`~repro.cluster.state.ClusterState`.

    Parameters
    ----------
    payload:
        A :func:`state_to_dict` dump.
    instance:
        Reuse an already-built instance (its cached arrays and path
        oracle included) instead of rebuilding from the embedded copy.
        Required when the dump was written with ``include_instance=False``.
    shard_nodes:
        Rebuild the state shard-scoped to this node subset (the dump
        must have been written by an equally-scoped state: entries for
        out-of-shard nodes fail validation as unknown placement nodes).

    Replays reservations, allocation ledgers (insertion order preserved),
    replica placements and the down set through the same mutators live
    operation uses, so the result is *bit-identical* to the serialised
    state: equal available/utilisation arrays, equal replica maps, equal
    allocation tags in equal order.
    """
    _require_format(payload, _FORMAT_STATE)
    if instance is None:
        embedded = payload.get("instance")
        if embedded is None:
            raise ValidationError(
                "state dump carries no embedded instance; pass one explicitly"
            )
        instance = instance_from_dict(embedded)
    state = ClusterState(instance, shard_nodes=shard_nodes)
    for entry in payload["nodes"]:
        v = entry["node"]
        if v not in state.nodes:
            raise ValidationError(f"state dump names unknown placement node {v}")
        ledger = state.nodes[v]
        reserved = float(entry["reserved_ghz"])
        if not 0.0 <= reserved <= ledger.capacity_ghz:
            raise ValidationError(
                f"node {v}: reserved {reserved} outside [0, capacity]"
            )
        ledger.reserved_ghz = reserved
        for alloc in entry["allocations"]:
            ledger.allocate(
                (alloc["query_id"], alloc["dataset_id"]), alloc["ghz"]
            )
    for d_id_str, locs in payload["replicas"].items():
        d_id = int(d_id_str)
        try:
            origin = state.replicas.origin(d_id)
        except KeyError:
            raise ValidationError(
                f"state dump names unknown dataset {d_id}"
            ) from None
        for node in locs:
            if node != origin:
                state.replicas.place(d_id, node)
    for node in payload["down"]:
        state.mark_down(node)
    return state


def save_state(state: ClusterState, path: str | Path) -> None:
    """Write a cluster state to a JSON file (atomically)."""
    atomic_write_text(path, json.dumps(state_to_dict(state), indent=1))


def load_state(
    path: str | Path, instance: ProblemInstance | None = None
) -> ClusterState:
    """Read a cluster state from a JSON file."""
    return state_from_dict(json.loads(Path(path).read_text()), instance)
