"""JSON serialisation of topologies, instances and solutions.

The wire format is versioned (``format`` key) and round-trips through the
library's validating constructors — loading re-runs every invariant check
construction does.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.instance import ProblemInstance
from repro.core.types import Assignment, Dataset, PlacementSolution, Query
from repro.topology.nodes import NodeKind, NodeSpec
from repro.topology.twotier import EdgeCloudTopology
from repro.util.validation import ValidationError

__all__ = [
    "topology_to_dict",
    "topology_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "solution_to_dict",
    "solution_from_dict",
    "save_solution",
    "load_solution",
]

_FORMAT_TOPOLOGY = "repro/topology/v1"
_FORMAT_INSTANCE = "repro/instance/v1"
_FORMAT_SOLUTION = "repro/solution/v1"


def _require_format(payload: dict, expected: str) -> None:
    got = payload.get("format")
    if got != expected:
        raise ValidationError(f"expected format {expected!r}, got {got!r}")


# -- topology ---------------------------------------------------------------

def topology_to_dict(topology: EdgeCloudTopology) -> dict[str, Any]:
    """Serialise a topology to plain JSON-compatible data."""
    return {
        "format": _FORMAT_TOPOLOGY,
        "nodes": [
            {
                "node_id": s.node_id,
                "kind": s.kind.value,
                "name": s.name,
                "capacity_ghz": s.capacity_ghz,
                "proc_delay_s_per_gb": s.proc_delay_s_per_gb,
                "x": s.x,
                "y": s.y,
                "region": s.region,
            }
            for s in topology.nodes
        ],
        "links": [
            {"u": u, "v": v, "delay": d}
            for (u, v), d in sorted(topology.link_delays.items())
        ],
    }


def topology_from_dict(payload: dict[str, Any]) -> EdgeCloudTopology:
    """Reconstruct a topology; validation happens in the constructors."""
    _require_format(payload, _FORMAT_TOPOLOGY)
    specs = [
        NodeSpec(
            node_id=n["node_id"],
            kind=NodeKind(n["kind"]),
            name=n["name"],
            capacity_ghz=n["capacity_ghz"],
            proc_delay_s_per_gb=n["proc_delay_s_per_gb"],
            x=n["x"],
            y=n["y"],
            region=n.get("region", ""),
        )
        for n in payload["nodes"]
    ]
    delays = {(l["u"], l["v"]): l["delay"] for l in payload["links"]}
    return EdgeCloudTopology(specs, delays)


# -- instance ----------------------------------------------------------------

def instance_to_dict(instance: ProblemInstance) -> dict[str, Any]:
    """Serialise a problem instance (topology embedded)."""
    return {
        "format": _FORMAT_INSTANCE,
        "topology": topology_to_dict(instance.topology),
        "max_replicas": instance.max_replicas,
        "datasets": [
            {
                "dataset_id": d.dataset_id,
                "volume_gb": d.volume_gb,
                "origin_node": d.origin_node,
                "name": d.name,
            }
            for d in instance.datasets.values()
        ],
        "queries": [
            {
                "query_id": q.query_id,
                "home_node": q.home_node,
                "demanded": list(q.demanded),
                "selectivity": list(q.selectivity),
                "compute_rate": q.compute_rate,
                "deadline_s": q.deadline_s,
                "name": q.name,
            }
            for q in instance.queries
        ],
    }


def instance_from_dict(payload: dict[str, Any]) -> ProblemInstance:
    """Reconstruct a problem instance with full validation."""
    _require_format(payload, _FORMAT_INSTANCE)
    topology = topology_from_dict(payload["topology"])
    datasets = {
        d["dataset_id"]: Dataset(
            dataset_id=d["dataset_id"],
            volume_gb=d["volume_gb"],
            origin_node=d["origin_node"],
            name=d.get("name", ""),
        )
        for d in payload["datasets"]
    }
    queries = [
        Query(
            query_id=q["query_id"],
            home_node=q["home_node"],
            demanded=tuple(q["demanded"]),
            selectivity=tuple(q["selectivity"]),
            compute_rate=q["compute_rate"],
            deadline_s=q["deadline_s"],
            name=q.get("name", ""),
        )
        for q in sorted(payload["queries"], key=lambda q: q["query_id"])
    ]
    return ProblemInstance(
        topology=topology,
        datasets=datasets,
        queries=queries,
        max_replicas=payload["max_replicas"],
    )


def save_instance(instance: ProblemInstance, path: str | Path) -> None:
    """Write an instance to a JSON file."""
    Path(path).write_text(json.dumps(instance_to_dict(instance), indent=1))


def load_instance(path: str | Path) -> ProblemInstance:
    """Read an instance from a JSON file."""
    return instance_from_dict(json.loads(Path(path).read_text()))


# -- solution -----------------------------------------------------------------

def solution_to_dict(solution: PlacementSolution) -> dict[str, Any]:
    """Serialise a placement solution."""
    return {
        "format": _FORMAT_SOLUTION,
        "algorithm": solution.algorithm,
        "replicas": {
            str(d_id): list(nodes) for d_id, nodes in solution.replicas.items()
        },
        "assignments": [
            {
                "query_id": a.query_id,
                "dataset_id": a.dataset_id,
                "node": a.node,
                "latency_s": a.latency_s,
                "compute_ghz": a.compute_ghz,
            }
            for a in solution.assignments.values()
        ],
        "admitted": sorted(solution.admitted),
        "rejected": sorted(solution.rejected),
        "extras": dict(solution.extras),
    }


def solution_from_dict(payload: dict[str, Any]) -> PlacementSolution:
    """Reconstruct a placement solution."""
    _require_format(payload, _FORMAT_SOLUTION)
    assignments = {
        (a["query_id"], a["dataset_id"]): Assignment(
            query_id=a["query_id"],
            dataset_id=a["dataset_id"],
            node=a["node"],
            latency_s=a["latency_s"],
            compute_ghz=a["compute_ghz"],
        )
        for a in payload["assignments"]
    }
    return PlacementSolution(
        algorithm=payload["algorithm"],
        replicas={
            int(d_id): tuple(nodes)
            for d_id, nodes in payload["replicas"].items()
        },
        assignments=assignments,
        admitted=frozenset(payload["admitted"]),
        rejected=frozenset(payload["rejected"]),
        extras=payload.get("extras", {}),
    )


def save_solution(solution: PlacementSolution, path: str | Path) -> None:
    """Write a solution to a JSON file."""
    Path(path).write_text(json.dumps(solution_to_dict(solution), indent=1))


def load_solution(path: str | Path) -> PlacementSolution:
    """Read a solution from a JSON file."""
    return solution_from_dict(json.loads(Path(path).read_text()))
