"""Columnar persistence for usage traces (compressed ``.npz``)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.util.validation import ValidationError
from repro.workload.trace import UsageTrace

__all__ = ["save_trace", "load_trace"]

_FORMAT = "repro/trace/v1"


def save_trace(trace: UsageTrace, path: str | Path) -> None:
    """Write a usage trace to a compressed ``.npz`` file."""
    np.savez_compressed(
        Path(path),
        format=np.array(_FORMAT),
        user=trace.user,
        app=trace.app,
        timestamp_s=trace.timestamp_s,
        duration_s=trace.duration_s,
        nbytes=trace.nbytes,
    )


def load_trace(path: str | Path) -> UsageTrace:
    """Read a usage trace; re-validates column alignment on construction."""
    with np.load(Path(path)) as data:
        if str(data["format"]) != _FORMAT:
            raise ValidationError(
                f"expected format {_FORMAT!r}, got {data['format']!r}"
            )
        return UsageTrace(
            user=data["user"],
            app=data["app"],
            timestamp_s=data["timestamp_s"],
            duration_s=data["duration_s"],
            nbytes=data["nbytes"],
        )
