"""Minimum-delay routing over the edge cloud.

When a query assigned to node ``v`` ships intermediate results to its home
location ``h``, the transfer follows the path with minimum total
per-unit-data delay, ``dt(p(v, h)) = Σ_{e ∈ p} dt(e)`` (§3.2: "via a
shortest path whose transmission delay is the minimum one").

:class:`repro.network.paths.PathCache` precomputes all-pairs minimum delays
with a vectorised Dijkstra (``scipy.sparse.csgraph``) so algorithm inner
loops are pure array lookups.

:mod:`repro.network.dynamics` makes the link table itself dynamic: seeded
degrade/sever/restore schedules (including correlated partitions) drive a
:class:`~repro.network.dynamics.LinkState` ledger whose effective delays
the :class:`~repro.network.paths.PathCache` recomputes under an epoch
stamp, so every downstream latency cache invalidates by generation.
"""

from repro.network.dynamics import (
    LinkEvent,
    LinkFaultConfig,
    LinkState,
    NetworkDynamics,
    NetworkReport,
    build_link_schedule,
)
from repro.network.paths import PathCache, all_pairs_min_delay, min_delay_tables
from repro.network.routing import extract_path, path_delay

__all__ = [
    "LinkEvent",
    "LinkFaultConfig",
    "LinkState",
    "NetworkDynamics",
    "NetworkReport",
    "PathCache",
    "all_pairs_min_delay",
    "build_link_schedule",
    "extract_path",
    "min_delay_tables",
    "path_delay",
]
