"""Minimum-delay routing over the edge cloud.

When a query assigned to node ``v`` ships intermediate results to its home
location ``h``, the transfer follows the path with minimum total
per-unit-data delay, ``dt(p(v, h)) = Σ_{e ∈ p} dt(e)`` (§3.2: "via a
shortest path whose transmission delay is the minimum one").

:class:`repro.network.paths.PathCache` precomputes all-pairs minimum delays
with a vectorised Dijkstra (``scipy.sparse.csgraph``) so algorithm inner
loops are pure array lookups.
"""

from repro.network.paths import PathCache, all_pairs_min_delay
from repro.network.routing import extract_path, path_delay

__all__ = ["PathCache", "all_pairs_min_delay", "extract_path", "path_delay"]
