"""Dynamic network layer: link degradation, severance, and partitions.

Every other subsystem treats pair latencies as frozen at instance-build
time; this module makes the network a first-class *dynamic* entity, the
link-level twin of the PR 4 node-fault layer:

* :func:`build_link_schedule` — a pure function from
  ``(topology, horizon, config)`` to a link-event sequence.  Events are
  drawn from a seeded renewal process and come in three kinds: **degrade**
  (the link's per-unit-data delay is multiplied by an inflation factor),
  **sever** (the link drops out of the graph entirely), and **restore**
  (the link returns to its base delay).  A configurable fraction of sever
  draws escalates to a correlated **partition**: every healthy link
  incident to a victim node is severed at the same instant and restored
  together, cutting that region off.
* :class:`LinkState` — the per-link health ledger (mirroring
  :class:`~repro.cluster.state.ClusterState`'s node-liveness layer):
  which links are degraded by how much, which are severed, and the
  *effective* link-delay table the path layer should see.
* :class:`NetworkDynamics` — wires a schedule into a
  :class:`~repro.sim.engine.Simulator`, applies each event to the
  :class:`LinkState`, and triggers the epoch-stamped
  :meth:`~repro.network.paths.PathCache.recompute` so the admission
  kernel, ``pair_latency_vector``, the screening statics, and the front
  router all observe updated delays through the cache generation.

Parity contract: a session with no dynamics armed never calls
``recompute``, so the path-cache generation stays 0 and every downstream
consumer takes its pre-dynamics fast path — fault-free runs are
bit-identical to the pre-dynamics code (pinned by the golden-parity
suites).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.obs import get_registry
from repro.topology.twotier import EdgeCloudTopology
from repro.util.rng import spawn_rng
from repro.util.validation import (
    ValidationError,
    check_fraction,
    check_non_negative,
    check_positive,
)

if TYPE_CHECKING:  # avoid network → core import cycles at runtime
    from repro.network.paths import PathCache
    from repro.sim.engine import Simulator

__all__ = [
    "LinkEvent",
    "LinkFaultConfig",
    "LinkState",
    "NetworkDynamics",
    "NetworkReport",
    "build_link_schedule",
]

Link = tuple[int, int]


def _norm(u: int, v: int) -> Link:
    """Normalised link key (the topology's ``u < v`` convention)."""
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class LinkFaultConfig:
    """Link-dynamics parameters for an online session or gateway daemon.

    Attributes
    ----------
    mean_time_to_event_s:
        Mean gap of the network-wide link-event renewal process
        (exponential).  Each event picks a victim uniformly among the
        currently-healthy links.
    mean_repair_s:
        Mean time a link stays degraded/severed (exponential).
    degrade_fraction:
        Fraction of event draws that degrade (the rest sever).  ``1.0``
        means delays inflate but the graph never loses edges; ``0.0``
        makes every event a severance.
    inflation:
        Delay multiplier applied to a degraded link (> 1).
    partition_prob:
        Probability that a sever draw escalates to a correlated
        partition: all healthy links incident to a victim node are cut
        at once and restored together.
    seed:
        Schedule seed; the entire link trace is a pure function of
        ``(topology links, horizon, this config)``.
    max_events:
        Cap on fault events injected (``None`` = unlimited within the
        horizon); restores do not count against it.
    min_up_links:
        Draws that would leave fewer than this many links healthy are
        skipped (the draw still consumes its gap, keeping later events
        identical).
    """

    mean_time_to_event_s: float = 5.0
    mean_repair_s: float = 1.0
    degrade_fraction: float = 0.5
    inflation: float = 4.0
    partition_prob: float = 0.0
    seed: int = 0
    max_events: int | None = None
    min_up_links: int = 1

    def __post_init__(self) -> None:
        check_positive("mean_time_to_event_s", self.mean_time_to_event_s)
        check_positive("mean_repair_s", self.mean_repair_s)
        check_fraction(
            "degrade_fraction", self.degrade_fraction, inclusive_low=True
        )
        if self.inflation <= 1.0:
            raise ValidationError(
                f"inflation must be > 1, got {self.inflation!r}"
            )
        check_fraction("partition_prob", self.partition_prob, inclusive_low=True)
        if self.max_events is not None and self.max_events < 0:
            raise ValidationError(
                f"max_events must be >= 0 or None, got {self.max_events}"
            )
        if self.min_up_links < 1:
            raise ValidationError(
                f"min_up_links must be >= 1, got {self.min_up_links}"
            )


@dataclass(frozen=True)
class LinkEvent:
    """One scheduled link transition.

    ``kind`` is ``"degrade"``, ``"sever"``, or ``"restore"``; events sort
    by ``(time, kind, link)``, so a degrade precedes a restore at the
    same instant.  ``correlated`` marks severs (and their restores) born
    from a partition event.
    """

    time: float
    kind: str
    link: Link
    correlated: bool = False


def build_link_schedule(
    topology: EdgeCloudTopology, horizon: float, config: LinkFaultConfig
) -> tuple[LinkEvent, ...]:
    """Draw the link-event schedule for ``topology`` over ``[0, horizon)``.

    Events arrive as an exponential renewal process with mean
    ``mean_time_to_event_s``.  Each draw first picks its kind (degrade
    vs sever vs partition), then a victim uniformly among the links
    healthy at that instant, then an exponential repair time; every
    fault is paired with its restore (which may land beyond the
    horizon).  A partition picks a victim *node* uniformly among nodes
    with a healthy incident link and cuts all of them with one shared
    repair draw.  Pure and deterministic: the same arguments always
    return the identical schedule.
    """
    check_non_negative("horizon", horizon)
    rng = spawn_rng(config.seed, "netfaults/schedule")
    links = tuple(sorted(topology.link_delays))
    healthy = set(links)
    pending: list[tuple[float, Link]] = []  # (restore time, link)
    events: list[LinkEvent] = []
    fired = 0
    t = 0.0
    while config.max_events is None or fired < config.max_events:
        t += float(rng.exponential(config.mean_time_to_event_s))
        if t >= horizon:
            break
        while pending and pending[0][0] <= t:
            _, back = heapq.heappop(pending)
            healthy.add(back)
        if len(healthy) <= config.min_up_links:
            continue  # too degraded to fault another link; skip this draw
        kind_draw = float(rng.random())
        degrade = kind_draw < config.degrade_fraction
        partition = (
            not degrade and float(rng.random()) < config.partition_prob
        )
        ordered = sorted(healthy)
        if partition:
            anchors = sorted({v for link in ordered for v in link})
            victim_node = anchors[int(rng.integers(0, len(anchors)))]
            cut = [link for link in ordered if victim_node in link]
            if len(healthy) - len(cut) < config.min_up_links:
                continue  # cutting the region would empty the graph
            repair = float(rng.exponential(config.mean_repair_s))
            for link in cut:
                events.append(LinkEvent(t, "sever", link, correlated=True))
                events.append(
                    LinkEvent(t + repair, "restore", link, correlated=True)
                )
                healthy.remove(link)
                heapq.heappush(pending, (t + repair, link))
        else:
            victim = ordered[int(rng.integers(0, len(ordered)))]
            repair = float(rng.exponential(config.mean_repair_s))
            kind = "degrade" if degrade else "sever"
            events.append(LinkEvent(t, kind, victim))
            events.append(LinkEvent(t + repair, "restore", victim))
            healthy.remove(victim)
            heapq.heappush(pending, (t + repair, victim))
        fired += 1
    return tuple(sorted(events, key=lambda e: (e.time, e.kind, e.link)))


class LinkState:
    """Per-link health ledger over an immutable topology.

    Tracks which links are currently degraded (and by what factor) or
    severed, and derives the *effective* link-delay table — severed
    links absent, degraded links inflated — that the path layer
    recomputes from.  The base topology object is never mutated.
    """

    def __init__(self, topology: EdgeCloudTopology) -> None:
        self._topology = topology
        self._base: dict[Link, float] = topology.link_delays
        self._inflation: dict[Link, float] = {}
        self._severed: set[Link] = set()

    @property
    def topology(self) -> EdgeCloudTopology:
        """The topology whose links this ledger tracks."""
        return self._topology

    @property
    def num_links(self) -> int:
        """Total links in the base topology."""
        return len(self._base)

    @property
    def active_faults(self) -> int:
        """Links currently degraded or severed (0 = pristine network)."""
        return len(self._inflation) + len(self._severed)

    def degrade(self, link: Link, inflation: float) -> None:
        """Inflate ``link``'s delay by ``inflation`` (must be healthy)."""
        key = _norm(*link)
        if key not in self._base:
            raise KeyError(f"unknown link {key}")
        self._severed.discard(key)
        self._inflation[key] = float(inflation)

    def sever(self, link: Link) -> None:
        """Cut ``link`` out of the effective graph."""
        key = _norm(*link)
        if key not in self._base:
            raise KeyError(f"unknown link {key}")
        self._inflation.pop(key, None)
        self._severed.add(key)

    def restore(self, link: Link) -> None:
        """Return ``link`` to its base delay (idempotent)."""
        key = _norm(*link)
        self._inflation.pop(key, None)
        self._severed.discard(key)

    def restore_all(self) -> None:
        """Clear every fault; the effective table equals the base table."""
        self._inflation.clear()
        self._severed.clear()

    def is_severed(self, u: int, v: int) -> bool:
        """Whether link ``(u, v)`` is currently severed."""
        return _norm(u, v) in self._severed

    def severed_links(self) -> frozenset[Link]:
        """The currently-severed link set."""
        return frozenset(self._severed)

    def inflation_of(self, u: int, v: int) -> float:
        """Current delay multiplier of link ``(u, v)`` (1.0 = healthy)."""
        return self._inflation.get(_norm(u, v), 1.0)

    def link_availability(self) -> float:
        """Fraction of base links not severed (degraded links count as up)."""
        if not self._base:
            return 1.0
        return 1.0 - len(self._severed) / len(self._base)

    def effective_delays(self) -> dict[Link, float]:
        """Overlay of the base table: severed absent, degraded inflated."""
        out: dict[Link, float] = {}
        for key, delay in self._base.items():
            if key in self._severed:
                continue
            factor = self._inflation.get(key)
            out[key] = delay if factor is None else delay * factor
        return out


@dataclass(frozen=True)
class NetworkReport:
    """Aggregate link-dynamics outcome of one online session.

    Attributes
    ----------
    schedule:
        The injected link events, in firing order.
    degrades, severs, restores:
        Transition counts actually fired.
    partitions:
        Correlated partition groups fired (each may sever many links).
    recomputes:
        Path-cache epoch bumps triggered (one per applied event).
    availability_curve:
        Step function ``(time, up_fraction)`` of the fraction of links
        not severed, starting at ``(0.0, 1.0)``.
    time_weighted_link_availability:
        Integral of the curve over the session divided by its duration
        (1.0 when no time elapses).
    queries_rerouted:
        Admitted queries whose serving path survived a sever only via
        recomputation (their pair latency changed but stayed feasible).
    queries_interrupted:
        Admitted queries cut off by a sever (their serving node became
        unreachable from home, or the inflated path burst the deadline)
        that could not be re-placed.
    queries_recovered:
        Admitted queries cut off by a sever and successfully re-placed
        onto a reachable replica.
    """

    schedule: tuple[LinkEvent, ...]
    degrades: int
    severs: int
    restores: int
    partitions: int
    recomputes: int
    availability_curve: tuple[tuple[float, float], ...]
    time_weighted_link_availability: float
    queries_rerouted: int
    queries_interrupted: int
    queries_recovered: int


class NetworkDynamics:
    """Applies a link schedule to a live path cache inside a simulator.

    Parameters
    ----------
    sim:
        The session's event engine.
    link_state:
        The per-link health ledger (shared with
        :meth:`~repro.cluster.state.ClusterState.check_invariants`'s
        severed-path check).
    paths:
        The :class:`~repro.network.paths.PathCache` to recompute; its
        generation bump is how every downstream latency cache learns the
        network moved.
    schedule:
        Events to inject, from :func:`build_link_schedule`.
    inflation:
        Delay multiplier applied by degrade events.  The schedule itself
        carries no magnitude (it stays a pure function of the renewal
        draws); the injector owns the configured factor.
    on_change:
        Callback ``(event)`` fired after each event is applied and the
        paths recomputed; the session re-validates inflight queries
        against the new delays.
    """

    def __init__(
        self,
        sim: "Simulator",
        link_state: LinkState,
        paths: "PathCache",
        schedule: tuple[LinkEvent, ...],
        *,
        inflation: float = 4.0,
        on_change: Optional[Callable[[LinkEvent], None]] = None,
    ) -> None:
        self._sim = sim
        self.link_state = link_state
        self._paths = paths
        self.schedule = tuple(schedule)
        self._inflation = float(inflation)
        self._on_change = on_change
        self._fired: list[LinkEvent] = []
        self._curve: list[tuple[float, float]] = [(0.0, 1.0)]
        self._partition_stamp: tuple[float, bool] | None = None
        self.degrades = 0
        self.severs = 0
        self.restores = 0
        self.partitions = 0
        self.recomputes = 0
        self.queries_rerouted = 0
        self.queries_interrupted = 0
        self.queries_recovered = 0

    def arm(self) -> None:
        """Schedule every link event into the simulator."""
        for event in self.schedule:
            self._sim.schedule(event.time, lambda e=event: self._fire(e))

    # -- event application -------------------------------------------------

    def _fire(self, event: LinkEvent) -> None:
        obs = get_registry()
        self._fired.append(event)
        if event.kind == "degrade":
            self.link_state.degrade(event.link, self._inflation)
            self.degrades += 1
            obs.inc("netfaults.degrades")
        elif event.kind == "sever":
            self.link_state.sever(event.link)
            self.severs += 1
            obs.inc("netfaults.severs")
            if event.correlated:
                stamp = (event.time, True)
                if self._partition_stamp != stamp:
                    self._partition_stamp = stamp
                    self.partitions += 1
                    obs.inc("netfaults.partitions")
        else:
            self.link_state.restore(event.link)
            self.restores += 1
            obs.inc("netfaults.restores")
        self._paths.recompute(self.link_state.effective_delays())
        self.recomputes += 1
        self._curve.append(
            (self._sim.now, self.link_state.link_availability())
        )
        if self._on_change is not None:
            self._on_change(event)

    # -- session accounting ------------------------------------------------

    def note_rerouted(self) -> None:
        """Record a query whose path changed but stayed feasible."""
        self.queries_rerouted += 1
        get_registry().inc("netfaults.rerouted")

    def note_interrupted(self) -> None:
        """Record an admitted query cut off and not re-placed."""
        self.queries_interrupted += 1
        get_registry().inc("netfaults.interrupted")

    def note_recovered(self) -> None:
        """Record an admitted query re-placed onto a reachable replica."""
        self.queries_recovered += 1
        get_registry().inc("netfaults.recovered")

    # -- reporting ---------------------------------------------------------

    def report(self, end_time: float) -> NetworkReport:
        """Assemble the :class:`NetworkReport` for a session ending now."""
        # Lazy: importing repro.sim at module scope would close an import
        # cycle (sim.execution → core.instance → repro.network → here).
        from repro.sim.faults import integrate_curve

        return NetworkReport(
            schedule=tuple(self._fired),
            degrades=self.degrades,
            severs=self.severs,
            restores=self.restores,
            partitions=self.partitions,
            recomputes=self.recomputes,
            availability_curve=tuple(self._curve),
            time_weighted_link_availability=integrate_curve(
                self._curve, end_time
            ),
            queries_rerouted=self.queries_rerouted,
            queries_interrupted=self.queries_interrupted,
            queries_recovered=self.queries_recovered,
        )
