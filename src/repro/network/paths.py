"""All-pairs minimum-delay computation and caching.

The placement algorithms repeatedly need ``dt(p(v, h))`` — the minimum
per-unit-data transmission delay between a candidate serving node and a
query's home location.  We precompute the full matrix once per topology
with ``scipy.sparse.csgraph.dijkstra`` (C-speed, vectorised over sources)
and serve lookups from the dense result, following the "profile first,
vectorise the bottleneck" discipline: path computation dominates naive
implementations, and caching removes it from the hot loop entirely.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.obs import get_registry
from repro.topology.twotier import EdgeCloudTopology

__all__ = ["all_pairs_min_delay", "min_delay_tables", "PathCache"]

#: scipy's predecessor sentinel for "no path" / "undefined".
_NO_PREDECESSOR = -9999


def _adjacency(
    delays: Mapping[tuple[int, int], float], num_nodes: int
) -> csr_matrix:
    """Symmetric sparse adjacency with link delays as weights.

    COO→CSR conversion canonicalises index order, so any two mappings
    holding the same (edge, delay) pairs — in any iteration order —
    produce bit-identical matrices.  That determinism is what makes
    incremental recomputation (:meth:`PathCache.recompute`) provably
    equal to a from-scratch build on the mutated topology.
    """
    n = num_nodes
    if not delays:
        return csr_matrix((n, n))
    endpoints = np.array(list(delays.keys()), dtype=np.intp)
    vals = np.fromiter(delays.values(), dtype=np.float64, count=len(delays))
    rows = np.concatenate([endpoints[:, 0], endpoints[:, 1]])
    cols = np.concatenate([endpoints[:, 1], endpoints[:, 0]])
    return csr_matrix(
        (np.concatenate([vals, vals]), (rows, cols)), shape=(n, n)
    )


def min_delay_tables(
    delays: Mapping[tuple[int, int], float], num_nodes: int
) -> tuple[np.ndarray, np.ndarray]:
    """All-pairs minimum delays + predecessors for an explicit link table.

    The workhorse behind :func:`all_pairs_min_delay`, exposed separately
    so the dynamics layer can recompute paths from an *effective*
    link-delay overlay (severed links omitted, degraded links inflated)
    without materialising a new topology object.
    """
    adj = _adjacency(delays, num_nodes)
    if adj.nnz == 0:
        # Nodes but no links: every distinct pair is unreachable.  Build
        # the result explicitly instead of leaning on how scipy happens to
        # treat an all-zero adjacency matrix.
        out = np.full((num_nodes, num_nodes), np.inf)
        np.fill_diagonal(out, 0.0)
        predecessors = np.full(
            (num_nodes, num_nodes), _NO_PREDECESSOR, dtype=np.int32
        )
        return out, predecessors
    return dijkstra(adj, directed=False, return_predecessors=True)


def all_pairs_min_delay(
    topology: EdgeCloudTopology,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute minimum delays and predecessors between all node pairs.

    Returns
    -------
    (delays, predecessors)
        ``delays[u, v]`` is the minimum total per-unit-data delay (s/GB)
        between ``u`` and ``v`` (``inf`` if disconnected, ``0`` on the
        diagonal).  ``predecessors[u, v]`` is the node preceding ``v`` on
        the best path from ``u`` (``-9999`` where undefined, scipy's
        sentinel).
    """
    return min_delay_tables(topology.link_delays, topology.num_nodes)


class PathCache:
    """Precomputed minimum-delay oracle for one topology.

    The cache is **epoch-stamped**: :attr:`generation` starts at 0 and is
    bumped by every :meth:`recompute` (the network-dynamics layer calls it
    when links degrade, sever, or restore).  Consumers that memoise
    latency vectors derived from this cache key their memo on the
    generation and rebuild when it moves; a cache whose generation never
    moves behaves bit-identically to the pre-dynamics code.

    Examples
    --------
    >>> from repro.topology import example_figure1
    >>> topo = example_figure1()
    >>> cache = PathCache(topo)
    >>> cache.delay(topo.placement_nodes[0], topo.placement_nodes[1]) >= 0
    True
    """

    def __init__(self, topology: EdgeCloudTopology) -> None:
        self._topology = topology
        with get_registry().time("pathcache.build_s"):
            self._delays, self._pred = all_pairs_min_delay(topology)
        self._placement_vectors: dict[int, np.ndarray] = {}
        self._home_matrix: np.ndarray | None = None
        self._placement_index = np.fromiter(
            topology.placement_nodes,
            dtype=np.intp,
            count=len(topology.placement_nodes),
        )
        self._generation = 0

    @property
    def topology(self) -> EdgeCloudTopology:
        """The topology this cache was built for."""
        return self._topology

    @property
    def generation(self) -> int:
        """Invalidation epoch; bumped by every :meth:`recompute`."""
        return self._generation

    def recompute(
        self, effective_delays: Mapping[tuple[int, int], float]
    ) -> int:
        """Rebuild the delay/predecessor tables from an effective link table.

        ``effective_delays`` is the dynamics layer's overlay of the base
        topology: severed links are *absent*, degraded links carry their
        inflated delay.  All memoised derived vectors are dropped, and the
        :attr:`generation` is bumped so downstream caches (instance home
        vectors, gateway/router latency caches, screening statics) know to
        rebuild.  Returns the new generation.

        The result is bit-identical to constructing a fresh ``PathCache``
        on a topology holding exactly ``effective_delays`` (pinned by the
        Hypothesis property suite): the CSR adjacency is canonical in the
        edge set, and dijkstra is deterministic on it.
        """
        with get_registry().time("pathcache.recompute_s"):
            self._delays, self._pred = min_delay_tables(
                effective_delays, self._topology.num_nodes
            )
        self._placement_vectors.clear()
        self._home_matrix = None
        self._generation += 1
        get_registry().inc("pathcache.recomputes")
        return self._generation

    def delay(self, u: int, v: int) -> float:
        """Minimum per-unit-data delay between ``u`` and ``v`` (s/GB)."""
        get_registry().inc("pathcache.lookups")
        return float(self._delays[u, v])

    def delays_from(self, u: int) -> np.ndarray:
        """Vector of minimum delays from ``u`` to every node."""
        return self._delays[u]

    def delays_matrix(self) -> np.ndarray:
        """Read-only view of the full delay matrix."""
        view = self._delays.view()
        view.flags.writeable = False
        return view

    def placement_delays_to(self, home: int) -> np.ndarray:
        """Delays from each *placement* node (in placement order) to ``home``.

        This is the vector the placement algorithms consume: entry ``i``
        is ``dt(p(placement_nodes[i], home))``.  Vectors are memoised per
        home node (read-only); repeat calls are cache hits counted under
        ``pathcache.hits`` / ``pathcache.misses``.
        """
        obs = get_registry()
        vec = self._placement_vectors.get(home)
        if vec is None:
            obs.inc("pathcache.misses")
            vec = self._delays[self._placement_index, home]
            vec.flags.writeable = False
            self._placement_vectors[home] = vec
        else:
            obs.inc("pathcache.hits")
        return vec

    def home_delay_matrix(self) -> np.ndarray:
        """All :meth:`placement_delays_to` vectors as one dense matrix.

        Shape ``(num_topology_nodes, num_placement_nodes)``: row ``h`` is
        exactly ``placement_delays_to(h)`` — the same slice of the same
        all-pairs matrix, so every element is bit-identical to the
        memoised per-home vector.  Built once and cached (read-only);
        this is the static latency table the screening pool ships to
        worker processes.
        """
        if self._home_matrix is None:
            matrix = np.ascontiguousarray(
                self._delays[self._placement_index, :].T
            )
            matrix.flags.writeable = False
            self._home_matrix = matrix
        return self._home_matrix

    def reachable(self, u: int, v: int) -> bool:
        """Whether any path connects ``u`` and ``v``."""
        return bool(np.isfinite(self._delays[u, v]))

    def predecessor(self, source: int, node: int) -> int:
        """Predecessor of ``node`` on the best path from ``source`` (-9999 if none)."""
        return int(self._pred[source, node])
