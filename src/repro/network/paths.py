"""All-pairs minimum-delay computation and caching.

The placement algorithms repeatedly need ``dt(p(v, h))`` — the minimum
per-unit-data transmission delay between a candidate serving node and a
query's home location.  We precompute the full matrix once per topology
with ``scipy.sparse.csgraph.dijkstra`` (C-speed, vectorised over sources)
and serve lookups from the dense result, following the "profile first,
vectorise the bottleneck" discipline: path computation dominates naive
implementations, and caching removes it from the hot loop entirely.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.obs import get_registry
from repro.topology.twotier import EdgeCloudTopology

__all__ = ["all_pairs_min_delay", "PathCache"]

#: scipy's predecessor sentinel for "no path" / "undefined".
_NO_PREDECESSOR = -9999


def _adjacency(topology: EdgeCloudTopology) -> csr_matrix:
    """Symmetric sparse adjacency with link delays as weights."""
    n = topology.num_nodes
    delays = topology.link_delays
    if not delays:
        return csr_matrix((n, n))
    endpoints = np.array(list(delays.keys()), dtype=np.intp)
    vals = np.fromiter(delays.values(), dtype=np.float64, count=len(delays))
    rows = np.concatenate([endpoints[:, 0], endpoints[:, 1]])
    cols = np.concatenate([endpoints[:, 1], endpoints[:, 0]])
    return csr_matrix(
        (np.concatenate([vals, vals]), (rows, cols)), shape=(n, n)
    )


def all_pairs_min_delay(
    topology: EdgeCloudTopology,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute minimum delays and predecessors between all node pairs.

    Returns
    -------
    (delays, predecessors)
        ``delays[u, v]`` is the minimum total per-unit-data delay (s/GB)
        between ``u`` and ``v`` (``inf`` if disconnected, ``0`` on the
        diagonal).  ``predecessors[u, v]`` is the node preceding ``v`` on
        the best path from ``u`` (``-9999`` where undefined, scipy's
        sentinel).
    """
    adj = _adjacency(topology)
    if adj.nnz == 0:
        # Nodes but no links: every distinct pair is unreachable.  Build
        # the result explicitly instead of leaning on how scipy happens to
        # treat an all-zero adjacency matrix.
        n = topology.num_nodes
        delays = np.full((n, n), np.inf)
        np.fill_diagonal(delays, 0.0)
        predecessors = np.full((n, n), _NO_PREDECESSOR, dtype=np.int32)
        return delays, predecessors
    delays, predecessors = dijkstra(
        adj, directed=False, return_predecessors=True
    )
    return delays, predecessors


class PathCache:
    """Precomputed minimum-delay oracle for one topology.

    Examples
    --------
    >>> from repro.topology import example_figure1
    >>> topo = example_figure1()
    >>> cache = PathCache(topo)
    >>> cache.delay(topo.placement_nodes[0], topo.placement_nodes[1]) >= 0
    True
    """

    def __init__(self, topology: EdgeCloudTopology) -> None:
        self._topology = topology
        with get_registry().time("pathcache.build_s"):
            self._delays, self._pred = all_pairs_min_delay(topology)
        self._placement_vectors: dict[int, np.ndarray] = {}
        self._home_matrix: np.ndarray | None = None
        self._placement_index = np.fromiter(
            topology.placement_nodes,
            dtype=np.intp,
            count=len(topology.placement_nodes),
        )

    @property
    def topology(self) -> EdgeCloudTopology:
        """The topology this cache was built for."""
        return self._topology

    def delay(self, u: int, v: int) -> float:
        """Minimum per-unit-data delay between ``u`` and ``v`` (s/GB)."""
        get_registry().inc("pathcache.lookups")
        return float(self._delays[u, v])

    def delays_from(self, u: int) -> np.ndarray:
        """Vector of minimum delays from ``u`` to every node."""
        return self._delays[u]

    def delays_matrix(self) -> np.ndarray:
        """Read-only view of the full delay matrix."""
        view = self._delays.view()
        view.flags.writeable = False
        return view

    def placement_delays_to(self, home: int) -> np.ndarray:
        """Delays from each *placement* node (in placement order) to ``home``.

        This is the vector the placement algorithms consume: entry ``i``
        is ``dt(p(placement_nodes[i], home))``.  Vectors are memoised per
        home node (read-only); repeat calls are cache hits counted under
        ``pathcache.hits`` / ``pathcache.misses``.
        """
        obs = get_registry()
        vec = self._placement_vectors.get(home)
        if vec is None:
            obs.inc("pathcache.misses")
            vec = self._delays[self._placement_index, home]
            vec.flags.writeable = False
            self._placement_vectors[home] = vec
        else:
            obs.inc("pathcache.hits")
        return vec

    def home_delay_matrix(self) -> np.ndarray:
        """All :meth:`placement_delays_to` vectors as one dense matrix.

        Shape ``(num_topology_nodes, num_placement_nodes)``: row ``h`` is
        exactly ``placement_delays_to(h)`` — the same slice of the same
        all-pairs matrix, so every element is bit-identical to the
        memoised per-home vector.  Built once and cached (read-only);
        this is the static latency table the screening pool ships to
        worker processes.
        """
        if self._home_matrix is None:
            matrix = np.ascontiguousarray(
                self._delays[self._placement_index, :].T
            )
            matrix.flags.writeable = False
            self._home_matrix = matrix
        return self._home_matrix

    def reachable(self, u: int, v: int) -> bool:
        """Whether any path connects ``u`` and ``v``."""
        return bool(np.isfinite(self._delays[u, v]))

    def predecessor(self, source: int, node: int) -> int:
        """Predecessor of ``node`` on the best path from ``source`` (-9999 if none)."""
        return int(self._pred[source, node])
