"""Explicit path extraction from a :class:`~repro.network.paths.PathCache`.

The placement algorithms only need path *delays*; the discrete-event
simulator additionally walks the explicit hop sequence to serialise
transfers on individual links.
"""

from __future__ import annotations

from repro.network.paths import PathCache
from repro.topology.twotier import EdgeCloudTopology

__all__ = ["extract_path", "path_delay"]

_NO_PREDECESSOR = -9999  # scipy.sparse.csgraph sentinel


def extract_path(cache: PathCache, source: int, target: int) -> list[int]:
    """Reconstruct the minimum-delay path from ``source`` to ``target``.

    Returns the node sequence ``[source, ..., target]``; ``[source]`` when
    they coincide.

    Raises
    ------
    ValueError
        If no path exists.
    """
    if source == target:
        return [source]
    if not cache.reachable(source, target):
        raise ValueError(f"no path from {source} to {target}")
    hops = [target]
    node = target
    while node != source:
        node = cache.predecessor(source, node)
        if node == _NO_PREDECESSOR:
            raise ValueError(f"no path from {source} to {target}")
        hops.append(node)
    hops.reverse()
    return hops


def path_delay(topology: EdgeCloudTopology, path: list[int]) -> float:
    """Total per-unit-data delay (s/GB) along an explicit hop sequence."""
    return sum(
        topology.link_delay(u, v) for u, v in zip(path, path[1:])
    )
