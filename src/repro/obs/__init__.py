"""repro.obs — observability: tracing spans, metrics, profiling hooks.

The runtime instrumentation layer of the reproduction (see
``docs/observability.md``):

* :class:`MetricsRegistry` — counters, gauges, and streaming summaries
  (P² percentile estimates) plus nested, exception-safe trace spans;
* :data:`NULL_REGISTRY` — the no-op default, so unconfigured runs pay
  near-zero overhead and instrumentation can never alter algorithm
  decisions (``tests/obs/test_parity.py`` enforces this);
* :mod:`repro.obs.export` — JSONL event streams and Prometheus-style
  text dumps (the CLI's ``--trace`` / ``--metrics`` flags);
* :mod:`repro.obs.profile` — the ``REPRO_BENCH_PROFILE=1`` per-span
  bench breakdown harness.

Quickstart
----------
>>> from repro.obs import MetricsRegistry, use_registry
>>> registry = MetricsRegistry()
>>> with use_registry(registry):
...     with registry.span("demo", answer=42):
...         registry.inc("demo.counter")
>>> registry.counter("demo.counter")
1.0
>>> registry.find_spans("demo")[0].attributes["answer"]
42
"""

from repro.obs.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    P2Quantile,
    Summary,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.spans import Span, SpanContext
from repro.obs.export import (
    parse_prometheus_text,
    prometheus_text,
    read_jsonl,
    to_events,
    write_jsonl,
    write_prometheus,
)
from repro.obs.profile import (
    PROFILE_ENV,
    profiled,
    profiling_enabled,
    render_breakdown,
    span_breakdown,
)

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "P2Quantile",
    "Summary",
    "Span",
    "SpanContext",
    "get_registry",
    "set_registry",
    "use_registry",
    "to_events",
    "write_jsonl",
    "read_jsonl",
    "prometheus_text",
    "write_prometheus",
    "parse_prometheus_text",
    "PROFILE_ENV",
    "profiling_enabled",
    "profiled",
    "span_breakdown",
    "render_breakdown",
]
