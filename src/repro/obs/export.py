"""Exporters: JSONL event streams and Prometheus-style text dumps.

Two complementary formats for one registry's contents:

* **JSONL** (:func:`write_jsonl` / :func:`read_jsonl`) — one JSON object
  per line, types ``span`` / ``counter`` / ``gauge`` / ``summary``.
  Spans appear in completion order with their full attribute payload, so
  a trace is replayable offline.
* **Prometheus text** (:func:`prometheus_text` /
  :func:`write_prometheus`) — the exposition format scrapers and
  ``promtool`` understand.  Counters become ``repro_<name>_total``,
  gauges ``repro_<name>``, summaries a ``{quantile="…"}`` series plus
  ``_sum`` / ``_count``, and spans are aggregated per name into a
  ``repro_span_<name>_seconds`` summary.  :func:`parse_prometheus_text`
  is the matching (minimal) reader used by the round-trip tests.

Metric names are sanitised (``[^a-zA-Z0-9_:]`` → ``_``), so dotted
registry names like ``algo.appro-g.admitted`` export cleanly.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.obs.registry import MetricsRegistry

__all__ = [
    "to_events",
    "write_jsonl",
    "read_jsonl",
    "prometheus_text",
    "write_prometheus",
    "parse_prometheus_text",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    """Sanitised, ``repro_``-prefixed Prometheus metric name."""
    return "repro_" + _NAME_RE.sub("_", name)


def to_events(registry: MetricsRegistry) -> list[dict]:
    """The registry's contents as a flat list of typed event dicts."""
    events: list[dict] = []
    for span in registry.spans:
        events.append(
            {
                "type": "span",
                "name": span.name,
                "start_s": span.start_s,
                "duration_s": span.duration_s,
                "parent": span.parent,
                "depth": span.depth,
                "index": span.index,
                "error": span.error,
                "attributes": dict(span.attributes),
            }
        )
    for name in sorted(registry.counters):
        events.append(
            {"type": "counter", "name": name, "value": registry.counters[name]}
        )
    for name in sorted(registry.gauges):
        events.append(
            {"type": "gauge", "name": name, "value": registry.gauges[name]}
        )
    for name in sorted(registry.summaries):
        summary = registry.summaries[name]
        events.append(
            {
                "type": "summary",
                "name": name,
                "count": summary.count,
                "sum": summary.total,
                "min": summary.min,
                "max": summary.max,
                "mean": summary.mean,
                "quantiles": {str(q): v for q, v in summary.quantiles.items()},
            }
        )
    return events


def write_jsonl(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write the registry as one JSON object per line; returns the path."""
    path = Path(path)
    # default=str keeps exotic attribute values (enums, numpy scalars)
    # exportable rather than crashing the dump.
    lines = [json.dumps(e, default=str) for e in to_events(registry)]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def read_jsonl(path: str | Path) -> list[dict]:
    """Read a JSONL event stream back into a list of dicts."""
    out: list[dict] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: list[str] = []

    for name in sorted(registry.counters):
        metric = _metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {registry.counters[name]:g}")

    for name in sorted(registry.gauges):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {registry.gauges[name]:g}")

    for name in sorted(registry.summaries):
        summary = registry.summaries[name]
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} summary")
        for q, value in summary.quantiles.items():
            lines.append(f'{metric}{{quantile="{q:g}"}} {value:.9g}')
        lines.append(f"{metric}_sum {summary.total:.9g}")
        lines.append(f"{metric}_count {summary.count}")

    # Spans aggregate per name into a seconds summary.
    by_name: dict[str, tuple[int, float]] = {}
    for span in registry.spans:
        count, total = by_name.get(span.name, (0, 0.0))
        by_name[span.name] = (count + 1, total + span.duration_s)
    for name in sorted(by_name):
        count, total = by_name[name]
        metric = _metric_name("span." + name) + "_seconds"
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_sum {total:.9g}")
        lines.append(f"{metric}_count {count}")

    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write the Prometheus text dump; returns the path."""
    path = Path(path)
    path.write_text(prometheus_text(registry))
    return path


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse a Prometheus text dump into ``{sample_name: value}``.

    Sample names keep their label string verbatim (e.g.
    ``repro_x{quantile="0.5"}``); comment and type lines are skipped.
    Minimal by design — just enough for round-trip tests.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples
