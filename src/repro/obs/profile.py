"""Opt-in profiling harness: per-span time breakdowns for the benches.

Benchmarks (and any other driver) wrap their workload in
:func:`profiled`.  With ``REPRO_BENCH_PROFILE=1`` in the environment the
block runs under a fresh :class:`~repro.obs.registry.MetricsRegistry`
and a per-span time breakdown is printed afterwards; without it the
wrapper installs nothing and costs nothing, so the default bench numbers
stay clean of instrumentation overhead.

``benchmarks/conftest.py`` applies this automatically around every bench
test, so::

    REPRO_BENCH_PROFILE=1 python -m pytest benchmarks/bench_fig2.py

prints where each figure's time went (spans, hot-path timers, counters).
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, TextIO

from repro.obs.registry import MetricsRegistry, use_registry

__all__ = [
    "PROFILE_ENV",
    "profiling_enabled",
    "SpanStat",
    "span_breakdown",
    "render_breakdown",
    "profiled",
]

#: Environment variable gating the bench profiling harness.
PROFILE_ENV = "REPRO_BENCH_PROFILE"


def profiling_enabled() -> bool:
    """Whether ``REPRO_BENCH_PROFILE`` requests profiling."""
    return os.environ.get(PROFILE_ENV, "").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
    )


@dataclass(frozen=True)
class SpanStat:
    """Aggregate over all finished spans sharing one name."""

    name: str
    count: int
    total_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        """Mean span duration, seconds."""
        return self.total_s / self.count if self.count else 0.0


def span_breakdown(registry: MetricsRegistry) -> list[SpanStat]:
    """Per-name span aggregates, sorted by total time descending."""
    acc: dict[str, list[float]] = {}
    for span in registry.spans:
        stat = acc.get(span.name)
        if stat is None:
            acc[span.name] = [1, span.duration_s, span.duration_s]
        else:
            stat[0] += 1
            stat[1] += span.duration_s
            stat[2] = max(stat[2], span.duration_s)
    stats = [
        SpanStat(name=n, count=int(c), total_s=t, max_s=m)
        for n, (c, t, m) in acc.items()
    ]
    stats.sort(key=lambda s: (-s.total_s, s.name))
    return stats


def render_breakdown(registry: MetricsRegistry, title: str = "profile") -> str:
    """Human-readable per-span time breakdown (plus timers and counters)."""
    lines = [f"-- span breakdown: {title} --"]
    stats = span_breakdown(registry)
    if stats:
        lines.append(
            f"{'span':<40s} {'count':>7s} {'total':>10s} {'mean':>10s} {'max':>10s}"
        )
        for s in stats:
            lines.append(
                f"{s.name:<40s} {s.count:>7d} {s.total_s * 1e3:>8.1f}ms "
                f"{s.mean_s * 1e3:>8.2f}ms {s.max_s * 1e3:>8.2f}ms"
            )
    else:
        lines.append("(no spans recorded)")
    if registry.summaries:
        lines.append(
            f"{'timer/summary':<40s} {'count':>7s} {'total':>10s} {'mean':>10s} {'p90':>10s}"
        )
        for name in sorted(registry.summaries):
            summary = registry.summaries[name]
            p90 = summary.quantile(0.9) if 0.9 in summary.quantiles else summary.max
            lines.append(
                f"{name:<40s} {summary.count:>7d} {summary.total * 1e3:>8.1f}ms "
                f"{summary.mean * 1e3:>8.3f}ms {p90 * 1e3:>8.3f}ms"
            )
    if registry.counters:
        lines.append(f"{'counter':<40s} {'value':>7s}")
        for name in sorted(registry.counters):
            lines.append(f"{name:<40s} {registry.counters[name]:>7g}")
    return "\n".join(lines)


@contextmanager
def profiled(
    label: str, *, stream: TextIO | None = None
) -> Iterator[MetricsRegistry | None]:
    """Run the block under a fresh registry and print its breakdown.

    No-op (yields ``None``) unless :func:`profiling_enabled`, so callers
    can wrap unconditionally.
    """
    if not profiling_enabled():
        yield None
        return
    registry = MetricsRegistry()
    with use_registry(registry):
        with registry.span(f"profile.{label}"):
            yield registry
    print(file=stream or sys.stdout)
    print(render_breakdown(registry, title=label), file=stream or sys.stdout)
