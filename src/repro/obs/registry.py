"""Metrics primitives and the process-wide registry that collects them.

The registry is the single sink for everything the instrumented code
emits: **counters** (monotone floats), **gauges** (last-write-wins
floats), **summaries** (streaming value distributions — count, sum,
min/max and P² percentile estimates, used both for timers and for plain
value histograms such as simulated query latencies), and finished
**spans** (see :mod:`repro.obs.spans`).

Observability is off by default: :func:`get_registry` returns the shared
:data:`NULL_REGISTRY`, whose every method is an empty no-op, so
unconfigured runs pay one attribute lookup and a dead call per
instrumentation site.  Enabling collection is a matter of installing a
:class:`MetricsRegistry` with :func:`set_registry` or, scoped, with the
:func:`use_registry` context manager.

Two invariants the instrumented code relies on:

* **Decision neutrality** — nothing in this module consumes the
  workload RNG streams, reorders collections, or feeds values back into
  algorithm state; enabling a registry cannot change any
  :class:`~repro.core.types.PlacementSolution` (enforced by
  ``tests/obs/test_parity.py``).
* **Monotonic timing** — all durations come from
  :func:`time.perf_counter`, never wall-clock, so summaries are immune
  to clock adjustments.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.spans import Span, SpanContext

__all__ = [
    "P2Quantile",
    "Summary",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Percentiles every summary estimates unless configured otherwise.
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm (Jain & Chlamtac).

    Maintains five markers whose heights bracket the target quantile and
    adjusts them with a piecewise-parabolic update on every observation —
    O(1) memory, no sample retention, deterministic (no randomness).
    With fewer than five observations the exact sample quantile is
    returned instead.
    """

    __slots__ = ("q", "_heights", "_pos", "_want", "_inc")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._heights: list[float] = []
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._want = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._inc = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, x: float) -> None:
        """Fold one observation into the estimate."""
        h = self._heights
        if len(h) < 5:
            h.append(x)
            h.sort()
            return
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = next(i for i in range(4) if h[i] <= x < h[i + 1])
        for i in range(k + 1, 5):
            self._pos[i] += 1.0
        for i in range(5):
            self._want[i] += self._inc[i]
        for i in (1, 2, 3):
            d = self._want[i] - self._pos[i]
            if (d >= 1.0 and self._pos[i + 1] - self._pos[i] > 1.0) or (
                d <= -1.0 and self._pos[i - 1] - self._pos[i] < -1.0
            ):
                sign = 1.0 if d >= 0.0 else -1.0
                candidate = self._parabolic(i, sign)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, sign)
                self._pos[i] += sign

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate (NaN before the first observation)."""
        h = self._heights
        if not h:
            return math.nan
        if len(h) < 5:
            return h[min(len(h) - 1, int(self.q * len(h)))]
        return h[2]


class Summary:
    """Streaming summary of a value stream: count/sum/min/max + quantiles."""

    __slots__ = ("count", "total", "min", "max", "_estimators")

    def __init__(self, quantiles: tuple[float, ...] = DEFAULT_QUANTILES) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._estimators = {q: P2Quantile(q) for q in quantiles}

    def observe(self, value: float) -> None:
        """Fold one value into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for estimator in self._estimators.values():
            estimator.observe(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (NaN when empty)."""
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Current estimate of quantile ``q`` (must be a tracked quantile)."""
        return self._estimators[q].value()

    @property
    def quantiles(self) -> dict[float, float]:
        """All tracked quantile estimates, q → value."""
        return {q: est.value() for q, est in self._estimators.items()}


class _Timing:
    """Context manager recording a monotonic duration into a summary."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timing":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._registry.observe(self._name, time.perf_counter() - self._start)
        return False


class MetricsRegistry:
    """Collecting registry: counters, gauges, summaries, finished spans."""

    enabled = True

    def __init__(self, *, quantiles: tuple[float, ...] = DEFAULT_QUANTILES) -> None:
        self._quantiles = tuple(quantiles)
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.summaries: dict[str, Summary] = {}
        self.spans: list[Span] = []
        self._span_stack: list[SpanContext] = []

    # -- write side -------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (last write wins)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into summary ``name`` (created on first use)."""
        summary = self.summaries.get(name)
        if summary is None:
            summary = self.summaries[name] = Summary(self._quantiles)
        summary.observe(value)

    def time(self, name: str) -> _Timing:
        """Context manager timing its block into summary ``name`` (seconds)."""
        return _Timing(self, name)

    def span(self, name: str, **attributes) -> SpanContext:
        """Context manager opening a trace span (nests under any open span)."""
        return SpanContext(self, name, attributes)

    # -- cross-process merge ----------------------------------------------

    def snapshot(self) -> dict:
        """Picklable dump of everything collected so far.

        Used to ship a worker process's registry back to the parent; feed
        the result to :meth:`merge_snapshot`.
        """
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "summaries": {
                name: (s.count, s.total, s.min, s.max)
                for name, s in self.summaries.items()
            },
            "spans": list(self.spans),
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters add, gauges last-write-wins, spans append.  Summaries
        merge their exact statistics (count/total/min/max); P² quantile
        estimators cannot be merged across streams, so quantiles reflect
        only values observed locally.
        """
        for name, value in snap["counters"].items():
            self.inc(name, value)
        self.gauges.update(snap["gauges"])
        for name, (count, total, mn, mx) in snap["summaries"].items():
            summary = self.summaries.get(name)
            if summary is None:
                summary = self.summaries[name] = Summary(self._quantiles)
            summary.count += count
            summary.total += total
            if mn < summary.min:
                summary.min = mn
            if mx > summary.max:
                summary.max = mx
        self.spans.extend(snap["spans"])

    # -- read side --------------------------------------------------------

    def counter(self, name: str) -> float:
        """Counter value (0.0 if never incremented)."""
        return self.counters.get(name, 0.0)

    def summary(self, name: str) -> Summary | None:
        """The summary recorded under ``name``, or ``None``."""
        return self.summaries.get(name)

    def find_spans(self, name: str | None = None) -> list[Span]:
        """Finished spans, optionally filtered by exact name."""
        if name is None:
            return list(self.spans)
        return [s for s in self.spans if s.name == name]


class _NullContext:
    """Shared no-op stand-in for timers and spans of the null registry."""

    __slots__ = ()

    def set(self, **attributes) -> "_NullContext":
        return self

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullRegistry:
    """Default registry: every operation is a no-op.

    Shares one context-manager singleton across all ``time``/``span``
    calls, so an unconfigured run's instrumentation cost is a method call
    that immediately returns.
    """

    enabled = False
    __slots__ = ()

    #: Read-side views are permanently empty.
    spans: tuple = ()

    def inc(self, name: str, value: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def time(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def span(self, name: str, **attributes) -> _NullContext:
        return _NULL_CONTEXT

    def counter(self, name: str) -> float:
        return 0.0

    def summary(self, name: str) -> None:
        return None

    def find_spans(self, name: str | None = None) -> list:
        return []

    @property
    def counters(self) -> dict[str, float]:
        return {}

    @property
    def gauges(self) -> dict[str, float]:
        return {}

    @property
    def summaries(self) -> dict[str, Summary]:
        return {}


#: The shared do-nothing registry installed by default.
NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry | NullRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The currently installed registry (the null registry by default)."""
    return _active


def set_registry(
    registry: MetricsRegistry | NullRegistry | None,
) -> MetricsRegistry | NullRegistry:
    """Install ``registry`` (``None`` → the null registry); returns the old one."""
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(
    registry: MetricsRegistry | NullRegistry,
) -> Iterator[MetricsRegistry | NullRegistry]:
    """Install ``registry`` for the duration of the block, then restore."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
