"""Trace spans: nested, exception-safe timing records.

A span is one timed region of execution with a name, free-form
attributes, and a parent — the span that was open when it started.
Spans are recorded into a :class:`~repro.obs.registry.MetricsRegistry`
on exit (in *completion* order: children precede their parents) and are
exception-safe: a span closed by an exception still records its
duration, carries the exception's ``repr`` in :attr:`Span.error`, and
re-raises.

Use through the registry::

    with get_registry().span("controller.place", operation="place") as sp:
        ...
        sp.set(admitted=n)   # attributes may be added/updated mid-span
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Span", "SpanContext"]


@dataclass(frozen=True)
class Span:
    """One finished trace span.

    Attributes
    ----------
    name:
        Dotted span name (see the taxonomy in ``docs/observability.md``).
    attributes:
        Free-form key → value pairs attached at open or via
        :meth:`SpanContext.set`.
    start_s:
        :func:`time.perf_counter` timestamp at open (monotonic; only
        differences between spans of one process are meaningful).
    duration_s:
        Wall time between open and close, seconds.
    parent:
        Name of the enclosing span, or ``None`` for a root span.
    depth:
        Nesting depth (0 for roots).
    index:
        Completion sequence number within the registry.
    error:
        ``repr`` of the exception that closed the span, or ``None``.
    """

    name: str
    attributes: dict = field(default_factory=dict)
    start_s: float = 0.0
    duration_s: float = 0.0
    parent: str | None = None
    depth: int = 0
    index: int = 0
    error: str | None = None


class SpanContext:
    """Open-span handle; records a :class:`Span` into the registry on exit."""

    __slots__ = ("_registry", "_name", "_attributes", "_start", "_parent", "_depth")

    def __init__(self, registry, name: str, attributes: dict) -> None:
        self._registry = registry
        self._name = name
        self._attributes = dict(attributes)
        self._start = 0.0
        self._parent: str | None = None
        self._depth = 0

    def set(self, **attributes) -> "SpanContext":
        """Add or update span attributes while the span is open."""
        self._attributes.update(attributes)
        return self

    def __enter__(self) -> "SpanContext":
        stack = self._registry._span_stack
        self._parent = stack[-1]._name if stack else None
        self._depth = len(stack)
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        stack = self._registry._span_stack
        if stack and stack[-1] is self:
            stack.pop()
        self._registry.spans.append(
            Span(
                name=self._name,
                attributes=dict(self._attributes),
                start_s=self._start,
                duration_s=duration,
                parent=self._parent,
                depth=self._depth,
                index=len(self._registry.spans),
                error=repr(exc) if exc is not None else None,
            )
        )
        return False
