"""`repro.serve` — a long-running admission gateway over a live cluster.

Every other entry point in the library is a one-shot batch run.  This
package turns the admission machinery into a *service*: an asyncio
gateway owns a live :class:`~repro.cluster.state.ClusterState`, accepts a
stream of query submissions over a newline-delimited JSON TCP protocol,
micro-batches them through the vectorised admission kernel, sheds load
once its queue or compute crosses a watermark, and checkpoints its state
atomically so a restart resumes bit-identical.  See ``docs/serving.md``.

Pieces
------
* :mod:`repro.serve.protocol` — the wire format (versioned, validated).
* :mod:`repro.serve.batcher` — the bounded micro-batching queue.
* :mod:`repro.serve.gateway` — the admission gateway itself.
* :mod:`repro.serve.shm` — shared-memory export of the hot
  ``ClusterState`` arrays (seqlock-versioned numpy views).
* :mod:`repro.serve.screenpool` — the vectorised screening kernel and
  its prefork worker pool.
* :mod:`repro.serve.reoptimizer` — the live re-optimization daemon:
  bounded-churn replica migration against demand drift.
* :mod:`repro.serve.preplacer` — the predictive pre-placement daemon:
  add-only replica placement ahead of forecast demand
  (:mod:`repro.workload.forecast`).
* :mod:`repro.serve.netfaults` — the live network-dynamics daemon:
  seeded link degradation/partition schedules replayed against the
  gateway's path cache (:mod:`repro.network.dynamics`), with
  generation-stamped invalidation of every latency consumer.
* :mod:`repro.serve.client` — asyncio client + closed/open-loop load
  generators driven by the Zipf workload machinery.
* :mod:`repro.serve.shard` — deterministic placement-node partitioning
  (:class:`ShardPlan`) and the router + N-gateway ensemble
  (:class:`ShardCluster`).
* :mod:`repro.serve.router` — the front router: shard-local forwarding
  plus two-phase reserve/commit cross-shard admission.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.client import (
    GatewayClient,
    LoadReport,
    QueryFactory,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.gateway import (
    AdmissionGateway,
    GatewayConfig,
    GatewayThread,
    maybe_install_uvloop,
)
from repro.serve.netfaults import (
    NetFaultConfig,
    NetFaultCycleReport,
    NetFaultDaemon,
)
from repro.serve.preplacer import PreplaceReport, Preplacer, PreplacerConfig
from repro.serve.protocol import ProtocolError, decode_message, encode_message
from repro.serve.reoptimizer import CycleReport, Reoptimizer, ReoptimizerConfig
from repro.serve.router import FrontRouter, RouterConfig, RouterThread
from repro.serve.screenpool import ScreenPool, ScreenRows
from repro.serve.shard import ShardCluster, ShardPlan
from repro.serve.shm import ScreenStatics, SharedStateViews, StateSnapshot

__all__ = [
    "AdmissionGateway",
    "CycleReport",
    "FrontRouter",
    "GatewayConfig",
    "GatewayThread",
    "GatewayClient",
    "LoadReport",
    "MicroBatcher",
    "NetFaultConfig",
    "NetFaultCycleReport",
    "NetFaultDaemon",
    "PreplaceReport",
    "Preplacer",
    "PreplacerConfig",
    "ProtocolError",
    "QueryFactory",
    "Reoptimizer",
    "ReoptimizerConfig",
    "RouterConfig",
    "RouterThread",
    "ScreenPool",
    "ScreenRows",
    "ScreenStatics",
    "ShardCluster",
    "ShardPlan",
    "SharedStateViews",
    "StateSnapshot",
    "decode_message",
    "encode_message",
    "maybe_install_uvloop",
    "run_closed_loop",
    "run_open_loop",
]
