"""Bounded micro-batching queue for the admission gateway.

Submissions land in a bounded :class:`asyncio.Queue`; the admission
worker pulls *batches*: a flush happens when ``max_batch`` items are
collected, when the queue runs dry (``max_wait_s = 0``, the eager
default — the batch is exactly the backlog that accumulated while the
previous batch was being served), or when ``max_wait_s`` has elapsed
since the first item of the batch arrived.  Eager flushing never trades
latency for batch size: a lone request under an idle gateway is served
immediately, and batches form naturally exactly when there is a backlog
to amortise.  A positive ``max_wait_s`` holds the flush open for
stragglers instead — worth it only when per-batch overhead dominates
per-item work.

The queue bound is the backpressure primitive: :meth:`MicroBatcher.offer`
never blocks — a full queue refuses the item and the gateway sheds the
request with a ``retry_after_s`` hint instead of queueing unboundedly.
"""

from __future__ import annotations

import asyncio
from typing import Generic, TypeVar

from repro.util.validation import check_non_negative, check_positive

__all__ = ["MicroBatcher"]

T = TypeVar("T")


class MicroBatcher(Generic[T]):
    """Coalesce queued items into batches (flush on size or deadline).

    Parameters
    ----------
    max_batch:
        Largest batch returned by :meth:`next_batch` (1 disables
        coalescing — every item is its own batch).
    max_wait_s:
        Longest a batch's *first* item waits for company before the
        partial batch is flushed.  ``0`` (the default) flushes eagerly:
        the batch is whatever is already queued, never waiting.
    queue_bound:
        Capacity of the pending queue; :meth:`offer` refuses items
        beyond it.
    """

    def __init__(
        self,
        *,
        max_batch: int = 16,
        max_wait_s: float = 0.0,
        queue_bound: int = 256,
    ) -> None:
        check_positive("max_batch", max_batch)
        check_non_negative("max_wait_s", max_wait_s)
        check_positive("queue_bound", queue_bound)
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.queue_bound = int(queue_bound)
        self._queue: asyncio.Queue[T] = asyncio.Queue(maxsize=self.queue_bound)

    @property
    def depth(self) -> int:
        """Items currently queued (pending admission)."""
        return self._queue.qsize()

    def offer(self, item: T) -> bool:
        """Enqueue ``item`` without blocking; ``False`` when full (shed)."""
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            return False
        return True

    async def next_batch(self) -> list[T]:
        """Await the next batch (never empty).

        Blocks until at least one item exists, then collects up to
        ``max_batch`` items: queued items are drained immediately, and —
        only with a positive ``max_wait_s`` — the remainder of the batch
        is awaited until ``max_wait_s`` after the first item was taken.
        """
        first = await self._queue.get()
        batch: list[T] = [first]
        if self.max_batch == 1:
            return batch
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_wait_s
        while len(batch) < self.max_batch:
            try:
                batch.append(self._queue.get_nowait())
                continue
            except asyncio.QueueEmpty:
                pass
            remaining = deadline - loop.time()
            if remaining <= 0.0:
                break
            try:
                batch.append(
                    await asyncio.wait_for(self._queue.get(), timeout=remaining)
                )
            except asyncio.TimeoutError:
                break
        return batch

    def drain_nowait(self) -> list[T]:
        """Remove and return everything currently queued (shutdown path)."""
        items: list[T] = []
        while True:
            try:
                items.append(self._queue.get_nowait())
            except asyncio.QueueEmpty:
                return items
