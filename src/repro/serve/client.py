"""Asyncio client and load generators for the admission gateway.

:class:`GatewayClient` speaks the newline-delimited JSON protocol with
pipelining: requests carry monotonically increasing ids, a background
reader task correlates responses, and any number of coroutines may await
their own in-flight requests over one connection.

The load generators drive a gateway the way the paper's workload would:
queries are *ad hoc* draws over the instance's datasets with Zipf
popularity (:func:`repro.workload.trace.zipf_weights` — the same
heavy-tailed shape as the usage trace), cloudlet-biased homes, and the
paper's selectivity/compute-rate/deadline ranges.

* :func:`run_closed_loop` — ``concurrency`` workers each keep one request
  outstanding; measures the service's sustainable throughput.
* :func:`run_open_loop` — Poisson arrivals at ``rate_rps`` regardless of
  response progress; measures latency/shed behaviour under offered load
  (the honest way to see backpressure engage).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.instance import ProblemInstance
from repro.core.types import Query
from repro.io.serialize import query_to_dict
from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError, check_positive
from repro.workload.params import PaperDefaults
from repro.workload.trace import zipf_weights

from repro.serve.protocol import ProtocolError, decode_message, encode_message

__all__ = [
    "GatewayClient",
    "LoadReport",
    "QueryFactory",
    "run_closed_loop",
    "run_open_loop",
]

#: Popularity trajectories a :class:`QueryFactory` can follow.
_TRACE_MODES = ("stationary", "burst", "diurnal", "flash-crowd", "mobility")


class GatewayClient:
    """One pipelined connection to an admission gateway.

    Use as an async context manager, or pair :meth:`connect` with
    :meth:`close`.  All request methods are safe to call concurrently
    from many coroutines.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "GatewayClient":
        """Open a connection to the gateway at ``(host, port)``."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        error: BaseException = ConnectionError("connection closed by gateway")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                payload = decode_message(line)
                future = self._pending.pop(payload.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(payload)
        except (ProtocolError, ConnectionError, asyncio.IncompleteReadError) as exc:
            error = exc
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """Send one request and await its (id-matched) response."""
        self._next_id += 1
        request_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        async with self._write_lock:
            self._writer.write(
                encode_message({"op": op, "id": request_id, **fields})
            )
            await self._writer.drain()
        return await future

    async def submit(self, query: Query) -> dict[str, Any]:
        """Submit one query; returns the admit/reject/shed response."""
        return await self.request("submit", query=query_to_dict(query))

    async def status(self) -> dict[str, Any]:
        """Fetch the gateway's health snapshot."""
        return await self.request("status")

    @staticmethod
    def render_status(payload: dict[str, Any]) -> str:
        """Human-readable render of a ``status`` payload.

        Counters, the screening engine's per-stage timings, the
        admission-latency histogram (non-empty buckets only), and — when
        present — the shard identity, two-phase reservation counters,
        and re-optimizer digest.  Every section is defensive: a gateway
        restored from a checkpoint reports *before* its first admission
        (empty histogram), older gateways omit whole sections, and a
        router's per-shard statuses may be partially populated — none of
        that may crash the render (``repro load --status`` runs it on
        whatever the wire returns).
        """

        def fmt_s(value: Any) -> str:
            if not isinstance(value, (int, float)):
                return "-"
            if value < 1e-3:
                return f"{value * 1e6:.0f}us"
            if value < 1.0:
                return f"{value * 1e3:.2f}ms"
            return f"{value:.3f}s"

        def fmt_count(value: Any) -> str:
            try:
                return str(int(value))
            except (TypeError, ValueError):
                return "-"

        def fmt_f(value: Any) -> str:
            if not isinstance(value, (int, float)):
                return "-"
            return f"{value:.1f}"

        lines = [
            f"uptime {fmt_f(payload.get('uptime_s', 0.0))}s  "
            f"queue {payload.get('queue_depth', 0)}  "
            f"inflight {payload.get('inflight_queries', 0)} queries / "
            f"{fmt_f(payload.get('inflight_ghz', 0.0))} GHz "
            f"of {fmt_f(payload.get('total_capacity_ghz', 0.0))} GHz",
            "counters: "
            + "  ".join(
                f"{k}={fmt_count(v)}"
                for k, v in sorted(payload.get("counters", {}).items())
            ),
        ]
        shard = payload.get("shard")
        if isinstance(shard, dict):
            nodes = shard.get("nodes") or []
            lines.append(
                f"shard: id={shard.get('id')} "
                f"scoped={shard.get('scoped', False)} "
                f"nodes={len(nodes)}"
            )
        two_phase = payload.get("two_phase")
        if isinstance(two_phase, dict) and any(
            isinstance(v, (int, float)) and v for v in two_phase.values()
        ):
            lines.append(
                "two-phase: "
                + "  ".join(
                    f"{k}={fmt_count(v)}" for k, v in sorted(two_phase.items())
                )
            )
        screen = payload.get("screen")
        if isinstance(screen, dict):
            lines.append(
                f"screen: engine={screen.get('engine', '-')} "
                f"workers={screen.get('workers', '-')} "
                f"stale_rescreens={screen.get('stale_rescreens', 0)}"
            )
            for stage in ("screen_s", "commit_s"):
                stats = screen.get(stage)
                if isinstance(stats, dict) and stats.get("count"):
                    lines.append(
                        f"  {stage[:-2]}/batch: mean {fmt_s(stats.get('mean_s'))}  "
                        f"p50 {fmt_s(stats.get('p50_s'))}  "
                        f"p90 {fmt_s(stats.get('p90_s'))}  "
                        f"p99 {fmt_s(stats.get('p99_s'))}"
                    )
        hist = payload.get("admission_latency")
        if isinstance(hist, dict):
            counts = hist.get("counts") or []
            edges = hist.get("buckets_le_s") or []
            total = sum(counts)
            if total > 0:
                lines.append(
                    "admission latency: "
                    + "  ".join(
                        f"{q[:-2]} {fmt_s(hist.get(q))}"
                        for q in ("p50_s", "p90_s", "p99_s", "p999_s")
                    )
                )
                for i, count in enumerate(counts):
                    if not count:
                        continue
                    label = f"<={fmt_s(edges[i])}" if i < len(edges) else "+inf"
                    bar = "#" * max(1, round(40 * count / total))
                    lines.append(f"  {label:>10} {count:>8} {bar}")
        reopt = payload.get("reopt")
        if isinstance(reopt, dict):
            lines.append(
                f"reopt: cycles={fmt_count(reopt.get('cycles', 0))} "
                f"migrated_steps={fmt_count(reopt.get('migrated_steps', 0))} "
                f"migrated_gb={fmt_f(reopt.get('migrated_gb', 0.0))} "
                f"reclaimed_gb={fmt_f(reopt.get('reclaimed_gain_gb', 0.0))}"
            )
        predict = payload.get("predict")
        if isinstance(predict, dict):
            lines.append(
                f"predict: cycles={fmt_count(predict.get('cycles', 0))} "
                f"estimator={predict.get('estimator', '-')} "
                f"window={fmt_count(predict.get('window', 0))} "
                f"preplaced_steps={fmt_count(predict.get('preplaced_steps', 0))} "
                f"preplaced_gb={fmt_f(predict.get('preplaced_gb', 0.0))}"
            )
        netfault = payload.get("netfault")
        if isinstance(netfault, dict):
            avail = netfault.get("link_availability")
            avail_s = (
                f"{avail:.3f}" if isinstance(avail, (int, float)) else "-"
            )
            lines.append(
                f"netfault: cycles={fmt_count(netfault.get('cycles', 0))} "
                f"events={fmt_count(netfault.get('events_applied', 0))} "
                f"severed={fmt_count(netfault.get('severed_links', 0))} "
                f"interrupted={fmt_count(netfault.get('interrupted', 0))} "
                f"gen={fmt_count(netfault.get('generation', 0))} "
                f"avail={avail_s}"
            )
        return "\n".join(lines)

    async def snapshot(self) -> dict[str, Any]:
        """Ask the gateway to checkpoint now."""
        return await self.request("snapshot")

    async def reopt(self, *, force: bool = False) -> dict[str, Any]:
        """Ask the gateway to run one re-optimization cycle now."""
        return await self.request("reopt", force=force)

    async def predict(self, *, force: bool = False) -> dict[str, Any]:
        """Ask the gateway to run one predictive pre-placement cycle now."""
        return await self.request("predict", force=force)

    async def netfault(self, *, force: bool = False) -> dict[str, Any]:
        """Ask the gateway to run one network-dynamics cycle now.

        ``force`` jumps the schedule clock to the next link event, so
        the cycle applies at least one while any remain.
        """
        return await self.request("netfault", force=force)

    async def reserve(
        self, reservation_id: str, query: Query, dataset_ids: list[int]
    ) -> dict[str, Any]:
        """Phase one of cross-shard admission: hold a dataset subset."""
        return await self.request(
            "reserve",
            reservation_id=reservation_id,
            query=query_to_dict(query),
            dataset_ids=list(dataset_ids),
        )

    async def commit(self, reservation_id: str) -> dict[str, Any]:
        """Phase two, success: finalise a reservation."""
        return await self.request("commit", reservation_id=reservation_id)

    async def abort(self, reservation_id: str) -> dict[str, Any]:
        """Phase two, failure: undo a reservation (idempotent)."""
        return await self.request("abort", reservation_id=reservation_id)

    async def shutdown(self) -> dict[str, Any]:
        """Ask the gateway to checkpoint and stop."""
        return await self.request("shutdown")

    async def close(self) -> None:
        """Close the connection and stop the reader task."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        await self._reader_task


class QueryFactory:
    """Deterministic stream of ad-hoc queries over an instance's datasets.

    Draws follow the paper's workload shape: dataset popularity is Zipf
    over dataset rank, homes are cloudlet-biased, and
    selectivity / compute rate / deadline come from the
    :class:`~repro.workload.params.PaperDefaults` ranges (deadline =
    largest demanded volume × a per-GB rate, as in the batch generator).

    Parameters
    ----------
    instance:
        Supplies the datasets and the topology the queries live on.
    seed:
        Root seed; the factory derives its own stream (label
        ``"serve-load"``), so two factories with one seed emit identical
        query sequences — what lets closed/open-loop comparisons share a
        workload.
    zipf_exponent:
        Skew of dataset popularity (the trace generator's default).
    rotate:
        Rotate the Zipf weight vector by this many positions over the
        (sorted) dataset ids, shifting which datasets are hot.  Two
        factories sharing a seed but differing in ``rotate`` emit the
        same query *shapes* over drifted popularity — the knob the
        re-optimizer bench and the drifting-load CLI use to synthesise
        controlled demand drift.
    mode:
        Popularity *trajectory* over the stream (``"stationary"``, the
        default, keeps the draw-for-draw behaviour of older factories):

        * ``"burst"`` — every other ``period``-draw phase, one rotating
          dataset surges to ``surge ×`` the hottest base weight, then
          demand snaps back — recurring hot spots with a cooldown.
        * ``"diurnal"`` — the weight vector rotates one full turn every
          ``2 × period`` draws, a smooth hot-set drift standing in for
          the trace's hour-of-day profile.
        * ``"flash-crowd"`` — stationary until draw ``period``, then the
          *coldest* dataset ramps linearly over ``period // 2`` draws to
          85% of all demand and stays there — the paper's viral-asset
          scenario.
        * ``"mobility"`` — dataset popularity stays stationary; instead
          the *home station* pool rotates one position every ``period``
          draws, so the workload's geographic anchor drifts —
          deterministic home churn standing in for users moving between
          base stations (what exercises mobility-aware path
          recomputation).

        Only the weight vector varies with the draw index; each mode is
        itself fully deterministic for a seed, and a non-stationary
        factory emits draw-for-draw the stationary stream until its
        first weight change (e.g. flash-crowd before ``period``).
    period:
        Phase length (draws) of the non-stationary modes.
    surge:
        Burst-mode boost: the hot dataset's weight is raised to
        ``surge × max(base weights)`` before renormalising.
    """

    def __init__(
        self,
        instance: ProblemInstance,
        *,
        seed: int = 0,
        params: PaperDefaults | None = None,
        zipf_exponent: float = 1.2,
        rotate: int = 0,
        mode: str = "stationary",
        period: int = 120,
        surge: float = 6.0,
    ) -> None:
        if mode not in _TRACE_MODES:
            raise ValidationError(
                f"mode must be one of {_TRACE_MODES}, got {mode!r}"
            )
        check_positive("period", period)
        check_positive("surge", surge)
        self.instance = instance
        self.params = params or PaperDefaults()
        self.mode = mode
        self.period = period
        self.surge = surge
        self._rng = spawn_rng(seed, "serve-load")
        self._dataset_ids = sorted(instance.datasets)
        self._weights = np.roll(
            zipf_weights(len(self._dataset_ids), zipf_exponent),
            rotate % max(1, len(self._dataset_ids)),
        )
        self._flash_target = int(np.argmin(self._weights))
        self._next_id = 0
        topo = instance.topology
        self._cloudlets = list(topo.cloudlets)
        self._data_centers = list(topo.data_centers)

    def _weights_at(self, i: int) -> np.ndarray:
        """Popularity vector governing draw ``i`` under the trace mode."""
        base, n = self._weights, len(self._weights)
        if self.mode == "mobility":
            return base  # popularity is stationary; homes churn instead
        if self.mode == "burst":
            phase = i // self.period
            if phase % 2 == 0:
                return base
            hot = (n // 2 + 5 * (phase // 2)) % n
            w = base.copy()
            w[hot] = self.surge * base.max()
            return w / w.sum()
        if self.mode == "diurnal":
            shift = (i * n) // (2 * self.period) % n
            return np.roll(base, shift)
        # flash-crowd
        if i < self.period:
            return base
        ramp = max(1, self.period // 2)
        gamma = 0.85 * min(1.0, (i - self.period) / ramp)
        w = (1.0 - gamma) * base
        w[self._flash_target] += gamma
        return w / w.sum()

    def _draw_home(self) -> int:
        params, rng = self.params, self._rng
        use_cloudlet = bool(self._cloudlets) and (
            not self._data_centers or rng.random() < params.cloudlet_home_fraction
        )
        pool = self._cloudlets if use_cloudlet else self._data_centers
        index = int(rng.integers(len(pool)))
        if self.mode == "mobility":
            # Home-station churn: the pool rotates one position per
            # ``period`` draws, shifting every draw to a neighbouring
            # station.  The rng call sequence never changes — only the
            # indexing — so the stream is draw-for-draw identical to
            # stationary until the first rotation.
            index = (index + self._next_id // self.period) % len(pool)
        return int(pool[index])

    def make(self) -> Query:
        """Draw the next query of the stream."""
        params, rng = self.params, self._rng
        low, high = params.datasets_per_query
        high = min(high, len(self._dataset_ids))
        low = min(low, high)
        count = int(rng.integers(low, high + 1))
        weights = (
            self._weights
            if self.mode == "stationary"
            else self._weights_at(self._next_id)
        )
        demanded = tuple(
            int(self._dataset_ids[i])
            for i in rng.choice(
                len(self._dataset_ids), size=count, replace=False, p=weights
            )
        )
        selectivity = tuple(
            float(rng.uniform(*params.selectivity)) for _ in demanded
        )
        pivot = max(self.instance.dataset(d).volume_gb for d in demanded)
        deadline = pivot * float(rng.uniform(*params.deadline_s_per_gb))
        query = Query(
            query_id=self._next_id,
            home_node=self._draw_home(),
            demanded=demanded,
            selectivity=selectivity,
            compute_rate=float(rng.uniform(*params.compute_rate)),
            deadline_s=deadline,
            name=f"load-{self._next_id}",
        )
        self._next_id += 1
        return query


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    protocol_errors: int = 0
    duration_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)

    def record(self, response: dict[str, Any], latency_s: float) -> None:
        """Account one submit response."""
        self.submitted += 1
        self.latencies_s.append(latency_s)
        if not response.get("ok", False):
            self.protocol_errors += 1
            return
        result = response.get("result")
        if result == "admitted":
            self.admitted += 1
        elif result == "rejected":
            self.rejected += 1
        elif result == "shed":
            self.shed += 1
        else:
            self.protocol_errors += 1

    def percentile(self, q: float) -> float:
        """Latency percentile ``q`` in seconds (0 with no samples)."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))

    @property
    def shed_rate(self) -> float:
        """Fraction of submissions shed by backpressure."""
        return self.shed / self.submitted if self.submitted else 0.0

    @property
    def throughput_rps(self) -> float:
        """Completed submissions per wall-clock second."""
        return self.submitted / self.duration_s if self.duration_s > 0 else 0.0

    def summary(self) -> dict[str, Any]:
        """JSON-ready digest (what the bench and CLI print)."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "protocol_errors": self.protocol_errors,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "shed_rate": self.shed_rate,
            "latency_p50_ms": self.percentile(50) * 1e3,
            "latency_p99_ms": self.percentile(99) * 1e3,
        }


async def run_closed_loop(
    host: str,
    port: int,
    factory: QueryFactory,
    *,
    num_requests: int,
    concurrency: int = 8,
) -> LoadReport:
    """Closed-loop load: ``concurrency`` workers, one request in flight each.

    Each worker submits, awaits the response, then submits again until the
    shared budget of ``num_requests`` is spent — throughput self-adjusts
    to what the gateway sustains.
    """
    check_positive("num_requests", num_requests)
    check_positive("concurrency", concurrency)
    report = LoadReport()
    remaining = num_requests
    loop = asyncio.get_running_loop()

    async with await GatewayClient.connect(host, port) as client:

        async def worker() -> None:
            nonlocal remaining
            while remaining > 0:
                remaining -= 1
                query = factory.make()
                started = loop.time()
                response = await client.submit(query)
                report.record(response, loop.time() - started)

        started = loop.time()
        await asyncio.gather(*(worker() for _ in range(min(concurrency, num_requests))))
        report.duration_s = loop.time() - started
    return report


async def run_open_loop(
    host: str,
    port: int,
    factory: QueryFactory,
    *,
    num_requests: int,
    rate_rps: float,
    seed: int = 0,
) -> LoadReport:
    """Open-loop load: Poisson arrivals at ``rate_rps``, unconditionally.

    Submissions fire on an exponential-gap clock whether or not earlier
    responses returned, so offered load is independent of service rate —
    queue growth, shedding, and the latency tail are all visible.
    Arrivals are scheduled against absolute deadlines (firing every
    submission whose time has come in one pass), so the offered rate is
    honoured even when the mean gap is below the event loop's sleep
    granularity.
    """
    check_positive("num_requests", num_requests)
    check_positive("rate_rps", rate_rps)
    report = LoadReport()
    fire_at = np.cumsum(
        spawn_rng(seed, "serve-arrivals").exponential(
            1.0 / rate_rps, size=num_requests
        )
    )
    loop = asyncio.get_running_loop()

    async with await GatewayClient.connect(host, port) as client:

        async def one(query: Query) -> None:
            started = loop.time()
            response = await client.submit(query)
            report.record(response, loop.time() - started)

        started = loop.time()
        tasks = []
        fired = 0
        while fired < num_requests:
            elapsed = loop.time() - started
            while fired < num_requests and fire_at[fired] <= elapsed:
                tasks.append(asyncio.create_task(one(factory.make())))
                fired += 1
            if fired < num_requests:
                await asyncio.sleep(fire_at[fired] - (loop.time() - started))
        await asyncio.gather(*tasks)
        report.duration_s = loop.time() - started
    return report
