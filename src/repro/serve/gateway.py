"""The admission gateway: a long-running service over a live cluster.

The gateway owns one :class:`~repro.cluster.state.ClusterState` and
exposes submit/status/snapshot/shutdown over the newline-delimited JSON
protocol (:mod:`repro.serve.protocol`).  Three mechanisms keep it
serviceable under heavy traffic:

* **micro-batching** — submissions are coalesced by a
  :class:`~repro.serve.batcher.MicroBatcher` and admitted a batch at a
  time, so the per-request event-loop overhead (worker wake-up, queue
  round-trip) amortises over the batch and the capacity probe's
  available-compute vector is rebuilt only when an admission actually
  mutates state (releases cannot fire mid-batch — the worker holds the
  loop while a batch runs);
* **backpressure** — the pending queue is bounded and the gateway sheds
  (reject-newest with a ``retry_after_s`` hint derived from queue depth ×
  the observed per-request admission time) once the queue is full or
  allocated compute crosses ``compute_watermark``; queries whose deadline
  is infeasible at *every* node are fast-rejected from the cached latency
  vectors before they ever occupy a queue slot;
* **snapshot persistence** — the state (node ledgers, replicas,
  liveness) is checkpointed atomically every
  ``checkpoint_interval_s`` and on shutdown; a gateway started over an
  existing checkpoint restores a bit-identical
  :class:`~repro.cluster.state.ClusterState` and re-arms a bounded
  recovery hold for every restored allocation.

Admission itself is exactly the online session's rule: a vectorised
pre-probe (any demanded pair with an all-false feasibility mask dooms the
all-or-nothing admission), then the placement rule inside a transaction.
Admitted queries hold their compute for ``hold_factor ×`` their analytic
response latency of wall-clock time, then release.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import json
import math
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.cluster.node import CapacityError, _EPS
from repro.cluster.state import ClusterState, Reservation
from repro.core.instance import ProblemInstance
from repro.core.online import (
    PlacementRule,
    appro_rule,
    greedy_rule,
    ship_greedy_rule,
    sync_greedy_rule,
)
from repro.core.types import Assignment, Query
from repro.io.serialize import atomic_write_text, state_from_dict, state_to_dict
from repro.obs import get_registry
from repro.obs.registry import Summary
from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_request,
    encode_message,
    error_response,
    parse_submit_query,
)
from repro.serve.netfaults import NetFaultConfig, NetFaultDaemon
from repro.serve.preplacer import Preplacer, PreplacerConfig
from repro.serve.reoptimizer import Reoptimizer, ReoptimizerConfig
from repro.serve.screenpool import (
    ScreenPool,
    build_rows,
    screen_rows,
    snapshot_state,
    verdicts_from_pairs,
)
from repro.serve.shm import ScreenStatics
from repro.util.validation import (
    ValidationError,
    check_non_negative,
    check_positive,
)

__all__ = [
    "AdmissionGateway",
    "GatewayConfig",
    "GatewayThread",
    "maybe_install_uvloop",
]

_FORMAT_CHECKPOINT = "repro/serve-checkpoint/v1"

#: Screening engines a gateway can run, by config name.
_ENGINES = ("batch", "legacy")

#: Pool screens re-run after a generation mismatch before the loop gives
#: up and screens inline against the live state.
_MAX_RESCREENS = 3

#: Admission-latency histogram bucket upper bounds (seconds, "le"
#: semantics); the final implicit bucket is the +inf overflow.
_LATENCY_BUCKETS = np.array(
    [
        1e-5, 2e-5, 5e-5,
        1e-4, 2e-4, 5e-4,
        1e-3, 2e-3, 5e-3,
        1e-2, 2e-2, 5e-2,
        0.1, 0.2, 0.5,
        1.0, 2.0, 5.0, 10.0,
    ]
)


def maybe_install_uvloop(enabled: bool = True) -> bool:
    """Install the uvloop event-loop policy when the package is present.

    Returns whether uvloop is now the active policy.  uvloop is an
    optional dependency (``pip install repro[perf]``); without it the
    stdlib selector loop is used and everything behaves identically —
    only event-loop overhead differs.
    """
    if not enabled:
        return False
    try:
        import uvloop  # noqa: PLC0415 - optional dependency probe
    except ImportError:
        return False
    uvloop.install()
    return True


def _finite(value: float) -> float | None:
    """JSON-safe float: ``None`` replaces NaN/inf (empty summaries)."""
    return float(value) if math.isfinite(value) else None


def _summary_payload(summary: Summary) -> dict[str, Any]:
    """Wire form of a P² summary (counts, mean, tracked quantiles)."""
    return {
        "count": summary.count,
        "mean_s": _finite(summary.mean),
        "max_s": _finite(summary.max),
        "p50_s": _finite(summary.quantile(0.5)),
        "p90_s": _finite(summary.quantile(0.9)),
        "p99_s": _finite(summary.quantile(0.99)),
    }


def _histogram_quantile(
    counts: np.ndarray, edges: np.ndarray, q: float
) -> float | None:
    """Upper bucket edge covering quantile ``q`` (None: empty/overflow)."""
    total = int(counts.sum())
    if total == 0:
        return None
    rank = max(1, math.ceil(q * total))
    bucket = int(np.searchsorted(np.cumsum(counts), rank))
    if bucket >= edges.size:
        return None  # the quantile falls in the +inf overflow bucket
    return float(edges[bucket])

#: Placement rules a gateway can run, by config name.
_RULES: dict[str, Callable[[ProblemInstance], PlacementRule]] = {
    "appro": appro_rule,
    "greedy": greedy_rule,
    "greedy-ship": ship_greedy_rule,
    "greedy-sync": sync_greedy_rule,
}


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway tuning knobs.

    Attributes
    ----------
    host, port:
        Bind address; port 0 lets the OS pick (read
        :attr:`AdmissionGateway.address` after start).
    rule:
        Placement rule: ``"appro"`` (primal-dual kernel), ``"greedy"``,
        ``"greedy-ship"`` (greedy with admission-time replication
        paying its shipping latency against the deadline — the rule
        under which proactive pre-placement pays off), or
        ``"greedy-sync"`` (greedy charging the §2.4 consistency tax —
        a horizon of threshold-sized delta syncs from the origin —
        against the deadline when materialising a new copy).
    max_batch, max_wait_ms:
        Micro-batch flush thresholds.  ``max_batch=1`` disables batching
        — the one-at-a-time baseline.  ``max_wait_ms=0`` (default)
        flushes eagerly: a batch is exactly the backlog that accumulated
        while the previous batch was served; a positive value holds the
        flush open for stragglers.
    queue_bound:
        Pending-submission queue capacity; beyond it requests are shed.
    compute_watermark:
        Fraction of total cluster capacity; while allocated compute is at
        or above it, new submissions are shed (admission could only
        thrash).
    hold_factor:
        Wall-clock seconds an admitted query holds its compute, as a
        multiple of its analytic response latency.
    checkpoint_path:
        Where checkpoints are written; ``None`` disables persistence.
    checkpoint_interval_s:
        Period of the background checkpoint loop.
    recovery_hold_s:
        Hold re-armed for allocations restored from a checkpoint (their
        original release timers died with the previous process).
    reopt:
        Live re-optimization daemon config
        (:class:`~repro.serve.reoptimizer.ReoptimizerConfig`); ``None``
        (the default) disables the daemon entirely — the gateway then
        behaves byte-for-byte like the pre-re-optimizer service.
    predict:
        Predictive pre-placement daemon config
        (:class:`~repro.serve.preplacer.PreplacerConfig`); ``None`` (the
        default) disables the daemon entirely — the gateway then behaves
        byte-for-byte like the pre-predictor service.  Independent of
        ``reopt``: the predictor adds copies ahead of forecast demand,
        the re-optimizer migrates them once drift is a fact; both share
        the transactional step machinery and may run together.
    netfaults:
        Live network-dynamics daemon config
        (:class:`~repro.serve.netfaults.NetFaultConfig`); ``None`` (the
        default) disables the daemon entirely — paths are never
        recomputed, the path-cache generation stays 0, and the gateway
        behaves byte-for-byte like the pre-dynamics service.
    screen_engine:
        Batch feasibility screen implementation: ``"batch"`` (default)
        runs the stacked screening kernel of
        :mod:`repro.serve.screenpool` — one fancy-indexed latency matrix
        per micro-batch, decision-identical to the original per-pair
        prefilter (pinned by the parity suites); ``"legacy"`` retains
        that original prefilter verbatim as the bit-parity reference.
    screen_workers:
        Screening parallelism.  ``1`` (default) screens inline on the
        event loop; ``> 1`` preforks that many
        :class:`~repro.serve.screenpool.ScreenPool` worker processes
        screening micro-batch shards against shared-memory state views.
        Workers only *screen* — the admission loop keeps sole commit
        authority, and a screen computed against a stale state
        generation is re-run.
    use_uvloop:
        Install uvloop's event-loop policy when the optional dependency
        is available (``pip install repro[perf]``); silently falls back
        to the stdlib loop otherwise.
    shard_nodes:
        Scope this gateway to a subset of the placement nodes (the
        sharded control plane's per-shard gateways; see
        :mod:`repro.serve.shard`).  ``None`` — the default — serves the
        whole cluster; a subset covering every placement node is
        normalised to full scope, so a 1-shard deployment runs the
        byte-identical single-gateway path.
    shard_id:
        Cosmetic shard label reported in ``status`` (and used by the
        router for per-shard accounting); independent of scoping so a
        1-shard (full-scope) gateway still identifies itself.
    reserve_ttl_s:
        How long a two-phase reservation may stay pending before the
        shard aborts it unilaterally (a router that died mid-protocol
        must not leak capacity forever).  Timeouts are treated as abort
        on both sides.
    """

    host: str = "127.0.0.1"
    port: int = 0
    rule: str = "appro"
    max_batch: int = 16
    max_wait_ms: float = 0.0
    queue_bound: int = 256
    compute_watermark: float = 0.98
    hold_factor: float = 1.0
    checkpoint_path: str | None = None
    checkpoint_interval_s: float = 5.0
    recovery_hold_s: float = 1.0
    reopt: ReoptimizerConfig | None = None
    predict: PreplacerConfig | None = None
    netfaults: NetFaultConfig | None = None
    screen_engine: str = "batch"
    screen_workers: int = 1
    use_uvloop: bool = False
    shard_nodes: tuple[int, ...] | None = None
    shard_id: int | None = None
    reserve_ttl_s: float = 5.0

    def __post_init__(self) -> None:
        if self.rule not in _RULES:
            raise ValidationError(
                f"unknown rule {self.rule!r} (expected one of {sorted(_RULES)})"
            )
        check_positive("max_batch", self.max_batch)
        check_non_negative("max_wait_ms", self.max_wait_ms)
        check_positive("queue_bound", self.queue_bound)
        check_positive("hold_factor", self.hold_factor)
        check_positive("checkpoint_interval_s", self.checkpoint_interval_s)
        check_positive("recovery_hold_s", self.recovery_hold_s)
        if not 0.0 < self.compute_watermark <= 1.0:
            raise ValidationError(
                f"compute_watermark must be in (0, 1], got {self.compute_watermark}"
            )
        if self.screen_engine not in _ENGINES:
            raise ValidationError(
                f"unknown screen_engine {self.screen_engine!r} "
                f"(expected one of {list(_ENGINES)})"
            )
        check_positive("screen_workers", self.screen_workers)
        if self.screen_engine == "legacy" and self.screen_workers > 1:
            raise ValidationError(
                "screen_workers > 1 requires the 'batch' screen_engine "
                "(the pool runs the batch kernel)"
            )
        check_positive("reserve_ttl_s", self.reserve_ttl_s)
        if self.reopt is not None and self.shard_nodes is not None:
            raise ValidationError(
                "re-optimization on a shard-scoped gateway is not supported "
                "(the migration planner assumes whole-cluster replica "
                "authority); run the daemon on an unsharded deployment"
            )
        if self.predict is not None and self.shard_nodes is not None:
            raise ValidationError(
                "predictive pre-placement on a shard-scoped gateway is not "
                "supported (the planner assumes whole-cluster replica "
                "authority); run the daemon on an unsharded deployment"
            )
        if self.netfaults is not None and self.shard_nodes is not None:
            raise ValidationError(
                "network dynamics on a shard-scoped gateway is not supported "
                "(shard gateways share one in-process instance, and a path "
                "recompute would leak degraded delays across shards); run "
                "the daemon on an unsharded deployment"
            )


class _Pending:
    """One queued submission awaiting its batch."""

    __slots__ = ("query", "future", "enqueued_at")

    def __init__(self, query: Query, future: asyncio.Future) -> None:
        self.query = query
        self.future = future
        self.enqueued_at = time.perf_counter()


class AdmissionGateway:
    """Serve admission decisions for one problem instance's cluster.

    Parameters
    ----------
    instance:
        Topology + datasets + ``K`` the cluster serves.  Submitted
        queries are *ad hoc* — they need not appear in
        ``instance.queries``; they only have to reference the instance's
        datasets and placement nodes.
    config:
        Tuning knobs; see :class:`GatewayConfig`.
    """

    def __init__(
        self, instance: ProblemInstance, config: GatewayConfig | None = None
    ) -> None:
        self.instance = instance
        self.config = config or GatewayConfig()
        self.state = ClusterState(instance, shard_nodes=self.config.shard_nodes)
        #: Normalised shard scope (``None`` = full cluster, including a
        #: configured subset that covered every placement node).
        self.shard_nodes = self.state.shard_nodes
        self.recovered = False
        self._rule: PlacementRule = _RULES[self.config.rule](instance)
        self._batcher: MicroBatcher[_Pending] = MicroBatcher(
            max_batch=self.config.max_batch,
            max_wait_s=self.config.max_wait_ms / 1000.0,
            queue_bound=self.config.queue_bound,
        )
        if self.shard_nodes is None:
            self._total_capacity = float(instance.capacities.sum())
        else:
            self._total_capacity = float(
                sum(n.capacity_ghz for n in self.state.nodes.values())
            )
        self.counters: dict[str, int] = {
            "submitted": 0,
            "admitted": 0,
            "rejected": 0,
            "fast_rejected": 0,
            "shed": 0,
            "protocol_errors": 0,
            "admit_errors": 0,
            "task_crashes": 0,
            "batches": 0,
            "checkpoints": 0,
        }
        # Cached pair-latency vectors keyed by (dataset, home, selectivity):
        # state-independent, so they survive any amount of churn.  Zipf
        # traffic repeats keys heavily, which is what makes the SLO
        # fast-reject and the admission probe cheap at p99.  The cache is
        # additionally stamped with the path-cache generation: a network
        # dynamics recompute bumps the generation and the next probe
        # rebuilds from the degraded delays (generation 0 forever — and
        # hence the original behaviour — without the dynamics daemon).
        self._latency_cache: dict[tuple[int, int, float], np.ndarray] = {}
        self._latency_generation = instance.paths.generation
        self._statics: ScreenStatics | None = (
            ScreenStatics.from_instance(instance, shard_nodes=self.shard_nodes)
            if self.config.screen_engine == "batch"
            else None
        )
        self._pool: ScreenPool | None = None
        # Stale-view re-screens live outside ``counters`` on purpose:
        # checkpoints serialise ``counters`` and must stay byte-identical
        # across engines.
        self.screen_stale_rescreens = 0
        self._screen_s = Summary()
        self._commit_s = Summary()
        self._latency_hist = np.zeros(_LATENCY_BUCKETS.size + 1, dtype=np.int64)
        self._ewma_admission_s = 0.001  # seed estimate for retry_after hints
        self._started_at: float | None = None
        self._server: asyncio.base_events.Server | None = None
        self._peers: set[asyncio.StreamWriter] = set()
        self._tasks: list[asyncio.Task] = []
        self._holds: dict[int, asyncio.TimerHandle] = {}
        self._inflight: dict[int, tuple[Assignment, ...]] = {}
        # Home node per in-flight query (the dynamics daemon's severed-
        # path invariant needs it; ad-hoc queries are not in
        # ``instance.queries``).  Recovered holds have no recorded home
        # and are exempt from the path check for their grace period.
        self._inflight_homes: dict[int, int] = {}
        self._reserved_homes: dict[str, int] = {}
        # Two-phase reservation accounting lives outside ``counters`` for
        # the same reason as ``screen_stale_rescreens``: checkpoints
        # serialise ``counters`` and their bytes must not depend on
        # whether a deployment is sharded.
        self.reserve_counters: dict[str, int] = {
            "reserved": 0,
            "committed": 0,
            "aborted": 0,
            "expired": 0,
            "rejected": 0,
        }
        self._reservation_timers: dict[str, asyncio.TimerHandle] = {}
        self._closed = asyncio.Event()
        self._stopping = False
        self.reoptimizer: Reoptimizer | None = (
            Reoptimizer(self, self.config.reopt)
            if self.config.reopt is not None
            else None
        )
        self.preplacer: Preplacer | None = (
            Preplacer(self, self.config.predict)
            if self.config.predict is not None
            else None
        )
        self.netfaults: NetFaultDaemon | None = (
            NetFaultDaemon(self, self.config.netfaults)
            if self.config.netfaults is not None
            else None
        )
        if self.config.checkpoint_path is not None:
            path = Path(self.config.checkpoint_path)
            if path.exists():
                self._restore_checkpoint(path)

    # -- checkpointing -----------------------------------------------------

    def _restore_checkpoint(self, path: Path) -> None:
        payload = json.loads(path.read_text())
        fmt = payload.get("format")
        if fmt != _FORMAT_CHECKPOINT:
            raise ValidationError(
                f"expected format {_FORMAT_CHECKPOINT!r}, got {fmt!r}"
            )
        self.state = state_from_dict(
            payload["state"], self.instance, shard_nodes=self.config.shard_nodes
        )
        for name, value in payload["counters"].items():
            if name in self.counters:
                self.counters[name] = int(value)
        self.recovered = True

    def checkpoint(self) -> Path:
        """Write a checkpoint now (atomic); returns the path written."""
        if self.config.checkpoint_path is None:
            raise ValidationError("gateway has no checkpoint_path configured")
        path = Path(self.config.checkpoint_path)
        payload = {
            "format": _FORMAT_CHECKPOINT,
            "state": state_to_dict(self.state),
            "counters": dict(self.counters),
        }
        atomic_write_text(path, json.dumps(payload, indent=1))
        self.counters["checkpoints"] += 1
        get_registry().inc("serve.checkpoints")
        return path

    def _rearm_recovered_holds(self) -> None:
        """Give restored allocations a bounded hold, then release them.

        The previous process's release timers are gone; rather than leak
        the compute forever, every allocation found in the checkpoint is
        released ``recovery_hold_s`` after startup (queries they belonged
        to were admitted — their service is honoured for the grace
        period, not dishonoured retroactively).
        """
        loop = asyncio.get_running_loop()
        tags = [
            tag
            for ledger in self.state.nodes.values()
            for tag in ledger.allocation_tags()
        ]
        by_query: dict[int, list[tuple[int, int]]] = {}
        for q_id, d_id in tags:
            by_query.setdefault(q_id, []).append((q_id, d_id))
        for q_id, q_tags in by_query.items():
            handle = loop.call_later(
                self.config.recovery_hold_s,
                lambda q=q_id, ts=tuple(q_tags): self._release_tags(q, ts),
            )
            self._holds[q_id] = handle

    def _release_tags(self, q_id: int, tags: tuple[tuple[int, int], ...]) -> None:
        self._holds.pop(q_id, None)
        self._inflight.pop(q_id, None)
        self._inflight_homes.pop(q_id, None)
        for node_id, ledger in self.state.nodes.items():
            for tag in tags:
                if tag in ledger.allocation_tags():
                    ledger.release(tag)

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """Bound (host, port) — valid after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("gateway is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        """Bind the listener and spawn the worker/checkpoint tasks."""
        self._started_at = time.perf_counter()
        if self.config.screen_workers > 1 and self._pool is None:
            assert self._statics is not None  # enforced by GatewayConfig
            self._pool = ScreenPool(self._statics, self.config.screen_workers)
            self._pool.start()
        # The reader limit matches the protocol's hard line bound, so an
        # unframed peer overruns the buffer exactly when the protocol
        # would reject the line anyway — and gets an error response
        # instead of an unexplained disconnect (see _handle_connection).
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )
        if self.recovered:
            self._rearm_recovered_holds()
        self._tasks.append(asyncio.create_task(self._admission_worker()))
        if self.config.checkpoint_path is not None:
            self._tasks.append(asyncio.create_task(self._checkpoint_loop()))
        if self.reoptimizer is not None:
            self._tasks.append(asyncio.create_task(self.reoptimizer.run()))
        if self.preplacer is not None:
            self._tasks.append(asyncio.create_task(self.preplacer.run()))
        if self.netfaults is not None:
            self._tasks.append(asyncio.create_task(self.netfaults.run()))

    async def stop(self) -> None:
        """Checkpoint (when configured), stop accepting, cancel workers."""
        if self._server is None:
            return
        if self._stopping:
            # A shutdown request and GatewayThread.stop can race; the
            # second caller waits for the first teardown, never re-runs it.
            await self._closed.wait()
            return
        self._stopping = True
        try:
            self._server.close()
            await self._server.wait_closed()
            # Drop open peer connections too: a stopped shard must look
            # dead to a router holding a pooled link, not keep serving
            # reserves.
            for peer in list(self._peers):
                peer.close()
            for pending in self._batcher.drain_nowait():
                if not pending.future.done():
                    pending.future.set_result(self._shed_response())
            for task in self._tasks:
                task.cancel()
            for task in self._tasks:
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                except Exception:
                    # A background task that already died must not wedge
                    # shutdown — record it and keep tearing down.
                    traceback.print_exc()
                    self.counters["task_crashes"] += 1
                    get_registry().inc("serve.task_crashes")
            self._tasks.clear()
            for handle in self._holds.values():
                handle.cancel()
            for handle in self._reservation_timers.values():
                handle.cancel()
            self._reservation_timers.clear()
            if self._pool is not None:
                self._pool.close()
                self._pool = None
            if (
                self.netfaults is not None
                and self.instance.paths.generation > 0
            ):
                # Hand the (possibly shared) instance back with pristine
                # delays: value-parity with a never-degraded cache, only
                # the generation stamp records that dynamics ran.
                self.netfaults.link_state.restore_all()
                self.instance.paths.recompute(
                    self.netfaults.link_state.effective_delays()
                )
            if self.config.checkpoint_path is not None:
                self.checkpoint()
        finally:
            # Whatever teardown raised, waiters (main(), GatewayThread,
            # ShardCluster) must unblock or shutdown hangs forever.
            self._closed.set()

    async def wait_closed(self) -> None:
        """Block until :meth:`stop` (or a shutdown request) completes."""
        await self._closed.wait()

    async def run_for(self, duration_s: float) -> None:
        """Serve (already started) for at most ``duration_s``, then stop.

        Returns early if a shutdown request stops the gateway first.
        """
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(self._closed.wait(), timeout=duration_s)
        if not self._closed.is_set():
            await self.stop()

    async def run(self, duration_s: float | None = None) -> None:
        """Start, serve until shutdown (or for ``duration_s``), stop."""
        await self.start()
        if duration_s is None:
            await self.wait_closed()
        else:
            await self.run_for(duration_s)

    async def _checkpoint_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.checkpoint_interval_s)
            self.checkpoint()

    # -- feasibility probes ------------------------------------------------

    def refresh_network_statics(self) -> bool:
        """Rebuild latency-derived statics after a path recompute.

        Called by the dynamics daemon once per epoch bump.  The cached
        latency vectors invalidate lazily (generation check in
        :meth:`_latency_vector`); the screening statics rebuild eagerly
        because pool workers hold them by value — when a pool is live it
        is restarted over the new tables.  Returns whether a pool
        restart happened.
        """
        if self._statics is not None:
            self._statics = ScreenStatics.from_instance(
                self.instance, shard_nodes=self.shard_nodes
            )
        if self._pool is not None:
            self._pool.close()
            self._pool = ScreenPool(self._statics, self.config.screen_workers)
            self._pool.start()
            return True
        return False

    def _latency_vector(self, query: Query, dataset_id: int) -> np.ndarray:
        """Cached analytic pair-latency vector (placement order)."""
        generation = self.instance.paths.generation
        if generation != self._latency_generation:
            self._latency_cache.clear()
            self._latency_generation = generation
        alpha = query.alpha_for(dataset_id)
        key = (dataset_id, query.home_node, alpha)
        vec = self._latency_cache.get(key)
        if vec is None:
            vec = self.instance.pair_latency_vector(
                query, self.instance.dataset(dataset_id)
            )
            vec.flags.writeable = False
            self._latency_cache[key] = vec
        return vec

    def _deadline_infeasible(self, query: Query) -> bool:
        """SLO fast-reject: some demanded pair misses its deadline at
        *every* placement node — state-free, so no queueing is needed."""
        return any(
            float(self._latency_vector(query, d_id).min()) > query.deadline_s
            for d_id in query.demanded
        )

    def _probe_mask(
        self, query: Query, dataset_id: int, available: np.ndarray
    ) -> np.ndarray:
        """:meth:`ClusterState.can_serve_mask` with a caller-held
        available-compute vector (shared across a batch) and the cached
        latency vector — element-for-element identical (pinned by
        ``tests/serve/test_gateway.py``)."""
        state, inst = self.state, self.instance
        dataset = inst.dataset(dataset_id)
        demand = dataset.volume_gb * query.compute_rate
        mask = demand <= available + _EPS * inst.capacities
        holders = state.replicas.nodes(dataset_id)
        if state.replicas.remaining_slots(dataset_id) <= 0:
            has_replica = np.zeros(inst.num_placement_nodes, dtype=bool)
            if holders:
                node_index = inst.node_index
                has_replica[[node_index[v] for v in holders]] = True
            mask &= has_replica
        if state.has_down_nodes:
            mask &= state.up_mask()
            if not state.has_live_copy(dataset_id):
                mask &= False
        return mask & (self._latency_vector(query, dataset_id) <= query.deadline_s)

    def _dataset_gate(self, dataset_id: int) -> np.ndarray | None:
        """Replica-slot + liveness node gate for one dataset.

        ``None`` means every node passes (slots remain, no nodes down) —
        the common case, kept allocation-free.
        """
        state, inst = self.state, self.instance
        gate: np.ndarray | None = None
        if state.replicas.remaining_slots(dataset_id) <= 0:
            gate = np.zeros(inst.num_placement_nodes, dtype=bool)
            holders = state.replicas.nodes(dataset_id)
            if holders:
                gate[[inst.node_index[v] for v in holders]] = True
        if state.has_down_nodes:
            up = state.up_mask()
            gate = up if gate is None else gate & up
            if not state.has_live_copy(dataset_id):
                gate = np.zeros(inst.num_placement_nodes, dtype=bool)
        return gate

    def _prefilter(
        self, batch: list[_Pending], available: np.ndarray
    ) -> list[bool]:
        """Vectorised batch-start feasibility screen.

        All of the batch's (query, dataset) pairs are checked in one
        stacked pass — capacity, deadline, replica-slot and liveness — so
        the per-pair numpy call overhead amortises over the batch.  The
        screen is evaluated against batch-start state: since feasibility
        only *shrinks* while the batch is served (admissions consume
        capacity and replica slots; releases cannot fire mid-batch), a
        ``False`` here is exact, while a ``True`` is optimistic and is
        re-checked on the admission path.
        """
        inst = self.instance
        pairs: list[tuple[int, int, Query]] = [
            (i, d_id, pending.query)
            for i, pending in enumerate(batch)
            for d_id in pending.query.demanded
        ]
        num_nodes = inst.num_placement_nodes
        latency = np.empty((len(pairs), num_nodes))
        demand = np.empty(len(pairs))
        deadline = np.empty(len(pairs))
        for row, (_, d_id, query) in enumerate(pairs):
            latency[row] = self._latency_vector(query, d_id)
            demand[row] = inst.dataset(d_id).volume_gb * query.compute_rate
            deadline[row] = query.deadline_s
        node_ok = demand[:, None] <= available[None, :] + _EPS * inst.capacities
        node_ok &= latency <= deadline[:, None]
        gates: dict[int, np.ndarray | None] = {}
        for row, (_, d_id, _query) in enumerate(pairs):
            if d_id not in gates:
                gates[d_id] = self._dataset_gate(d_id)
            if gates[d_id] is not None:
                node_ok[row] &= gates[d_id]
        pair_ok = node_ok.any(axis=1)
        verdict = [True] * len(batch)
        for row, (i, _d_id, _query) in enumerate(pairs):
            if not pair_ok[row]:
                verdict[i] = False
        return verdict

    async def _screen(
        self, batch: list[_Pending], available: np.ndarray
    ) -> list[bool]:
        """Batch feasibility screen via the configured engine.

        ``legacy`` runs the original per-pair prefilter; ``batch`` runs
        the stacked kernel — inline (synchronously, preserving the
        no-mid-batch-mutation invariant) for ``screen_workers == 1``, or
        through the prefork pool otherwise.  All three produce the same
        verdicts for the same state (pinned by the parity suites).
        """
        if self.config.screen_engine == "legacy":
            return self._prefilter(batch, available)
        assert self._statics is not None
        rows = build_rows([p.query for p in batch], self._statics)
        if self._pool is not None:
            verdict = await self._screen_pooled(rows, len(batch))
            if verdict is not None:
                return verdict
        view = snapshot_state(self.state, self._statics)
        pair_ok = screen_rows(self._statics, view, rows)
        return verdicts_from_pairs(rows, pair_ok, len(batch))

    async def _screen_pooled(self, rows, batch_size: int) -> list[bool] | None:
        """One pooled screen round-trip with stale-view detection.

        Publishes the live arrays, fans the pair rows out to the workers
        (off-loop, so timers keep firing), and accepts the verdicts only
        if no state mutation raced the screen — the generation stamp the
        workers echo back and the live state's generation must both still
        match the published one.  After ``_MAX_RESCREENS`` stale rounds
        the caller screens inline against the live state instead
        (``None``).
        """
        assert self._pool is not None
        obs = get_registry()
        loop = asyncio.get_running_loop()
        for _ in range(_MAX_RESCREENS):
            published = self._pool.publish(self.state)
            pair_ok, oldest = await loop.run_in_executor(
                None, self._pool.screen, rows, published
            )
            if oldest >= published and self.state.generation == published:
                return verdicts_from_pairs(rows, pair_ok, batch_size)
            self.screen_stale_rescreens += 1
            obs.inc("serve.screen.stale_rescreens")
        return None

    # -- admission ---------------------------------------------------------

    def _admit_one(
        self, pending: _Pending, available: np.ndarray, *, probe: bool = True
    ) -> tuple[dict[str, Any], np.ndarray | None]:
        """Decide one submission; returns (response, fresh avail or None).

        A ``None`` second element means state did not change and the
        caller's available vector remains valid for the rest of the batch.
        ``probe=False`` skips the per-pair pre-probe when the caller's
        batch prefilter verdict is still exact (no mid-batch mutation) —
        the placement rule remains the authoritative feasibility check.
        """
        query = pending.query
        state = self.state
        fresh: np.ndarray | None = None
        if query.query_id in self._holds:
            # A live hold under this id (client retry, or a replayed
            # workload over a recovered checkpoint) would collide with
            # the new placement's allocation tags inside ``serve()``.
            # Latest decision wins: evict the old hold first, then
            # re-probe against the freed capacity.
            self._evict_hold(query.query_id)
            available = fresh = state.available_array()
            probe = True
        if probe:
            for d_id in query.demanded:
                if not self._probe_mask(query, d_id, available).any():
                    return self._rejected_response(), fresh
        assignments: list[Assignment] = []
        failed = False
        with state.transaction() as txn:
            for d_id in query.demanded:
                a = self._rule(state, query, d_id)
                if a is None:
                    failed = True
                    break
                assignments.append(a)
            if not failed:
                txn.commit()
        if failed:
            return self._rejected_response(), state.available_array()
        response_s = max(a.latency_s for a in assignments)
        self._arm_hold(query.query_id, tuple(assignments), response_s)
        self._inflight_homes[query.query_id] = query.home_node
        return (
            {
                "result": "admitted",
                "response_s": response_s,
                "assignments": [
                    {
                        "dataset_id": a.dataset_id,
                        "node": a.node,
                        "latency_s": a.latency_s,
                        "compute_ghz": a.compute_ghz,
                    }
                    for a in assignments
                ],
            },
            state.available_array(),
        )

    def _arm_hold(
        self, q_id: int, assignments: tuple[Assignment, ...], response_s: float
    ) -> None:
        if q_id in self._holds:  # stale id reuse: release the old hold now
            self._evict_hold(q_id)
        self._inflight[q_id] = assignments
        loop = asyncio.get_running_loop()
        self._holds[q_id] = loop.call_later(
            response_s * self.config.hold_factor,
            lambda: self._release_query(q_id),
        )

    def _evict_hold(self, q_id: int) -> None:
        """Release everything a live hold for ``q_id`` still pins.

        Holds armed this process track their allocations in
        ``_inflight``; recovered holds track only ledger tags (the
        checkpoint records allocations, not ``Assignment`` receipts), so
        after the ``_inflight`` release any tag still carrying ``q_id``
        is swept from the ledgers directly.
        """
        handle = self._holds.pop(q_id, None)
        if handle is not None:
            handle.cancel()
        self._inflight_homes.pop(q_id, None)
        for a in self._inflight.pop(q_id, ()):
            with contextlib.suppress(CapacityError):
                self.state.release(a)
        swept = False
        for ledger in self.state.nodes.values():
            for tag in [t for t in ledger.allocation_tags() if t[0] == q_id]:
                ledger.release(tag)
                swept = True
        if swept:
            self.state.touch()

    def _release_query(self, q_id: int) -> None:
        self._holds.pop(q_id, None)
        self._inflight_homes.pop(q_id, None)
        for a in self._inflight.pop(q_id, ()):
            # A crash may have evicted the tag already (the hold timer
            # outlives the allocation it guards); releasing twice is fine.
            with contextlib.suppress(CapacityError):
                self.state.release(a)

    # -- two-phase reservations (cross-shard admission) --------------------
    #
    # The front router (repro.serve.router) splits a cross-shard query's
    # demanded datasets across the shards that can serve them and runs a
    # saga in miniature: reserve on every touched shard, commit on
    # unanimous accept, abort otherwise.  Each handler below is fully
    # synchronous (no awaits between probe and commit), so a reservation
    # can never interleave with the admission worker's batch — the same
    # event-loop atomicity the inline screen relies on.  Reserves mutate
    # state through ``serve()``, which bumps the generation stamp, so a
    # pooled screen that raced one is detected and re-run.

    @staticmethod
    def _assignment_payload(assignments: tuple[Assignment, ...]) -> list[dict]:
        return [
            {
                "dataset_id": a.dataset_id,
                "node": a.node,
                "latency_s": a.latency_s,
                "compute_ghz": a.compute_ghz,
            }
            for a in assignments
        ]

    def _reserve_query(
        self, reservation_id: str, query: Query, dataset_ids: tuple[int, ...]
    ) -> dict[str, Any]:
        """Phase one: provisionally admit a query's dataset subset.

        Applies the placement for real (the resources are held from this
        instant), records a :class:`~repro.cluster.state.Reservation`
        receipt, and arms the TTL abort timer.  Rejections leave state
        untouched (the transaction rolls back).
        """
        obs = get_registry()
        state = self.state
        if state.has_reservation(reservation_id):
            raise ProtocolError(
                f"reservation {reservation_id!r} is already pending"
            )
        if query.query_id in self._holds:
            # Same latest-wins rule as _admit_one: a live hold under this
            # id would collide with the reserve's allocation tags.
            self._evict_hold(query.query_id)
        available = state.available_array()
        for d_id in dataset_ids:
            if not self._probe_mask(query, d_id, available).any():
                self.reserve_counters["rejected"] += 1
                obs.inc("serve.reserve.rejected")
                return self._rejected_response()
        pre_holders = {d_id: state.replicas.nodes(d_id) for d_id in dataset_ids}
        assignments: list[Assignment] = []
        failed = False
        with state.transaction() as txn:
            for d_id in dataset_ids:
                a = self._rule(state, query, d_id)
                if a is None:
                    failed = True
                    break
                assignments.append(a)
            if not failed:
                txn.commit()
        if failed:
            self.reserve_counters["rejected"] += 1
            obs.inc("serve.reserve.rejected")
            return self._rejected_response()
        # Every copy that exists now but not before the reserve belongs
        # to it — including copies a rule's walk placed on nodes it did
        # not assign (the greedy rule does this), so an abort can undo
        # them all.
        placed = tuple(
            sorted(
                (d_id, v)
                for d_id in dataset_ids
                for v in state.replicas.nodes(d_id) - pre_holders[d_id]
            )
        )
        state.record_reservation(
            Reservation(
                reservation_id=reservation_id,
                query_id=query.query_id,
                assignments=tuple(assignments),
                placed=placed,
            )
        )
        self._arm_reservation_ttl(reservation_id)
        self._reserved_homes[reservation_id] = query.home_node
        self.reserve_counters["reserved"] += 1
        obs.inc("serve.reserve.reserved")
        return {
            "result": "reserved",
            "assignments": self._assignment_payload(tuple(assignments)),
        }

    def _arm_reservation_ttl(self, reservation_id: str) -> None:
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return  # synchronous harness: expiry is driven manually
        self._reservation_timers[reservation_id] = loop.call_later(
            self.config.reserve_ttl_s,
            lambda: self._expire_reservation(reservation_id),
        )

    def _expire_reservation(self, reservation_id: str) -> None:
        """TTL fired: the router went silent — treat the timeout as abort."""
        self._reservation_timers.pop(reservation_id, None)
        self._reserved_homes.pop(reservation_id, None)
        if self.state.abort_reservation(reservation_id) is not None:
            self.reserve_counters["expired"] += 1
            get_registry().inc("serve.reserve.expired")

    def _commit_reservation(self, reservation_id: str) -> dict[str, Any]:
        """Phase two, success: the resources stay held under a hold timer."""
        timer = self._reservation_timers.pop(reservation_id, None)
        if timer is not None:
            timer.cancel()
        try:
            reservation = self.state.commit_reservation(reservation_id)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from None
        response_s = max(a.latency_s for a in reservation.assignments)
        self._arm_hold(
            reservation.query_id, reservation.assignments, response_s
        )
        home = self._reserved_homes.pop(reservation_id, None)
        if home is not None:
            self._inflight_homes[reservation.query_id] = home
        self.reserve_counters["committed"] += 1
        get_registry().inc("serve.reserve.committed")
        return {
            "committed": True,
            "response_s": response_s,
            "assignments": self._assignment_payload(reservation.assignments),
        }

    def _abort_reservation(self, reservation_id: str) -> dict[str, Any]:
        """Phase two, failure: precise undo.  Idempotent by design —
        the router aborts best-effort after timeouts, and the TTL may
        have expired the reservation first."""
        timer = self._reservation_timers.pop(reservation_id, None)
        if timer is not None:
            timer.cancel()
        self._reserved_homes.pop(reservation_id, None)
        if self.state.abort_reservation(reservation_id) is None:
            return {"found": False}
        self.reserve_counters["aborted"] += 1
        get_registry().inc("serve.reserve.aborted")
        return {"found": True}

    @staticmethod
    def _rejected_response() -> dict[str, Any]:
        return {"result": "rejected", "reason": "infeasible"}

    def _shed_response(self) -> dict[str, Any]:
        retry = max(
            (self._batcher.depth + 1) * self._ewma_admission_s, 0.001
        )
        return {"result": "shed", "retry_after_s": retry}

    def _overloaded(self) -> bool:
        return (
            self.state.total_allocated()
            >= self.config.compute_watermark * self._total_capacity
        )

    async def _admission_worker(self) -> None:
        obs = get_registry()
        latencies: list[float] = []
        while True:
            batch = await self._batcher.next_batch()
            started = time.perf_counter()
            self.counters["batches"] += 1
            obs.observe("serve.batch_size", len(batch))
            available = self.state.available_array()
            feasible = await self._screen(batch, available)
            if self._pool is not None:
                # Holds may have released while the pool screened;
                # refresh so the per-item probes see the live vector.
                available = self.state.available_array()
            screened = time.perf_counter()
            mutated = False
            latencies.clear()
            for pending, prefilter_ok in zip(batch, feasible):
                if self.reoptimizer is not None:
                    self.reoptimizer.observe(pending.query)
                if self.preplacer is not None:
                    self.preplacer.observe(pending.query)
                if not prefilter_ok:
                    response = self._rejected_response()
                else:
                    # The prefilter verdict is exact until an admission
                    # mutates state mid-batch; after that, re-probe.
                    try:
                        response, fresh = self._admit_one(
                            pending, available, probe=mutated
                        )
                    except Exception:
                        # One poisoned query must not kill the worker
                        # (every later submission would then hang): the
                        # transaction rolled its partial effects back,
                        # so answer rejected and keep serving.
                        traceback.print_exc()
                        self.counters["admit_errors"] += 1
                        obs.inc("serve.admit_errors")
                        response = self._rejected_response()
                        fresh = self.state.available_array()
                    if fresh is not None:
                        available = fresh
                        mutated = True
                result = response["result"]
                self.counters[result] += 1
                obs.inc(f"serve.{result}")
                latencies.append(time.perf_counter() - pending.enqueued_at)
                obs.observe("serve.admission_s", latencies[-1])
                if not pending.future.done():
                    pending.future.set_result(response)
            finished = time.perf_counter()
            self._screen_s.observe(screened - started)
            self._commit_s.observe(finished - screened)
            obs.observe("serve.screen.screen_s", screened - started)
            obs.observe("serve.screen.commit_s", finished - screened)
            self._latency_hist += np.bincount(
                np.searchsorted(_LATENCY_BUCKETS, latencies, side="left"),
                minlength=self._latency_hist.size,
            )
            per_item = (finished - started) / len(batch)
            self._ewma_admission_s += 0.2 * (per_item - self._ewma_admission_s)
            obs.set_gauge("serve.queue_depth", self._batcher.depth)
            obs.set_gauge("serve.inflight_ghz", self.state.total_allocated())

    # -- protocol ----------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        obs = get_registry()
        write_lock = asyncio.Lock()
        message_tasks: set[asyncio.Task] = set()
        self._peers.add(writer)

        async def respond(payload: dict[str, Any]) -> None:
            async with write_lock:
                writer.write(encode_message(payload))
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                except ValueError:
                    # The peer streamed more than MAX_LINE_BYTES without
                    # a newline (the reader limit matches the protocol
                    # bound).  The overrun buffer was discarded, so the
                    # stream is desynced: report the protocol error,
                    # then close rather than misparse what follows.
                    self.counters["protocol_errors"] += 1
                    obs.inc("serve.protocol_errors")
                    with contextlib.suppress(Exception):
                        await respond(
                            error_response(
                                None,
                                f"message exceeds {MAX_LINE_BYTES} bytes",
                            )
                        )
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                try:
                    request = decode_request(line)
                except ProtocolError as exc:
                    self.counters["protocol_errors"] += 1
                    obs.inc("serve.protocol_errors")
                    await respond(error_response(None, str(exc)))
                    continue
                task = asyncio.create_task(self._dispatch(request, respond))
                message_tasks.add(task)
                task.add_done_callback(message_tasks.discard)
        except asyncio.CancelledError:
            # Loop teardown cancels open connection handlers; exit
            # cleanly so the cancellation never reaches the stream
            # protocol's done-callback (which would log a traceback).
            pass
        finally:
            self._peers.discard(writer)
            for task in message_tasks:
                task.cancel()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(
        self,
        request: dict[str, Any],
        respond: Callable[[dict[str, Any]], Any],
    ) -> None:
        obs = get_registry()
        request_id = request["id"]
        op = request["op"]
        try:
            if op == "submit":
                self.counters["submitted"] += 1
                obs.inc("serve.submitted")
                query = parse_submit_query(request)
                if self._deadline_infeasible(query):
                    self.counters["fast_rejected"] += 1
                    obs.inc("serve.fast_rejected")
                    await respond(
                        {
                            "id": request_id,
                            "ok": True,
                            "result": "rejected",
                            "reason": "deadline-infeasible",
                        }
                    )
                    return
                if self._overloaded():
                    self.counters["shed"] += 1
                    obs.inc("serve.shed")
                    await respond(
                        {"id": request_id, "ok": True, **self._shed_response()}
                    )
                    return
                future: asyncio.Future = asyncio.get_running_loop().create_future()
                if not self._batcher.offer(_Pending(query, future)):
                    self.counters["shed"] += 1
                    obs.inc("serve.shed")
                    await respond(
                        {"id": request_id, "ok": True, **self._shed_response()}
                    )
                    return
                response = await future
                await respond({"id": request_id, "ok": True, **response})
            elif op == "status":
                await respond({"id": request_id, "ok": True, **self.status()})
            elif op == "snapshot":
                path = self.checkpoint()
                await respond({"id": request_id, "ok": True, "path": str(path)})
            elif op == "reopt":
                if self.reoptimizer is None:
                    await respond(
                        error_response(request_id, "re-optimizer not enabled")
                    )
                    return
                report = await self.reoptimizer.run_cycle(
                    force=bool(request.get("force", False))
                )
                await respond(
                    {"id": request_id, "ok": True, **report.to_dict()}
                )
            elif op == "predict":
                if self.preplacer is None:
                    await respond(
                        error_response(request_id, "predictor not enabled")
                    )
                    return
                report = await self.preplacer.run_cycle(
                    force=bool(request.get("force", False))
                )
                await respond(
                    {"id": request_id, "ok": True, **report.to_dict()}
                )
            elif op == "netfault":
                if self.netfaults is None:
                    await respond(
                        error_response(
                            request_id, "network dynamics not enabled"
                        )
                    )
                    return
                report = await self.netfaults.run_cycle(
                    force=bool(request.get("force", False))
                )
                await respond(
                    {"id": request_id, "ok": True, **report.to_dict()}
                )
            elif op == "reserve":
                query = parse_submit_query(request)
                reservation_id = request.get("reservation_id")
                if not isinstance(reservation_id, str) or not reservation_id:
                    raise ProtocolError(
                        "reserve request carries no reservation_id"
                    )
                raw_ids = request.get("dataset_ids")
                if not isinstance(raw_ids, list) or not raw_ids:
                    raise ProtocolError("reserve request carries no dataset_ids")
                dataset_ids = tuple(raw_ids)
                demanded = set(query.demanded)
                if len(set(dataset_ids)) != len(dataset_ids) or any(
                    d not in demanded for d in dataset_ids
                ):
                    raise ProtocolError(
                        "dataset_ids must be a duplicate-free subset of the "
                        "query's demanded datasets"
                    )
                if self._overloaded():
                    self.reserve_counters["rejected"] += 1
                    obs.inc("serve.reserve.rejected")
                    await respond(
                        {"id": request_id, "ok": True, **self._shed_response()}
                    )
                    return
                response = self._reserve_query(
                    reservation_id, query, dataset_ids
                )
                await respond({"id": request_id, "ok": True, **response})
            elif op == "commit":
                reservation_id = request.get("reservation_id")
                if not isinstance(reservation_id, str) or not reservation_id:
                    raise ProtocolError(
                        "commit request carries no reservation_id"
                    )
                response = self._commit_reservation(reservation_id)
                await respond({"id": request_id, "ok": True, **response})
            elif op == "abort":
                reservation_id = request.get("reservation_id")
                if not isinstance(reservation_id, str) or not reservation_id:
                    raise ProtocolError(
                        "abort request carries no reservation_id"
                    )
                response = self._abort_reservation(reservation_id)
                await respond({"id": request_id, "ok": True, **response})
            elif op == "shutdown":
                await respond({"id": request_id, "ok": True, "stopping": True})
                asyncio.create_task(self.stop())
        except ProtocolError as exc:
            self.counters["protocol_errors"] += 1
            obs.inc("serve.protocol_errors")
            await respond(error_response(request_id, str(exc)))
        except ValidationError as exc:
            await respond(error_response(request_id, str(exc)))

    # -- introspection -----------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Service health snapshot (the ``status`` op's payload)."""
        uptime = (
            time.perf_counter() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        counts = self._latency_hist
        payload = {
            "uptime_s": uptime,
            "queue_depth": self._batcher.depth,
            "inflight_queries": len(self._inflight),
            "inflight_ghz": self.state.total_allocated(),
            "total_capacity_ghz": self._total_capacity,
            "down_nodes": sorted(self.state.down_nodes()),
            "recovered": self.recovered,
            "counters": dict(self.counters),
            "screen": {
                "engine": self.config.screen_engine,
                "workers": self.config.screen_workers,
                "stale_rescreens": self.screen_stale_rescreens,
                "screen_s": _summary_payload(self._screen_s),
                "commit_s": _summary_payload(self._commit_s),
            },
            "admission_latency": {
                # counts[i] ≤ buckets_le_s[i]; the trailing count is the
                # +inf overflow bucket.
                "buckets_le_s": _LATENCY_BUCKETS.tolist(),
                "counts": counts.tolist(),
                "p50_s": _histogram_quantile(counts, _LATENCY_BUCKETS, 0.5),
                "p90_s": _histogram_quantile(counts, _LATENCY_BUCKETS, 0.9),
                "p99_s": _histogram_quantile(counts, _LATENCY_BUCKETS, 0.99),
                "p999_s": _histogram_quantile(counts, _LATENCY_BUCKETS, 0.999),
            },
        }
        payload["two_phase"] = {
            "pending": self.state.pending_reservations(),
            **self.reserve_counters,
        }
        if self.shard_nodes is not None or self.config.shard_id is not None:
            payload["shard"] = {
                "id": self.config.shard_id,
                "scoped": self.shard_nodes is not None,
                # The router discovers shard membership from this list; a
                # full-scope shard 0 (1-shard deployment) reports every
                # placement node.
                "nodes": list(
                    self.shard_nodes
                    if self.shard_nodes is not None
                    else self.instance.placement_nodes
                ),
            }
        if self.reoptimizer is not None:
            payload["reopt"] = self.reoptimizer.status()
        if self.preplacer is not None:
            payload["predict"] = self.preplacer.status()
        if self.netfaults is not None:
            payload["netfault"] = self.netfaults.status()
        return payload


def _drive_stop_from_thread(
    stop: Callable[[], Any],
    closed: asyncio.Event,
    loop: asyncio.AbstractEventLoop,
    thread: threading.Thread,
    timeout: float = 30.0,
) -> None:
    """Schedule ``stop()`` on ``loop`` from another thread and wait it out.

    A shutdown request arriving over the wire stops the service from
    inside its own loop; if that teardown wins the race, the loop can
    close before our scheduled coroutine ever runs, leaving the
    concurrent future pending forever.  The closed event and thread
    liveness are the ground truth here, not the future.
    """
    coro = stop()
    try:
        future = asyncio.run_coroutine_threadsafe(coro, loop)
    except RuntimeError:  # loop already closed: the service stopped itself
        coro.close()
        return
    deadline = time.monotonic() + timeout
    while True:
        try:
            future.result(timeout=0.1)
            return
        except concurrent.futures.CancelledError:
            return  # loop teardown cancelled our task: service stopped
        except concurrent.futures.TimeoutError:
            if closed.is_set() or not thread.is_alive():
                # The service tore itself down (a shutdown request won
                # the race) and the scheduled coroutine may never run.
                # Let the loop thread finish, then close the
                # never-started coroutine by hand — cancelling the
                # future instead would ping the closed loop and log
                # spurious "Event loop is closed" errors.
                thread.join(max(0.0, deadline - time.monotonic()))
                if not future.done() and not thread.is_alive():
                    with contextlib.suppress(RuntimeError):
                        coro.close()
                return
            if time.monotonic() >= deadline:
                raise


class GatewayThread:
    """Run a gateway on a dedicated event-loop thread.

    The synchronous harness benches and tests need a live server while
    the calling thread drives load; this wrapper owns the loop/thread
    pair and proxies start/stop.
    """

    def __init__(self, gateway: AdmissionGateway) -> None:
        self.gateway = gateway
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        """Start the loop thread and the gateway; returns the bound address."""
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self.gateway.address

    def _run(self) -> None:
        if self.gateway.config.use_uvloop:
            maybe_install_uvloop()
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            try:
                await self.gateway.start()
            except BaseException as exc:  # surface bind errors to start()
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self.gateway.wait_closed()

        try:
            self._loop.run_until_complete(main())
        finally:
            # Open connection handlers may still be parked in readline();
            # cancel them (they exit cleanly on CancelledError) so the
            # loop closes without destroying pending tasks.
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

    def stop(self) -> None:
        """Stop the gateway (checkpointing) and join the thread."""
        if self._loop is None or self._thread is None:
            return
        if not self.gateway._closed.is_set():
            _drive_stop_from_thread(
                self.gateway.stop, self.gateway._closed, self._loop, self._thread
            )
        self._thread.join(timeout=30)
