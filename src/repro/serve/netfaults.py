"""Live network dynamics inside the serving gateway.

The online simulator injects link faults on virtual time
(:class:`~repro.network.dynamics.NetworkDynamics`); a *serving* gateway
has no simulator clock, so this module drives the same seeded
:func:`~repro.network.dynamics.build_link_schedule` from a background
daemon on the re-optimizer/pre-placer pattern: each cycle advances a
deterministic schedule clock by ``interval_s``, applies every link event
that came due, and — when anything changed — recomputes the instance's
:class:`~repro.network.paths.PathCache` from the degraded topology.

The path recompute bumps the cache's *generation* stamp, which is the
single invalidation signal every latency consumer observes:

* the gateway's and the front router's cached pair-latency vectors are
  keyed by generation and rebuild lazily on the next probe;
* the screening pool's :class:`~repro.serve.shm.ScreenStatics` (the
  static home→placement latency matrix forked into the workers) is
  rebuilt eagerly by the daemon, restarting the pool when one is live —
  workers hold the statics by value, so only a restart refreshes them;
* in-flight queries whose serving node was partitioned from their home
  are evicted (their compute released, ``serve.netfault.interrupted``)
  before :meth:`~repro.cluster.state.ClusterState.check_invariants`
  verifies that no surviving admission is served across a severed link.

A gateway configured without :class:`NetFaultConfig` never constructs
the daemon, never recomputes paths, and stays byte-identical to the
pre-dynamics service (generation 0 forever) — the same parity contract
as the re-optimizer and the predictor.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.network.dynamics import (
    LinkEvent,
    LinkFaultConfig,
    LinkState,
    build_link_schedule,
)
from repro.obs import get_registry
from repro.util.validation import check_positive

__all__ = ["NetFaultConfig", "NetFaultCycleReport", "NetFaultDaemon"]


@dataclass(frozen=True)
class NetFaultConfig:
    """Gateway network-dynamics daemon tuning knobs.

    Attributes
    ----------
    interval_s:
        Wall-clock period of the daemon loop; each cycle also advances
        the *schedule clock* by this much, so the event sequence a
        gateway replays depends only on ``faults.seed`` and the cycle
        count — never on wall-clock jitter.
    horizon_s:
        Length of schedule to pre-build.  Past it the daemon idles
        (``"schedule-exhausted"``); restores already drawn still fire.
    faults:
        The seeded link-fault process
        (:class:`~repro.network.dynamics.LinkFaultConfig`): event/repair
        rates, degrade-vs-sever mix, inflation factor, partition
        probability.
    history:
        Cycle reports retained for the status payload.
    """

    interval_s: float = 1.0
    horizon_s: float = 600.0
    faults: LinkFaultConfig = field(default_factory=LinkFaultConfig)
    history: int = 32

    def __post_init__(self) -> None:
        check_positive("interval_s", self.interval_s)
        check_positive("horizon_s", self.horizon_s)
        check_positive("history", self.history)


@dataclass(frozen=True)
class NetFaultCycleReport:
    """Outcome of one network-dynamics cycle.

    ``reason`` says why a cycle changed nothing (``""`` when it did):
    ``"no-events-due"`` (the clock advanced between scheduled events) or
    ``"schedule-exhausted"`` (the pre-built horizon is fully replayed).
    """

    cycle: int
    clock_s: float
    applied: int
    degrades: int = 0
    severs: int = 0
    partitions: int = 0
    restores: int = 0
    evicted: int = 0
    generation: int = 0
    link_availability: float = 1.0
    pool_restarted: bool = False
    reason: str = ""
    duration_s: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the ``netfault`` op's response payload)."""
        return dataclasses.asdict(self)


class NetFaultDaemon:
    """Background link-dynamics daemon bound to one admission gateway.

    The gateway spawns :meth:`run` next to its admission worker;
    ``gateway`` is duck-typed — the daemon reads ``instance``, ``state``,
    ``_inflight``/``_inflight_homes``, and calls
    ``refresh_network_statics()`` after every path recompute.
    """

    def __init__(self, gateway: Any, config: NetFaultConfig | None = None) -> None:
        self.gateway = gateway
        self.config = config or NetFaultConfig()
        self.link_state = LinkState(gateway.instance.topology)
        self._schedule = build_link_schedule(
            gateway.instance.topology, self.config.horizon_s, self.config.faults
        )
        self._cursor = 0
        self._clock = 0.0
        self._cycles = 0
        self._applied = 0
        self._evicted = 0
        self._partitions = 0
        self._partition_stamps: set[float] = set()
        self._history: deque[NetFaultCycleReport] = deque(
            maxlen=self.config.history
        )
        self._lock = asyncio.Lock()

    # -- lifecycle ---------------------------------------------------------

    async def run(self) -> None:
        """Cycle forever (the gateway cancels this task on stop)."""
        obs = get_registry()
        while True:
            await asyncio.sleep(self.config.interval_s)
            try:
                await self.run_cycle()
            except asyncio.CancelledError:
                raise
            except Exception:
                # A dynamics failure must never take the gateway down;
                # the next cycle retries from the same schedule cursor.
                obs.inc("serve.netfault.errors")

    async def run_cycle(self, *, force: bool = False) -> NetFaultCycleReport:
        """Advance the schedule clock one interval and apply due events.

        ``force`` (the ``netfault`` protocol op's behaviour) jumps the
        clock to the *next* scheduled event instead, so a forced cycle
        always applies at least one event while any remain — which is
        what makes smoke tests deterministic.
        """
        async with self._lock:
            return self._cycle(force)

    # -- one cycle (synchronous: no await between apply and verify) --------

    def _cycle(self, force: bool) -> NetFaultCycleReport:
        started = time.perf_counter()
        self._cycles += 1
        if self._cursor >= len(self._schedule):
            return self._finish(
                NetFaultCycleReport(
                    cycle=self._cycles,
                    clock_s=self._clock,
                    applied=0,
                    generation=self.gateway.instance.paths.generation,
                    link_availability=self.link_state.link_availability(),
                    reason="schedule-exhausted",
                    duration_s=time.perf_counter() - started,
                )
            )
        if force:
            self._clock = max(
                self._clock, self._schedule[self._cursor].time
            )
        else:
            self._clock += self.config.interval_s
        due: list[LinkEvent] = []
        while (
            self._cursor < len(self._schedule)
            and self._schedule[self._cursor].time <= self._clock
        ):
            due.append(self._schedule[self._cursor])
            self._cursor += 1
        if not due:
            return self._finish(
                NetFaultCycleReport(
                    cycle=self._cycles,
                    clock_s=self._clock,
                    applied=0,
                    generation=self.gateway.instance.paths.generation,
                    link_availability=self.link_state.link_availability(),
                    reason="no-events-due",
                    duration_s=time.perf_counter() - started,
                )
            )
        obs = get_registry()
        degrades = severs = partitions = restores = 0
        for event in due:
            if event.kind == "degrade":
                self.link_state.degrade(event.link, self.config.faults.inflation)
                degrades += 1
                obs.inc("serve.netfault.degrades")
            elif event.kind == "sever":
                self.link_state.sever(event.link)
                severs += 1
                obs.inc("serve.netfault.severs")
                if event.correlated and event.time not in self._partition_stamps:
                    self._partition_stamps.add(event.time)
                    partitions += 1
                    obs.inc("serve.netfault.partitions")
            else:
                self.link_state.restore(event.link)
                restores += 1
                obs.inc("serve.netfault.restores")
        self._applied += len(due)
        self._partitions += partitions

        # One recompute per cycle, however many events came due: the
        # admission loop only ever observes the post-cycle epoch.
        generation = self.gateway.instance.paths.recompute(
            self.link_state.effective_delays()
        )
        obs.inc("serve.netfault.recomputes")
        pool_restarted = self.gateway.refresh_network_statics()
        if pool_restarted:
            obs.inc("serve.netfault.pool_restarts")
        evicted = self._evict_partitioned()
        self._evicted += evicted

        # No surviving admission may be served across a severed link.
        self.gateway.state.check_invariants(
            [a for group in self.gateway._inflight.values() for a in group],
            link_state=self.link_state,
            homes=dict(self.gateway._inflight_homes),
        )
        availability = self.link_state.link_availability()
        obs.set_gauge("serve.netfault.link_availability", availability)
        return self._finish(
            NetFaultCycleReport(
                cycle=self._cycles,
                clock_s=self._clock,
                applied=len(due),
                degrades=degrades,
                severs=severs,
                partitions=partitions,
                restores=restores,
                evicted=evicted,
                generation=generation,
                link_availability=availability,
                pool_restarted=pool_restarted,
                duration_s=time.perf_counter() - started,
            )
        )

    def _evict_partitioned(self) -> int:
        """Release every in-flight query cut off from its home.

        Paths were just recomputed from the severed topology, so any
        still-reachable pair's shortest path avoids severed links by
        construction; only *unreachable* (partitioned) pairs violate the
        serving contract and their service is interrupted — the compute
        frees rather than pretending a dead route still delivers.
        """
        gateway = self.gateway
        paths = gateway.instance.paths
        cut: list[int] = []
        for q_id, assignments in gateway._inflight.items():
            home = gateway._inflight_homes.get(q_id)
            if home is None:
                continue
            if any(not paths.reachable(a.node, home) for a in assignments):
                cut.append(q_id)
        obs = get_registry()
        for q_id in cut:
            gateway._evict_hold(q_id)
            obs.inc("serve.netfault.interrupted")
        return len(cut)

    def _finish(self, report: NetFaultCycleReport) -> NetFaultCycleReport:
        self._history.append(report)
        obs = get_registry()
        obs.inc("serve.netfault.cycles")
        obs.observe("serve.netfault.cycle_s", report.duration_s)
        return report

    # -- introspection -----------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Daemon health (the ``netfault`` section of the status payload)."""
        last = self._history[-1] if self._history else None
        return {
            "cycles": self._cycles,
            "clock_s": self._clock,
            "events_applied": self._applied,
            "events_remaining": len(self._schedule) - self._cursor,
            "partitions": self._partitions,
            "interrupted": self._evicted,
            "generation": self.gateway.instance.paths.generation,
            "link_availability": self.link_state.link_availability(),
            "severed_links": len(self.link_state.severed_links()),
            "last_cycle": last.to_dict() if last is not None else None,
        }
