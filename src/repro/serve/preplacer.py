"""Predictive pre-placement: replica adds ahead of forecast demand.

The re-optimizer (:mod:`repro.serve.reoptimizer`) reacts to drift that
has already happened; this daemon closes the *proactive* half of the
paper's premise.  The gateway feeds every batched submission into a
per-(region, dataset) :class:`~repro.workload.forecast.DemandForecaster`;
a background cycle turns the forecast into a small set of **add-only**
replica placements near the regions whose demand is rising — before the
burst arrives and the admission path has to scramble.

Execution deliberately reuses the re-optimizer's machinery end to end:
each pre-placement is a :class:`~repro.core.migration.MigrationStep`
(pure add) applied through :func:`~repro.serve.reoptimizer.apply_step` —
one :meth:`~repro.cluster.state.ClusterState.transaction` per step,
re-validated against live state at apply time, invariant-checked before
commit, rolled back individually on violation, with the same skip
reasons — and steps interleave with admission via event-loop yields, so
the accept loop never pauses.

Three guards bound the churn:

* ``max_preplace_gb`` caps the volume shipped per cycle (excess
  candidates are *deferred* to a later cycle, not dropped);
* ``max_adds_per_dataset`` caps copies added per dataset per cycle;
* ``slot_slack`` replica slots per dataset are always left free for the
  admission path — prediction must never exhaust the ``K`` bound that
  reactive placement needs as its escape hatch.

A gateway with the predictor *disabled* is byte-identical to a bare one
(responses and checkpoints), and an enabled daemon whose window has not
filled — or whose forecast crosses no threshold — touches nothing:
observation mutates only the forecaster, never cluster state (pinned by
``tests/serve/test_preplacer.py``).
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.cluster.state import ClusterState
from repro.core.instance import ProblemInstance
from repro.core.migration import MigrationStep
from repro.core.types import Assignment, Query
from repro.obs import get_registry
from repro.serve.reoptimizer import _seeded_state, apply_step
from repro.util.validation import (
    ValidationError,
    check_non_negative,
    check_positive,
)
from repro.workload.forecast import DemandForecaster, ForecastConfig, region_labels

__all__ = [
    "PreplaceReport",
    "Preplacer",
    "PreplacerConfig",
    "plan_preplacements",
]

#: Selectivity the planner's probe latencies assume (midpoint of the
#: paper's range).  Pre-placement only needs a *ranking* of candidate
#: nodes per (region, dataset); the admission path re-checks real
#: deadlines per query, so the probe constant never decides feasibility.
_PROBE_ALPHA = 0.7


@dataclass(frozen=True)
class PreplacerConfig:
    """Predictive pre-placement daemon tuning knobs.

    Attributes
    ----------
    interval_s:
        Period of the background cycle loop.
    window:
        Sliding demand window in observations (query, dataset pairs);
        internally bucketed into ``num_buckets`` forecast buckets.
    min_window:
        Cycles observe-only until this many observations accumulate.
    num_buckets:
        Forecast buckets the window is divided into.
    alpha:
        EWMA smoothing weight of the newest bucket.
    estimator:
        ``"ewma"`` or ``"zipf"``
        (:class:`~repro.workload.forecast.ForecastConfig`).
    threshold:
        Minimum predicted demand *share* (of total forecast demand) a
        (region, dataset) cell needs before it earns a pre-placed copy.
    improvement:
        A candidate node must beat the best live replica's probe latency
        by at least this factor (``lat < improvement × current_best``);
        1.0 demands any strict improvement.
    max_preplace_gb:
        Churn cap: total volume pre-placed per cycle.
    max_adds_per_dataset:
        Copies added per dataset per cycle.
    slot_slack:
        Replica slots per dataset always left to the admission path.
    history:
        Cycle reports retained for the status payload.
    """

    interval_s: float = 5.0
    window: int = 256
    min_window: int = 16
    num_buckets: int = 8
    alpha: float = 0.5
    estimator: str = "ewma"
    threshold: float = 0.02
    improvement: float = 1.0
    max_preplace_gb: float = 25.0
    max_adds_per_dataset: int = 1
    slot_slack: int = 1
    history: int = 32

    def __post_init__(self) -> None:
        check_positive("interval_s", self.interval_s)
        check_positive("window", self.window)
        check_positive("min_window", self.min_window)
        if self.min_window > self.window:
            raise ValidationError(
                f"min_window {self.min_window} exceeds window {self.window}"
            )
        check_positive("num_buckets", self.num_buckets)
        if not 0.0 <= self.threshold <= 1.0:
            raise ValidationError(
                f"threshold must be in [0, 1], got {self.threshold}"
            )
        if self.improvement <= 0.0:
            raise ValidationError(
                f"improvement must be positive, got {self.improvement}"
            )
        check_non_negative("max_preplace_gb", self.max_preplace_gb)
        check_positive("max_adds_per_dataset", self.max_adds_per_dataset)
        check_non_negative("slot_slack", self.slot_slack)
        check_positive("history", self.history)
        # alpha / estimator are validated by ForecastConfig.
        self.forecast_config()

    def forecast_config(self) -> ForecastConfig:
        """The :class:`ForecastConfig` this window shape induces."""
        return ForecastConfig(
            bucket=max(1, self.window // self.num_buckets),
            num_buckets=self.num_buckets,
            alpha=self.alpha,
            estimator=self.estimator,
        )


@dataclass(frozen=True)
class PreplaceReport:
    """Outcome of one pre-placement cycle.

    ``reason`` says why a cycle placed nothing (``""`` when it did):
    ``"window-too-small"``, ``"no-demand"`` (an all-zero forecast), or
    ``"no-candidates"`` (every cell below threshold, already covered, or
    out of slots).
    """

    cycle: int
    observed: int
    reason: str = ""
    demand_total: float = 0.0
    planned: int = 0
    applied: int = 0
    rolled_back: int = 0
    skipped: int = 0
    deferred: int = 0
    preplaced_gb: float = 0.0
    ship_cost_s: float = 0.0
    duration_s: float = 0.0

    @property
    def preplaced(self) -> bool:
        """Whether any step actually changed the replica map."""
        return self.applied > 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the ``predict`` op's response payload)."""
        payload = dataclasses.asdict(self)
        payload["preplaced"] = self.preplaced
        return payload


# -- planning (synchronous, side-effect-free on live state) ------------------


def plan_preplacements(
    instance: ProblemInstance,
    regions: Sequence[str],
    anchors: Sequence[int],
    predicted: np.ndarray,
    replica_map: Mapping[int, Sequence[int]],
    down_nodes: Sequence[int],
    config: PreplacerConfig | None = None,
) -> tuple[list[MigrationStep], dict[str, Any]]:
    """Convert one forecast into bounded-churn add-only migration steps.

    ``predicted[r, n]`` is the forecast demand of dataset
    ``sorted(instance.datasets)[n]`` from region ``regions[r]``, whose
    representative (lowest-id) node is ``anchors[r]``.  Pure with respect
    to live state — candidate checks run on a throwaway seeded state —
    so it can be tested offline and called mid-serving alike.

    Candidate cells are visited in descending predicted-share order
    (ties by region then dataset index, deterministic).  A cell earns an
    add when its share clears ``config.threshold``, the dataset has more
    than ``slot_slack`` free replica slots, and some live node improves
    on the best current copy's probe latency from the region's anchor.

    Returns the (possibly empty) step list plus an info dict with
    ``reason`` (non-empty when the list is empty), ``demand_total``, and
    ``deferred`` (candidates beyond the churn cap, left for later).
    """
    config = config or PreplacerConfig()
    info: dict[str, Any] = {"reason": "", "demand_total": 0.0, "deferred": 0}
    predicted = np.asarray(predicted, dtype=np.float64)
    dataset_ids = sorted(instance.datasets)
    if predicted.shape != (len(regions), len(dataset_ids)):
        raise ValidationError(
            f"predicted shape {predicted.shape} does not match "
            f"({len(regions)}, {len(dataset_ids)})"
        )
    total = float(predicted.sum())
    info["demand_total"] = total
    if total <= 0.0:
        info["reason"] = "no-demand"
        return [], info
    share = predicted / total

    state = _seeded_state(instance, replica_map, down_nodes)
    node_index = instance.node_index
    placement = instance.placement_nodes
    up = state.up_mask()

    # Candidate (region, dataset) cells above threshold, hottest first;
    # ties resolved by (region index, dataset index) so plans are
    # deterministic for a given forecast.
    rows, cols = np.nonzero(share >= config.threshold)
    order = np.lexsort((cols, rows, -share[rows, cols]))
    cells = list(zip(rows[order].tolist(), cols[order].tolist()))
    if not cells:
        info["reason"] = "no-candidates"
        return [], info

    steps: list[MigrationStep] = []
    adds_per_dataset: dict[int, int] = {}
    shipped_gb = 0.0
    deferred = 0
    for r, n in cells:
        d_id = dataset_ids[n]
        if adds_per_dataset.get(d_id, 0) >= config.max_adds_per_dataset:
            continue
        if state.replicas.remaining_slots(d_id) <= config.slot_slack:
            continue
        dataset = instance.dataset(d_id)
        anchor = anchors[r]
        # Probe latency of serving this dataset toward the region's
        # anchor, per placement node (same analytic shape as admission's
        # pair latency, at the canonical probe selectivity).
        home_vec = instance.home_delay_vectors.get(anchor)
        if home_vec is None:
            home_vec = instance.paths.placement_delays_to(anchor)
        lat = dataset.volume_gb * (
            instance.proc_delays + _PROBE_ALPHA * home_vec
        )
        holders = [v for v in state.replicas.nodes(d_id) if state.is_up(v)]
        if holders:
            current_best = min(lat[node_index[v]] for v in holders)
        else:
            current_best = float("inf")
        best_v: int | None = None
        best_lat = current_best * config.improvement
        for i, v in enumerate(placement):
            if not up[i] or state.replicas.has(d_id, v):
                continue
            if lat[i] < best_lat:
                best_lat = lat[i]
                best_v = v
        if best_v is None:
            continue
        if shipped_gb + dataset.volume_gb > config.max_preplace_gb:
            deferred += 1
            continue
        if holders:
            ship_from = min(
                holders, key=lambda v: instance.paths.delay(v, best_v)
            )
            ship_cost = dataset.volume_gb * instance.paths.delay(
                ship_from, best_v
            )
        else:
            ship_from, ship_cost = None, 0.0
        steps.append(
            MigrationStep(
                dataset_id=d_id,
                add_node=best_v,
                drop_node=None,
                volume_gb=dataset.volume_gb,
                ship_from=ship_from,
                ship_cost_s=ship_cost,
            )
        )
        state.replicas.place(d_id, best_v)
        adds_per_dataset[d_id] = adds_per_dataset.get(d_id, 0) + 1
        shipped_gb += dataset.volume_gb
    info["deferred"] = deferred
    if not steps:
        info["reason"] = "no-candidates"
    return steps, info


# -- the daemon --------------------------------------------------------------


class Preplacer:
    """Background predictive pre-placement daemon bound to one gateway.

    The gateway calls :meth:`observe` per batched submission and spawns
    :meth:`run` next to its admission worker; everything else is
    internal.  ``gateway`` is duck-typed: the daemon only reads
    ``instance``, ``state``, and ``_inflight`` — the same surface the
    re-optimizer uses.
    """

    def __init__(self, gateway: Any, config: PreplacerConfig | None = None) -> None:
        self.gateway = gateway
        self.config = config or PreplacerConfig()
        instance = gateway.instance
        labels = region_labels(instance.topology)
        # Region roster in first-seen node-id order; the anchor of a
        # region is its lowest node id (== first seen, since node ids
        # are dense and ascending in the spec roster).
        regions: list[str] = []
        anchors: list[int] = []
        seen: dict[str, int] = {}
        for node_id in sorted(labels):
            label = labels[node_id]
            if label not in seen:
                seen[label] = len(regions)
                regions.append(label)
                anchors.append(node_id)
        self._regions = tuple(regions)
        self._anchors = tuple(anchors)
        self._node_region = {v: labels[v] for v in labels}
        self._dataset_ids = tuple(sorted(instance.datasets))
        self._dataset_index = {d: i for i, d in enumerate(self._dataset_ids)}
        self.forecaster = DemandForecaster(
            self._regions, len(self._dataset_ids), self.config.forecast_config()
        )
        self._history: deque[PreplaceReport] = deque(maxlen=self.config.history)
        self._cycles = 0
        self._preplaced_steps = 0
        self._preplaced_gb = 0.0
        self._lock = asyncio.Lock()

    # -- observation -------------------------------------------------------

    def observe(self, query: Query) -> None:
        """Feed one batched submission into the demand forecaster."""
        region = self._node_region.get(query.home_node)
        if region is None:
            return
        for d_id in query.demanded:
            idx = self._dataset_index.get(d_id)
            if idx is not None:
                self.forecaster.observe(region, idx)

    def _inflight_assignments(self) -> tuple[Assignment, ...]:
        return tuple(
            a for group in self.gateway._inflight.values() for a in group
        )

    # -- lifecycle ---------------------------------------------------------

    async def run(self) -> None:
        """Cycle forever (the gateway cancels this task on stop)."""
        obs = get_registry()
        while True:
            await asyncio.sleep(self.config.interval_s)
            try:
                await self.run_cycle()
            except asyncio.CancelledError:
                raise
            except Exception:
                # A forecasting failure must never take the gateway
                # down; the next cycle retries from fresh state.
                obs.inc("serve.predict.errors")

    async def run_cycle(self, *, force: bool = False) -> PreplaceReport:
        """Run one cycle now; returns its report.

        ``force`` (the ``predict`` protocol op's behaviour) relaxes the
        ``min_window`` gate to a single observation — the threshold,
        improvement, slot-slack, and churn guards still apply, so even a
        forced cycle never places a copy no forecast supports.
        """
        async with self._lock:
            return await self._cycle(force)

    async def _cycle(self, force: bool) -> PreplaceReport:
        started = time.perf_counter()
        self._cycles += 1
        config = self.config
        observed = self.forecaster.observed
        if observed < (1 if force else config.min_window):
            return self._finish(
                PreplaceReport(
                    cycle=self._cycles,
                    observed=observed,
                    reason="window-too-small",
                    duration_s=time.perf_counter() - started,
                )
            )
        predicted = self.forecaster.forecast()
        state = self.gateway.state
        steps, info = plan_preplacements(
            self.gateway.instance,
            self._regions,
            self._anchors,
            predicted,
            state.replicas.replica_map(),
            sorted(state.down_nodes()),
            config,
        )
        applied = rolled_back = skipped = 0
        preplaced_gb = ship_cost_s = 0.0
        for step in steps:
            outcome = apply_step(state, step, self._inflight_assignments())
            if outcome == "applied":
                applied += 1
                preplaced_gb += step.volume_gb
                ship_cost_s += step.ship_cost_s
            elif outcome == "rolled-back":
                rolled_back += 1
            else:
                skipped += 1
            # Yield between steps: admissions interleave with the plan.
            await asyncio.sleep(0)
        self._preplaced_steps += applied
        self._preplaced_gb += preplaced_gb
        return self._finish(
            PreplaceReport(
                cycle=self._cycles,
                observed=observed,
                reason=info["reason"],
                demand_total=info["demand_total"],
                planned=len(steps),
                applied=applied,
                rolled_back=rolled_back,
                skipped=skipped,
                deferred=info["deferred"],
                preplaced_gb=preplaced_gb,
                ship_cost_s=ship_cost_s,
                duration_s=time.perf_counter() - started,
            )
        )

    def _finish(self, report: PreplaceReport) -> PreplaceReport:
        self._history.append(report)
        obs = get_registry()
        obs.inc("serve.predict.cycles")
        obs.observe("serve.predict.cycle_s", report.duration_s)
        if report.planned:
            obs.inc("serve.predict.steps_applied", report.applied)
            obs.inc("serve.predict.steps_rolled_back", report.rolled_back)
            obs.inc("serve.predict.steps_skipped", report.skipped)
            obs.inc("serve.predict.steps_deferred", report.deferred)
            obs.inc("serve.predict.preplaced_gb", report.preplaced_gb)
        obs.set_gauge("serve.predict.window", self.forecaster.window_observed)
        return report

    # -- introspection -----------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Daemon health (the ``predict`` section of the status payload)."""
        last = self._history[-1] if self._history else None
        return {
            "cycles": self._cycles,
            "observed": self.forecaster.observed,
            "window": self.forecaster.window_observed,
            "regions": len(self._regions),
            "estimator": self.config.estimator,
            "preplaced_steps": self._preplaced_steps,
            "preplaced_gb": self._preplaced_gb,
            "last_cycle": last.to_dict() if last is not None else None,
        }
