"""Wire protocol of the admission gateway: newline-delimited JSON.

Each message is one JSON object on one line (LF-terminated, UTF-8).
Requests carry an ``op`` and a client-chosen ``id`` that the matching
response echoes, so a client may pipeline many requests over one
connection and correlate responses out of order.

Requests
--------
``{"op": "submit", "id": 1, "query": {...}}``
    Admit one query (the ``query`` object is the
    :func:`repro.io.serialize.query_to_dict` form).
``{"op": "status", "id": 2}``
    Service health: queue depth, in-flight compute, counters.
``{"op": "snapshot", "id": 3}``
    Force a checkpoint now; responds with the path written.
``{"op": "reopt", "id": 4, "force": true}``
    Run one re-optimization cycle now; responds with the cycle report
    (:meth:`repro.serve.reoptimizer.CycleReport.to_dict`).  ``force``
    (optional, default false) skips the drift gate.  Errors when the
    gateway has no re-optimizer configured.
``{"op": "predict", "id": 9, "force": true}``
    Run one predictive pre-placement cycle now; responds with the cycle
    report (:meth:`repro.serve.preplacer.PreplaceReport.to_dict`).
    ``force`` (optional, default false) relaxes the minimum-window gate
    to a single observation.  Errors when the gateway has no predictor
    configured.
``{"op": "netfault", "id": 10, "force": true}``
    Run one network-dynamics cycle now; responds with the cycle report
    (:meth:`repro.serve.netfaults.NetFaultCycleReport.to_dict`).
    ``force`` (optional, default false) jumps the schedule clock to the
    next link event, so the cycle applies at least one while any
    remain.  Errors when the gateway has no dynamics daemon configured.
``{"op": "shutdown", "id": 5}``
    Checkpoint and stop the gateway.
``{"op": "reserve", "id": 6, "reservation_id": "r1", "query": {...},
"dataset_ids": [0, 3]}``
    Phase one of cross-shard admission (sent by the front router):
    provisionally admit the listed subset of the query's demanded
    datasets on this shard, holding the resources under
    ``reservation_id``.  Responds ``result: "reserved"`` (with the
    subset's ``assignments``), ``"rejected"``, or ``"shed"``.
``{"op": "commit", "id": 7, "reservation_id": "r1"}``
    Phase two, success: finalise the reservation (resources stay held
    under the usual response-time hold).  Errors on unknown ids — a
    commit must follow a successful reserve.
``{"op": "abort", "id": 8, "reservation_id": "r1"}``
    Phase two, failure: undo the reservation.  Idempotent; aborting an
    unknown (never-reserved, expired, or already-resolved) id responds
    ``found: false`` rather than erroring, because the router aborts
    best-effort on timeouts.

Responses
---------
``{"id": ..., "ok": true, ...}`` on success.  A submit response carries
``result`` — ``"admitted"`` (with per-dataset ``assignments`` and the
query's ``response_s``), ``"rejected"`` (deadline/capacity/replica
infeasible now), or ``"shed"`` (backpressure; retry after
``retry_after_s``).  ``{"id": ..., "ok": false, "error": ...}`` reports a
malformed or unserviceable request without closing the connection.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.types import Query
from repro.io.serialize import query_from_dict
from repro.util.validation import ValidationError

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "OPS",
    "ProtocolError",
    "decode_message",
    "decode_request",
    "encode_message",
    "error_response",
    "parse_submit_query",
]

#: Protocol identifier/version echoed in hello-less messages' errors.
PROTOCOL_VERSION = "repro/serve/v1"

#: Hard bound on one message line, defending the reader against an
#: unframed (non-protocol) peer streaming garbage without a newline.
MAX_LINE_BYTES = 1 << 20

#: Operations a request may carry.
OPS = (
    "submit",
    "status",
    "snapshot",
    "reopt",
    "predict",
    "netfault",
    "shutdown",
    "reserve",
    "commit",
    "abort",
)


class ProtocolError(RuntimeError):
    """A malformed message (bad JSON, missing fields, unknown op)."""


def encode_message(payload: dict[str, Any]) -> bytes:
    """Encode one message as a compact single-line JSON + LF."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict[str, Any]:
    """Decode one received line into a message dict.

    Raises
    ------
    ProtocolError
        On oversized lines, invalid JSON, or a non-object payload.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(f"message must be a JSON object, got {type(payload).__name__}")
    return payload


def decode_request(line: bytes) -> dict[str, Any]:
    """Decode and structurally validate one request line."""
    payload = decode_message(line)
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {OPS})")
    if "id" not in payload:
        raise ProtocolError("request carries no id")
    return payload


def parse_submit_query(payload: dict[str, Any]) -> Query:
    """Extract and validate the query of a ``submit`` request."""
    query_payload = payload.get("query")
    if not isinstance(query_payload, dict):
        raise ProtocolError("submit request carries no query object")
    try:
        return query_from_dict(query_payload)
    except (ValidationError, KeyError, TypeError) as exc:
        raise ProtocolError(f"invalid query: {exc}") from None


def error_response(request_id: Any, message: str) -> dict[str, Any]:
    """Build the failure response for one request."""
    return {"id": request_id, "ok": False, "error": str(message)}
