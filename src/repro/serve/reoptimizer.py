"""Live re-optimization: bounded-churn replica migration while serving.

The gateway admits greedily and never revisits placements, so sustained
drift (a Zipf popularity shift, a regional hot spot) strands replicas
where yesterday's demand was.  This module closes the loop:

* the gateway feeds every batched submission into a sliding **demand
  window**;
* a background daemon periodically measures **drift** — the total
  variation between the window's dataset-demand distribution and the
  reference distribution captured at the last migration — and does
  nothing while drift stays under its threshold (which is what keeps a
  re-optimizer-enabled gateway bit-identical to a plain one under a
  stationary workload);
* past the threshold it re-runs the placement pipeline on the window
  (primal-dual or the LP-rounding pipeline, off-thread, against
  throwaway state seeded from the live replica map), keeps the new
  placement only if it beats what the *current* replicas can serve
  (:func:`~repro.core.migration.solve_frozen`), and diffs the two maps
  into a bounded-churn :class:`~repro.core.migration.MigrationPlan`;
* plan steps execute **write-behind** on the live state — one
  step per :meth:`~repro.cluster.state.ClusterState.transaction`,
  re-validated against the live state at apply time (the snapshot it was
  planned on is already stale), invariant-checked before commit, rolled
  back individually on violation, and interleaved with admission via
  event-loop yields so the accept loop never pauses.

Everything the daemon does is observable: per-cycle
:class:`CycleReport`s, ``serve.reopt.*`` metrics, a ``reopt`` section in
the gateway's status payload, and a ``reopt`` protocol op that forces a
cycle on demand.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.cluster.node import CapacityError
from repro.cluster.replicas import ReplicaError
from repro.cluster.state import ClusterState
from repro.core.instance import ProblemInstance
from repro.core.lp_rounding import LpRoundingG
from repro.core.metrics import InvariantViolation, evaluate_solution
from repro.core.migration import (
    MigrationPlan,
    MigrationStep,
    diff_replica_maps,
    solve_frozen,
)
from repro.core.primal_dual import ApproG, PrimalDualConfig
from repro.core.types import Assignment, Query
from repro.obs import get_registry
from repro.util.validation import (
    ValidationError,
    check_non_negative,
    check_positive,
)

__all__ = [
    "CycleReport",
    "Reoptimizer",
    "ReoptimizerConfig",
    "apply_step",
    "build_window_instance",
    "demand_weights",
    "plan_cycle",
    "total_variation",
]

_PLANNERS = ("appro", "lp")


@dataclass(frozen=True)
class ReoptimizerConfig:
    """Re-optimization daemon tuning knobs.

    Attributes
    ----------
    interval_s:
        Period of the background cycle loop.
    window:
        Sliding demand window: how many recent submissions the planner
        sees.
    min_window:
        Cycles observe-only until this many submissions accumulate (a
        tiny sample would measure noise, not drift).
    max_migration_gb:
        Churn cap: total volume shipped per cycle.  Placements beyond
        it are deferred to a later cycle.
    max_moves_per_dataset:
        Churn cap: replica mutations (adds + drops) per dataset per
        cycle; ``None`` removes the bound.
    drift_threshold:
        Total-variation distance (in ``[0, 1]``) between the window's
        demand distribution and the reference captured at the last
        migration below which cycles are no-ops.
    min_gain_gb:
        Replanning must beat the *current* replica map's frozen-admission
        volume on the window by at least this much before any byte
        ships — the gate that keeps pointless churn at zero.
    planner:
        Pipeline that produces the target placement: ``"appro"`` (the
        primal-dual kernel over state seeded with the live replicas) or
        ``"lp"`` (the vectorized LP-rounding pipeline, from scratch).
    history:
        Cycle reports retained for the status payload.
    """

    interval_s: float = 5.0
    window: int = 128
    min_window: int = 16
    max_migration_gb: float = 50.0
    max_moves_per_dataset: int | None = 2
    drift_threshold: float = 0.25
    min_gain_gb: float = 1e-6
    planner: str = "appro"
    history: int = 32

    def __post_init__(self) -> None:
        check_positive("interval_s", self.interval_s)
        check_positive("window", self.window)
        check_positive("min_window", self.min_window)
        if self.min_window > self.window:
            raise ValidationError(
                f"min_window {self.min_window} exceeds window {self.window}"
            )
        check_non_negative("max_migration_gb", self.max_migration_gb)
        if self.max_moves_per_dataset is not None:
            check_positive("max_moves_per_dataset", self.max_moves_per_dataset)
        if not 0.0 <= self.drift_threshold <= 1.0:
            raise ValidationError(
                f"drift_threshold must be in [0, 1], got {self.drift_threshold}"
            )
        check_non_negative("min_gain_gb", self.min_gain_gb)
        if self.planner not in _PLANNERS:
            raise ValidationError(
                f"planner must be one of {_PLANNERS}, got {self.planner!r}"
            )
        check_positive("history", self.history)


@dataclass(frozen=True)
class CycleReport:
    """Outcome of one re-optimization cycle.

    ``reason`` says why a cycle migrated nothing (``""`` when it did):
    ``"window-too-small"``, ``"reference-set"`` (first sufficient window
    becomes the drift baseline), ``"drift-below-threshold"``,
    ``"gain-below-threshold"``, or ``"no-diff"``.
    """

    cycle: int
    observed: int
    drift: float
    reason: str = ""
    baseline_gb: float = 0.0
    target_gb: float = 0.0
    gain_gb: float = 0.0
    planned: int = 0
    applied: int = 0
    rolled_back: int = 0
    skipped: int = 0
    deferred: int = 0
    migration_gb: float = 0.0
    ship_cost_s: float = 0.0
    duration_s: float = 0.0

    @property
    def migrated(self) -> bool:
        """Whether any step actually changed the replica map."""
        return self.applied > 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the ``reopt`` op's response payload)."""
        payload = dataclasses.asdict(self)
        payload["migrated"] = self.migrated
        return payload


# -- demand window -----------------------------------------------------------


def demand_weights(
    queries: Iterable[Query], dataset_ids: Sequence[int]
) -> np.ndarray:
    """Empirical dataset-demand distribution of a query window.

    Element ``i`` is the fraction of (query, dataset) demand pairs that
    hit ``dataset_ids[i]``.  Uniform when the window is empty, so the
    distance between two empty windows is zero.
    """
    index = {d: i for i, d in enumerate(dataset_ids)}
    counts = np.zeros(len(dataset_ids))
    for query in queries:
        for d_id in query.demanded:
            if d_id in index:
                counts[index[d_id]] += 1.0
    total = counts.sum()
    if total <= 0.0:
        return np.full(len(dataset_ids), 1.0 / max(1, len(dataset_ids)))
    return counts / total


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance between two distributions, in [0, 1]."""
    return 0.5 * float(np.abs(np.asarray(p) - np.asarray(q)).sum())


def build_window_instance(
    instance: ProblemInstance, queries: Sequence[Query]
) -> ProblemInstance:
    """Problem instance of the live topology + the window's queries.

    Query ids are renumbered dense ``0..M-1`` (the instance contract);
    everything else — topology, datasets, ``K`` — is the gateway's.
    """
    renumbered = tuple(
        dataclasses.replace(q, query_id=i) for i, q in enumerate(queries)
    )
    return ProblemInstance(
        topology=instance.topology,
        datasets=instance.datasets,
        queries=renumbered,
        max_replicas=instance.max_replicas,
    )


# -- planning (synchronous, side-effect-free on live state) ------------------


def _seeded_state(
    instance: ProblemInstance,
    replica_map: Mapping[int, Sequence[int]],
    down_nodes: Sequence[int],
) -> ClusterState:
    """Throwaway state holding the live replica map (and liveness)."""
    state = ClusterState(instance)
    for d_id, nodes in replica_map.items():
        if d_id not in instance.datasets:
            continue
        for v in nodes:
            if v in state.nodes and state.replicas.can_place(d_id, v):
                state.replicas.place(d_id, v)
    for v in down_nodes:
        if v in state.nodes:
            state.mark_down(v)
    return state


def plan_cycle(
    instance: ProblemInstance,
    queries: Sequence[Query],
    replica_map: Mapping[int, Sequence[int]],
    down_nodes: Sequence[int],
    config: ReoptimizerConfig | None = None,
) -> tuple[MigrationPlan, dict[str, Any]]:
    """Plan one bounded-churn migration for a demand window.

    Pure with respect to live state: callers pass the replica map and
    down set captured from it, and all solving happens on throwaway
    :class:`~repro.cluster.state.ClusterState` copies — which is what
    makes this safe to run on a worker thread while the event loop keeps
    admitting.

    Returns the (possibly empty) plan plus an info dict with
    ``baseline_gb`` (what the current replicas can serve on the window),
    ``target_gb`` (what the replanned placement serves), ``gain_gb``,
    and ``reason`` (non-empty when the plan is empty).
    """
    config = config or ReoptimizerConfig()
    info: dict[str, Any] = {
        "baseline_gb": 0.0,
        "target_gb": 0.0,
        "gain_gb": 0.0,
        "reason": "",
    }
    if not queries:
        info["reason"] = "window-too-small"
        return MigrationPlan(), info
    win = build_window_instance(instance, queries)
    pd_config = PrimalDualConfig()
    baseline_state = _seeded_state(win, replica_map, down_nodes)
    baseline = solve_frozen(win, baseline_state, pd_config)
    baseline_gb = evaluate_solution(win, baseline).admitted_volume_gb

    # The target is a *fresh* replan (the ``fresh`` migration strategy's
    # view): seeding the solver with the live replicas would only bias it
    # toward the stale placement the cycle exists to escape.  The churn
    # caps — not the solver — bound how far toward the target one cycle
    # actually moves.
    if config.planner == "lp":
        solution = LpRoundingG().solve(win)
    else:
        target_state = _seeded_state(win, {}, down_nodes)
        solution = ApproG(pd_config).solve_on_state(win, target_state)
    target_gb = evaluate_solution(win, solution).admitted_volume_gb

    info["baseline_gb"] = baseline_gb
    info["target_gb"] = target_gb
    info["gain_gb"] = target_gb - baseline_gb
    if info["gain_gb"] < config.min_gain_gb:
        info["reason"] = "gain-below-threshold"
        return MigrationPlan(), info
    plan = diff_replica_maps(
        instance,
        replica_map,
        solution.replicas,
        max_migration_gb=config.max_migration_gb,
        max_moves_per_dataset=config.max_moves_per_dataset,
    )
    if not plan:
        info["reason"] = "no-diff"
    return plan, info


# -- execution (one transactional step at a time, on live state) -------------


def _step_blocker(
    state: ClusterState, step: MigrationStep, inflight: Sequence[Assignment]
) -> str | None:
    """Why ``step`` must not touch the live state right now, or ``None``.

    The plan was computed on a snapshot; by apply time admissions may
    have consumed the slot, a node may have crashed, or a query may be
    running on the copy the plan retires.  Every refusal here is a
    *skip* (the plan is stale), not an error.
    """
    d_id = step.dataset_id
    holders = state.replicas.nodes(d_id)
    if step.add_node is not None:
        if not state.is_up(step.add_node):
            return "add-node-down"
        if state.replicas.has(d_id, step.add_node):
            return "already-placed"
        if not state.has_live_copy(d_id):
            return "no-live-source"
        if step.drop_node is None and not state.replicas.can_place(
            d_id, step.add_node
        ):
            return "k-bound"
    if step.drop_node is not None:
        if not state.replicas.has(d_id, step.drop_node):
            return "already-dropped"
        if step.drop_node == state.replicas.origin(d_id):
            return "origin-copy"
        for a in inflight:
            if a.dataset_id == d_id and a.node == step.drop_node:
                return "replica-in-use"
        survivors = [
            v for v in holders if v != step.drop_node and state.is_up(v)
        ]
        if step.add_node is None and not survivors:
            return "last-live-copy"
    return None


def apply_step(
    state: ClusterState,
    step: MigrationStep,
    inflight: Sequence[Assignment] = (),
) -> str:
    """Apply one migration step to live state, transactionally.

    Returns ``"applied"``, ``"rolled-back"`` (the mutation violated an
    invariant or was refused mid-transaction and was undone), or
    ``"skipped:<reason>"`` (the live state moved since planning and the
    step no longer makes sense — see :func:`_step_blocker`).

    A *move* drops before it adds inside one transaction: at the ``K``
    bound the add alone would be refused, and the rollback guarantees
    the dataset never ends a step one copy short.
    """
    blocker = _step_blocker(state, step, inflight)
    if blocker is not None:
        return f"skipped:{blocker}"
    outcome = "rolled-back"
    with state.transaction() as txn:
        try:
            if step.drop_node is not None:
                state.replicas.remove(step.dataset_id, step.drop_node)
            if step.add_node is not None:
                state.replicas.place(step.dataset_id, step.add_node)
            state.check_invariants(inflight)
        except (ReplicaError, CapacityError, InvariantViolation):
            return outcome
        txn.commit()
        outcome = "applied"
    return outcome


# -- the daemon --------------------------------------------------------------


class Reoptimizer:
    """Background re-optimization daemon bound to one admission gateway.

    The gateway calls :meth:`observe` per batched submission and spawns
    :meth:`run` next to its admission worker; everything else is
    internal.  ``gateway`` is duck-typed: the daemon only reads
    ``instance``, ``state``, and ``_inflight``.
    """

    def __init__(self, gateway: Any, config: ReoptimizerConfig | None = None) -> None:
        self.gateway = gateway
        self.config = config or ReoptimizerConfig()
        self._window: deque[Query] = deque(maxlen=self.config.window)
        self._dataset_ids = tuple(sorted(gateway.instance.datasets))
        self._reference: np.ndarray | None = None
        self._history: deque[CycleReport] = deque(maxlen=self.config.history)
        self._cycles = 0
        self._migrated_steps = 0
        self._migrated_gb = 0.0
        self._gain_gb = 0.0
        self._lock = asyncio.Lock()

    # -- observation -------------------------------------------------------

    def observe(self, query: Query) -> None:
        """Feed one batched submission into the demand window."""
        self._window.append(query)

    def _inflight_assignments(self) -> tuple[Assignment, ...]:
        return tuple(
            a for group in self.gateway._inflight.values() for a in group
        )

    # -- lifecycle ---------------------------------------------------------

    async def run(self) -> None:
        """Cycle forever (the gateway cancels this task on stop)."""
        obs = get_registry()
        while True:
            await asyncio.sleep(self.config.interval_s)
            try:
                await self.run_cycle()
            except asyncio.CancelledError:
                raise
            except Exception:
                # A planning failure must never take the gateway down;
                # the next cycle retries from fresh state.
                obs.inc("serve.reopt.errors")

    async def run_cycle(self, *, force: bool = False) -> CycleReport:
        """Run one cycle now; returns its report.

        ``force`` skips the drift gate (the ``reopt`` protocol op's
        behaviour) — the gain gate and churn caps still apply, so even a
        forced cycle never ships unprofitable bytes.
        """
        async with self._lock:
            return await self._cycle(force)

    async def _cycle(self, force: bool) -> CycleReport:
        started = time.perf_counter()
        self._cycles += 1
        config = self.config
        queries = list(self._window)
        drift = 0.0
        reason = ""
        weights: np.ndarray | None = None
        if len(queries) < (1 if force else config.min_window):
            reason = "window-too-small"
        else:
            weights = demand_weights(queries, self._dataset_ids)
            if self._reference is None:
                self._reference = weights
                if not force:
                    reason = "reference-set"
            else:
                drift = total_variation(weights, self._reference)
                if not force and drift < config.drift_threshold:
                    reason = "drift-below-threshold"
        if reason:
            return self._finish(
                CycleReport(
                    cycle=self._cycles,
                    observed=len(queries),
                    drift=drift,
                    reason=reason,
                    duration_s=time.perf_counter() - started,
                )
            )

        # Plan off-thread on captured copies: the loop keeps admitting.
        state = self.gateway.state
        replica_map = state.replicas.replica_map()
        down = sorted(state.down_nodes())
        plan, info = await asyncio.to_thread(
            plan_cycle, self.gateway.instance, queries, replica_map, down, config
        )

        applied = rolled_back = skipped = 0
        migration_gb = ship_cost_s = 0.0
        for step in plan.steps:
            outcome = apply_step(state, step, self._inflight_assignments())
            if outcome == "applied":
                applied += 1
                migration_gb += step.volume_gb
                ship_cost_s += step.ship_cost_s
            elif outcome == "rolled-back":
                rolled_back += 1
            else:
                skipped += 1
            # Yield between steps: admissions interleave with the plan.
            await asyncio.sleep(0)
        if applied and weights is not None:
            # Re-anchor drift at the demand we just migrated toward.
            self._reference = weights
        self._migrated_steps += applied
        self._migrated_gb += migration_gb
        if applied:
            self._gain_gb += info["gain_gb"]
        return self._finish(
            CycleReport(
                cycle=self._cycles,
                observed=len(queries),
                drift=drift,
                reason=info["reason"],
                baseline_gb=info["baseline_gb"],
                target_gb=info["target_gb"],
                gain_gb=info["gain_gb"],
                planned=len(plan.steps),
                applied=applied,
                rolled_back=rolled_back,
                skipped=skipped,
                deferred=plan.deferred_steps,
                migration_gb=migration_gb,
                ship_cost_s=ship_cost_s,
                duration_s=time.perf_counter() - started,
            )
        )

    def _finish(self, report: CycleReport) -> CycleReport:
        self._history.append(report)
        obs = get_registry()
        obs.inc("serve.reopt.cycles")
        obs.observe("serve.reopt.drift", report.drift)
        obs.observe("serve.reopt.cycle_s", report.duration_s)
        if report.planned:
            obs.inc("serve.reopt.steps_applied", report.applied)
            obs.inc("serve.reopt.steps_rolled_back", report.rolled_back)
            obs.inc("serve.reopt.steps_skipped", report.skipped)
            obs.inc("serve.reopt.steps_deferred", report.deferred)
            obs.inc("serve.reopt.migration_gb", report.migration_gb)
            if report.migrated:
                obs.inc("serve.reopt.gain_gb", report.gain_gb)
        obs.set_gauge("serve.reopt.window", report.observed)
        return report

    # -- introspection -----------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Daemon health (the ``reopt`` section of the status payload)."""
        last = self._history[-1] if self._history else None
        return {
            "cycles": self._cycles,
            "window": len(self._window),
            "migrated_steps": self._migrated_steps,
            "migrated_gb": self._migrated_gb,
            "reclaimed_gain_gb": self._gain_gb,
            "last_cycle": last.to_dict() if last is not None else None,
        }
