"""Front router for the sharded control plane.

The router is the thin tier clients talk to when the control plane runs
as ``N`` shard gateways (:mod:`repro.serve.shard`).  It speaks the same
newline-delimited JSON protocol as a gateway, holds one pipelined
:class:`~repro.serve.client.GatewayClient` link per shard, and carries
*no placement state* — only the instance's static pair-latency vectors
(the same cache the gateway's fast-reject uses) and the shard membership
map.

Routing one ``submit``
----------------------
For each demanded dataset the router computes the deadline-feasible node
set from the cached latency vector (state-free, identical to the
gateway's ``_deadline_infeasible`` arithmetic):

* some dataset has **no** feasible node anywhere → the query is
  forwarded whole to the shard of that dataset's minimum-latency node,
  whose own fast-reject produces the canonical rejection (this keeps the
  router byte-transparent: a 1-shard deployment answers bit-identically
  to a bare gateway);
* every dataset's best feasible node lands on **one** shard → direct
  forward, response relayed verbatim (``routed_local``);
* the targets span shards → **two-phase admission** (``routed_cross``).

Two-phase cross-shard admission
-------------------------------
A miniature saga over the shards' ``reserve``/``commit``/``abort`` ops:

1. *Reserve* the per-shard dataset subsets concurrently under one fresh
   reservation id (each shard holds resources for real, guarded by its
   ``reserve_ttl_s`` expiry);
2. unanimous ``reserved`` → *commit* everywhere and answer ``admitted``
   (response time is the max over all shard assignments);
3. anything else — a rejection, a shed, an RPC timeout or a dead shard —
   → *abort* everywhere best-effort and answer ``rejected`` (or ``shed``
   when backpressure, not infeasibility, broke the round).

A commit RPC that fails after unanimous reservation is counted
(``commit_failures``) but the client still sees ``admitted``: the shard
that missed its commit expires the reservation at the TTL and releases
the hold.  The inconsistency window is bounded by the TTL and always
errs toward *freeing* capacity — the documented weakness of two-phase
commit without a durable coordinator log, acceptable here because holds
are short-lived leases, not durable placements.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.instance import ProblemInstance
from repro.core.types import Query
from repro.obs import get_registry
from repro.serve.client import GatewayClient
from repro.serve.gateway import _drive_stop_from_thread
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_request,
    encode_message,
    error_response,
    parse_submit_query,
)
from repro.util.validation import ValidationError, check_positive

__all__ = ["FrontRouter", "RouterConfig", "RouterThread"]


@dataclass(frozen=True)
class RouterConfig:
    """Tunables of the front router.

    Parameters
    ----------
    host, port:
        Listen address (port 0 binds an ephemeral port).
    rpc_timeout_s:
        Bound on every shard RPC the router issues on behalf of a
        client.  A reserve that exceeds it is treated as an abort vote;
        a forwarded submit that exceeds it is answered ``shed`` (the
        shard is alive but drowning, or gone — either way the client
        should retry elsewhere in time).
    """

    host: str = "127.0.0.1"
    port: int = 0
    rpc_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        check_positive("rpc_timeout_s", self.rpc_timeout_s)


class FrontRouter:
    """Stateless admission front-end over ``N`` shard gateways.

    Parameters
    ----------
    instance:
        The problem instance (for latency vectors and the placement
        node universe).
    shards:
        ``[(address, node_ids), ...]`` in shard-id order — the bound
        ``(host, port)`` of each shard gateway and the placement nodes
        it owns.  The groups must disjointly cover every placement node.
    config:
        Router tunables (defaults are fine for tests/benches).
    """

    def __init__(
        self,
        instance: ProblemInstance,
        shards: Sequence[tuple[tuple[str, int], Sequence[int]]],
        config: RouterConfig | None = None,
    ) -> None:
        if not shards:
            raise ValidationError("router needs at least one shard")
        self.instance = instance
        self.config = config or RouterConfig()
        self.shard_addresses: list[tuple[str, int]] = []
        members: list[tuple[int, ...]] = []
        seen: set[int] = set()
        for address, node_ids in shards:
            nodes = tuple(node_ids)
            if not nodes:
                raise ValidationError(f"shard at {address} owns no nodes")
            overlap = seen.intersection(nodes)
            if overlap:
                raise ValidationError(
                    f"nodes {sorted(overlap)} appear in more than one shard"
                )
            seen.update(nodes)
            self.shard_addresses.append((str(address[0]), int(address[1])))
            members.append(nodes)
        universe = set(instance.placement_nodes)
        if seen != universe:
            missing = sorted(universe - seen)
            extra = sorted(seen - universe)
            raise ValidationError(
                f"shard groups must cover the placement nodes exactly "
                f"(missing {missing}, unknown {extra})"
            )
        self.members = tuple(members)
        shard_of = {v: s for s, nodes in enumerate(members) for v in nodes}
        #: Shard index per *placement position* — argmin over a latency
        #: vector lands directly on a shard id.
        self._shard_of_index = np.fromiter(
            (shard_of[v] for v in instance.placement_nodes),
            dtype=np.intp,
            count=len(instance.placement_nodes),
        )
        self.counters: dict[str, int] = {
            "submitted": 0,
            "routed_local": 0,
            "routed_cross": 0,
            "admitted": 0,
            "rejected": 0,
            "shed": 0,
            "two_phase_commits": 0,
            "two_phase_aborts": 0,
            "commit_failures": 0,
            "protocol_errors": 0,
        }
        self._latency_cache: dict[tuple[int, int, float], np.ndarray] = {}
        self._latency_generation = instance.paths.generation
        self._links: list[GatewayClient] = []
        self._server: asyncio.AbstractServer | None = None
        self._closed = asyncio.Event()
        self._stopping = False
        self._next_reservation = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """Bound (host, port) — valid after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("router is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        """Connect to every shard, then bind the listener."""
        try:
            for host, port in self.shard_addresses:
                self._links.append(await GatewayClient.connect(host, port))
        except BaseException:
            await self._close_links()
            raise
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )

    async def stop(self) -> None:
        """Stop accepting, drop the shard links."""
        if self._server is None:
            return
        if self._stopping:
            # A shutdown request and RouterThread.stop can race; the
            # second caller waits for the first teardown, never re-runs it.
            await self._closed.wait()
            return
        self._stopping = True
        try:
            self._server.close()
            await self._server.wait_closed()
            await self._close_links()
        finally:
            # Waiters (main(), RouterThread, ShardCluster) must unblock
            # even if teardown raised, or shutdown hangs forever.
            self._closed.set()

    async def _close_links(self) -> None:
        for link in self._links:
            with contextlib.suppress(Exception):
                await link.close()
        self._links.clear()

    async def wait_closed(self) -> None:
        """Block until :meth:`stop` (or a shutdown request) completes."""
        await self._closed.wait()

    async def run_for(self, duration_s: float) -> None:
        """Serve (already started) for at most ``duration_s``, then stop."""
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(self._closed.wait(), timeout=duration_s)
        if not self._closed.is_set():
            await self.stop()

    # -- routing -----------------------------------------------------------

    def _latency_vector(self, query: Query, dataset_id: int) -> np.ndarray:
        """Cached analytic pair-latency vector (placement order) — the
        same cache/arithmetic as the gateway's fast-reject.

        Stamped with the path-cache generation like the gateway's: after
        a network-dynamics recompute the argmin shard classification is
        re-derived from the degraded delays instead of routing on stale
        vectors (generation 0 forever without dynamics)."""
        generation = self.instance.paths.generation
        if generation != self._latency_generation:
            self._latency_cache.clear()
            self._latency_generation = generation
        alpha = query.alpha_for(dataset_id)
        key = (dataset_id, query.home_node, alpha)
        vec = self._latency_cache.get(key)
        if vec is None:
            vec = self.instance.pair_latency_vector(
                query, self.instance.dataset(dataset_id)
            )
            vec.flags.writeable = False
            self._latency_cache[key] = vec
        return vec

    def _route(self, query: Query) -> int | dict[int, list[int]]:
        """Pick the shard(s) a query must touch.

        Returns a single shard id for a direct forward, or a
        ``shard -> dataset_ids`` map (more than one entry) for
        two-phase.  Deterministic: numpy's ``argmin`` breaks latency
        ties toward the lower placement index.
        """
        targets: dict[int, list[int]] = {}
        for d_id in query.demanded:
            vec = self._latency_vector(query, d_id)
            feasible = vec <= query.deadline_s
            if not feasible.any():
                # Deadline-infeasible everywhere: forward whole to the
                # closest node's shard — its state-free fast-reject
                # answers canonically (byte-parity with a bare gateway).
                return int(self._shard_of_index[int(np.argmin(vec))])
            masked = np.where(feasible, vec, np.inf)
            shard = int(self._shard_of_index[int(np.argmin(masked))])
            targets.setdefault(shard, []).append(d_id)
        if len(targets) == 1:
            return next(iter(targets))
        return targets

    async def _forward_submit(
        self,
        request_id: Any,
        query: Query,
        shard: int,
        respond: Callable[[dict[str, Any]], Any],
    ) -> None:
        """Relay a shard-local submit; the response passes through
        verbatim (re-keyed to the client's request id)."""
        obs = get_registry()
        self.counters["routed_local"] += 1
        obs.inc("serve.router.routed_local")
        try:
            payload = await asyncio.wait_for(
                self._links[shard].submit(query),
                timeout=self.config.rpc_timeout_s,
            )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            self.counters["shed"] += 1
            obs.inc("serve.router.shed")
            await respond(
                {
                    "id": request_id,
                    "ok": True,
                    "result": "shed",
                    "retry_after_s": self.config.rpc_timeout_s,
                }
            )
            return
        result = payload.get("result")
        if result in ("admitted", "rejected", "shed"):
            self.counters[result] += 1
            obs.inc(f"serve.router.{result}")
        await respond(
            {"id": request_id, **{k: v for k, v in payload.items() if k != "id"}}
        )

    async def _two_phase_submit(
        self,
        request_id: Any,
        query: Query,
        targets: dict[int, list[int]],
        respond: Callable[[dict[str, Any]], Any],
    ) -> None:
        """Coordinate one cross-shard admission (see the module docs)."""
        obs = get_registry()
        self.counters["routed_cross"] += 1
        obs.inc("serve.router.routed_cross")
        self._next_reservation += 1
        rid = f"x{self._next_reservation}"
        shard_ids = list(targets)
        timeout = self.config.rpc_timeout_s

        async def reserve_on(sid: int) -> dict[str, Any]:
            return await asyncio.wait_for(
                self._links[sid].reserve(rid, query, targets[sid]),
                timeout=timeout,
            )

        votes = await asyncio.gather(
            *(reserve_on(sid) for sid in shard_ids), return_exceptions=True
        )
        reserved = [
            isinstance(v, dict) and v.get("ok") and v.get("result") == "reserved"
            for v in votes
        ]

        if all(reserved):
            commits = await asyncio.gather(
                *(
                    asyncio.wait_for(self._links[sid].commit(rid), timeout=timeout)
                    for sid in shard_ids
                ),
                return_exceptions=True,
            )
            failures = sum(
                1
                for c in commits
                if not (isinstance(c, dict) and c.get("ok") and c.get("committed"))
            )
            if failures:
                # The reserved-but-uncommitted shard expires the hold at
                # its TTL — capacity is freed, never leaked, so the
                # admitted answer stands (see the module docs).
                self.counters["commit_failures"] += failures
                obs.inc("serve.router.commit_failures", failures)
            self.counters["two_phase_commits"] += 1
            self.counters["admitted"] += 1
            obs.inc("serve.router.two_phase_commits")
            obs.inc("serve.router.admitted")
            by_dataset = {
                a["dataset_id"]: a
                for v in votes
                if isinstance(v, dict)
                for a in v.get("assignments", ())
            }
            assignments = [by_dataset[d_id] for d_id in query.demanded]
            await respond(
                {
                    "id": request_id,
                    "ok": True,
                    "result": "admitted",
                    "response_s": max(a["latency_s"] for a in assignments),
                    "assignments": assignments,
                }
            )
            return

        # Abort everywhere best-effort (idempotent on the shards; a
        # reserve that never landed answers ``found: false``).
        self.counters["two_phase_aborts"] += 1
        obs.inc("serve.router.two_phase_aborts")
        await asyncio.gather(
            *(
                asyncio.wait_for(self._links[sid].abort(rid), timeout=timeout)
                for sid in shard_ids
            ),
            return_exceptions=True,  # a missed abort falls to the shard's TTL
        )
        rejected = any(
            isinstance(v, dict) and v.get("ok") and v.get("result") == "rejected"
            for v in votes
        )
        if rejected:
            self.counters["rejected"] += 1
            obs.inc("serve.router.rejected")
            await respond(
                {
                    "id": request_id,
                    "ok": True,
                    "result": "rejected",
                    "reason": "infeasible",
                }
            )
            return
        shed = next(
            (
                v
                for v in votes
                if isinstance(v, dict) and v.get("result") == "shed"
            ),
            None,
        )
        retry = (
            shed.get("retry_after_s", timeout) if shed is not None else timeout
        )
        self.counters["shed"] += 1
        obs.inc("serve.router.shed")
        await respond(
            {
                "id": request_id,
                "ok": True,
                "result": "shed",
                "retry_after_s": retry,
            }
        )

    # -- aggregation ops ---------------------------------------------------

    async def _aggregate_status(self) -> dict[str, Any]:
        """Router counters + per-shard status + summed shard counters."""
        payloads = await asyncio.gather(
            *(link.status() for link in self._links), return_exceptions=True
        )
        shards: list[dict[str, Any]] = []
        totals: dict[str, int] = {}
        for payload in payloads:
            if isinstance(payload, dict):
                shards.append(
                    {k: v for k, v in payload.items() if k not in ("id", "ok")}
                )
                counters = payload.get("counters")
                if isinstance(counters, dict):
                    for key, value in counters.items():
                        if isinstance(value, (int, float)):
                            totals[key] = totals.get(key, 0) + value
            else:
                shards.append({"error": str(payload)})
        return {
            "router": {
                **self.counters,
                "num_shards": len(self.shard_addresses),
            },
            "counters": totals,
            "shards": shards,
        }

    # -- the server --------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        obs = get_registry()
        write_lock = asyncio.Lock()
        message_tasks: set[asyncio.Task] = set()

        async def respond(payload: dict[str, Any]) -> None:
            async with write_lock:
                writer.write(encode_message(payload))
                await writer.drain()

        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                except ValueError:
                    self.counters["protocol_errors"] += 1
                    obs.inc("serve.router.protocol_errors")
                    with contextlib.suppress(Exception):
                        await respond(
                            error_response(
                                None,
                                f"message exceeds {MAX_LINE_BYTES} bytes",
                            )
                        )
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                try:
                    request = decode_request(line)
                except ProtocolError as exc:
                    self.counters["protocol_errors"] += 1
                    obs.inc("serve.router.protocol_errors")
                    await respond(error_response(None, str(exc)))
                    continue
                task = asyncio.create_task(self._dispatch(request, respond))
                message_tasks.add(task)
                task.add_done_callback(message_tasks.discard)
        except asyncio.CancelledError:
            pass
        finally:
            for task in message_tasks:
                task.cancel()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(
        self,
        request: dict[str, Any],
        respond: Callable[[dict[str, Any]], Any],
    ) -> None:
        obs = get_registry()
        request_id = request["id"]
        op = request["op"]
        try:
            if op == "submit":
                self.counters["submitted"] += 1
                obs.inc("serve.router.submitted")
                query = parse_submit_query(request)
                route = self._route(query)
                if isinstance(route, int):
                    await self._forward_submit(request_id, query, route, respond)
                else:
                    await self._two_phase_submit(
                        request_id, query, route, respond
                    )
            elif op == "status":
                payload = await self._aggregate_status()
                await respond({"id": request_id, "ok": True, **payload})
            elif op == "snapshot":
                results = await asyncio.gather(
                    *(link.snapshot() for link in self._links),
                    return_exceptions=True,
                )
                paths = [
                    r.get("path") if isinstance(r, dict) else None
                    for r in results
                ]
                await respond({"id": request_id, "ok": True, "paths": paths})
            elif op == "shutdown":
                for link in self._links:
                    with contextlib.suppress(Exception):
                        await asyncio.wait_for(
                            link.shutdown(), timeout=self.config.rpc_timeout_s
                        )
                await respond({"id": request_id, "ok": True, "stopping": True})
                asyncio.create_task(self.stop())
            else:
                # reopt / reserve / commit / abort are shard-side ops; a
                # client never coordinates two-phase through the router.
                raise ProtocolError(f"router does not serve op {op!r}")
        except ProtocolError as exc:
            self.counters["protocol_errors"] += 1
            obs.inc("serve.router.protocol_errors")
            await respond(error_response(request_id, str(exc)))
        except (ConnectionError, OSError) as exc:
            await respond(error_response(request_id, f"shard link failed: {exc}"))


class RouterThread:
    """Run a router on a dedicated event-loop thread.

    The synchronous mirror of
    :class:`~repro.serve.gateway.GatewayThread`, for the CLI and bench
    harnesses that drive a :class:`~repro.serve.shard.ShardCluster` from
    a plain thread.
    """

    def __init__(self, router: FrontRouter) -> None:
        self.router = router
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        """Start the loop thread and the router; returns the bound address."""
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self.router.address

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            try:
                await self.router.start()
            except BaseException as exc:  # surface bind errors to start()
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self.router.wait_closed()

        try:
            self._loop.run_until_complete(main())
        finally:
            # Open connection handlers may still be parked in readline();
            # cancel them so the loop closes without destroying tasks.
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

    def stop(self) -> None:
        """Stop the router and join the thread."""
        if self._loop is None or self._thread is None:
            return
        if not self.router._closed.is_set():
            _drive_stop_from_thread(
                self.router.stop, self.router._closed, self._loop, self._thread
            )
        self._thread.join(timeout=30)
