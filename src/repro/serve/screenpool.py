"""Parallel admission screening: the batch kernel and its prefork pool.

The gateway's micro-batch prefilter answers one question per submission:
*does any placement node pass capacity + deadline + replica-slot +
liveness for every demanded pair?*  This module factors that screen into

* :func:`build_rows` / :func:`screen_rows` — a fully vectorised kernel
  over flat ``(query, dataset)`` pair rows.  One fancy-indexed latency
  matrix replaces the per-pair cached-vector lookups of the in-process
  prefilter (``AdmissionGateway._prefilter``), to which it is proven
  element-for-element equal (``tests/serve/test_screenpool.py``);
* :class:`ScreenPool` — a prefork pool of worker processes running that
  kernel over shards of each micro-batch against the zero-copy
  shared-memory views of :mod:`repro.serve.shm`.

The pool never touches ``ClusterState`` itself: workers read published
views, return per-pair verdict bits plus the generation stamp they
screened against, and the single-writer admission loop retains sole
authority over commits.  A verdict computed against a stale generation is
re-screened by the caller — the same optimistic-``True`` /
exact-``False`` contract the serial prefilter has always had, extended
across processes.

Workers are started from :meth:`ScreenPool.start` with the *fork*
context when the platform offers it (statics are inherited copy-on-write)
and fall back to *spawn* (statics pickled once at startup) otherwise.
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.cluster.node import _EPS
from repro.serve.shm import ScreenStatics, SharedStateViews, StateSnapshot
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.state import ClusterState
    from repro.core.types import Query

__all__ = [
    "ScreenPool",
    "ScreenRows",
    "ScreenResult",
    "build_rows",
    "screen_rows",
    "snapshot_state",
    "verdicts_from_pairs",
]


@dataclass(frozen=True)
class ScreenRows:
    """One micro-batch flattened to ``(query, dataset)`` pair rows.

    ``query_row[r]`` maps pair ``r`` back to its position in the batch;
    the remaining arrays carry everything the kernel needs to score the
    pair against every placement node at once.
    """

    query_row: np.ndarray  # intp[R] — batch index of each pair
    dataset_idx: np.ndarray  # intp[R] — row into the statics' dataset axis
    home: np.ndarray  # intp[R] — topology id of the query's home node
    alpha: np.ndarray  # float64[R] — selectivity of the pair
    rate: np.ndarray  # float64[R] — query compute rate (GHz/GB)
    deadline_s: np.ndarray  # float64[R]

    def __len__(self) -> int:
        return int(self.query_row.shape[0])


@dataclass(frozen=True)
class ScreenResult:
    """A worker's answer for one shard: verdict bits + view generation."""

    task_id: int
    generation: int
    pair_ok: np.ndarray  # bool[R_shard]


def build_rows(queries: Sequence["Query"], statics: ScreenStatics) -> ScreenRows:
    """Flatten a batch of queries into kernel-ready pair rows."""
    query_row: list[int] = []
    dataset_idx: list[int] = []
    home: list[int] = []
    alpha: list[float] = []
    rate: list[float] = []
    deadline: list[float] = []
    index = statics.dataset_index
    for i, query in enumerate(queries):
        selectivity = query.selectivity
        for j, d_id in enumerate(query.demanded):
            query_row.append(i)
            dataset_idx.append(index[d_id])
            home.append(query.home_node)
            alpha.append(selectivity[j])
            rate.append(query.compute_rate)
            deadline.append(query.deadline_s)
    return ScreenRows(
        query_row=np.asarray(query_row, dtype=np.intp),
        dataset_idx=np.asarray(dataset_idx, dtype=np.intp),
        home=np.asarray(home, dtype=np.intp),
        alpha=np.asarray(alpha, dtype=np.float64),
        rate=np.asarray(rate, dtype=np.float64),
        deadline_s=np.asarray(deadline, dtype=np.float64),
    )


def screen_rows(
    statics: ScreenStatics, view: StateSnapshot, rows: ScreenRows
) -> np.ndarray:
    """Per-pair feasibility verdicts (``bool[R]``) against one view.

    Element-for-element the serial prefilter's verdict: a pair passes iff
    some placement node simultaneously fits its compute demand (with the
    scalar check's epsilon slack), meets its deadline, and — when the
    dataset is out of replica slots or nodes are down — already holds a
    live copy.  Every float op is the same IEEE expression the cached
    per-pair vectors evaluate, so the bits agree exactly.
    """
    di = rows.dataset_idx
    volumes = statics.volumes_gb[di]
    latency = volumes[:, None] * (
        statics.proc_delays[None, :]
        + rows.alpha[:, None] * statics.home_delays[rows.home]
    )
    demand = volumes * rows.rate
    node_ok = demand[:, None] <= view.free_ghz[None, :] + _EPS * statics.capacities
    node_ok &= latency <= rows.deadline_s[:, None]
    tight = view.slots_left[di] <= 0
    if tight.any():
        node_ok[tight] &= view.presence[di[tight]]
    if view.any_down:
        node_ok &= view.up[None, :]
        live = (view.presence & view.up[None, :]).any(axis=1)
        if statics.origin_external is not None:
            # Shard-scoped gateway: a remote origin is always a clone
            # source (its health is the owning shard's concern), exactly
            # as ClusterState.has_live_copy counts external copies.
            live = live | statics.origin_external
        node_ok[~live[di]] = False
    return node_ok.any(axis=1)


def verdicts_from_pairs(
    rows: ScreenRows, pair_ok: np.ndarray, batch_size: int
) -> list[bool]:
    """Fold pair verdicts into per-query verdicts (all pairs must pass)."""
    verdict = np.ones(batch_size, dtype=bool)
    bad = rows.query_row[~pair_ok]
    if bad.size:
        verdict[bad] = False
    return verdict.tolist()


def snapshot_state(
    state: "ClusterState", statics: ScreenStatics
) -> StateSnapshot:
    """Build an in-process :class:`StateSnapshot` of the live state.

    The inline (``screen_workers=1``) engine screens against this
    directly; the pool path publishes the same arrays through shared
    memory — either way the kernel sees identical bits.
    """
    return StateSnapshot(
        generation=state.generation,
        free_ghz=state.available_array(),
        up=state.up_mask(),
        slots_left=state.remaining_slots_array(statics.dataset_ids),
        presence=state.replica_presence_matrix(statics.dataset_ids),
    )


# -- worker side -----------------------------------------------------------


def _worker_main(
    shm_name: str,
    num_datasets: int,
    num_nodes: int,
    statics: ScreenStatics,
    tasks: "mp.queues.Queue",
    results: "mp.queues.Queue",
) -> None:  # pragma: no cover - exercised in a child process
    """Worker loop: attach the views, screen shards until the sentinel."""
    views = SharedStateViews.attach(shm_name, num_datasets, num_nodes)
    try:
        while True:
            task = tasks.get()
            if task is None:
                break
            task_id, expected_generation, rows = task
            view = views.read_snapshot()
            if view.generation < expected_generation:
                # The publish raced our attach/read: retry once — the
                # writer completes its seqlock'd publish in microseconds.
                view = views.read_snapshot()
            pair_ok = screen_rows(statics, view, rows)
            results.put(ScreenResult(task_id, view.generation, pair_ok))
    finally:
        views.close()


class ScreenPool:
    """Prefork pool screening micro-batch shards against shared views.

    Parameters
    ----------
    statics:
        The immutable screen tables (shipped to workers at start).
    num_workers:
        Worker process count (>= 1; the gateway only builds a pool for
        ``screen_workers > 1``, but a single-worker pool is valid and
        used by the tests).
    """

    def __init__(self, statics: ScreenStatics, num_workers: int) -> None:
        check_positive("num_workers", num_workers)
        self.statics = statics
        self.num_workers = int(num_workers)
        self._views: SharedStateViews | None = None
        self._workers: list[mp.process.BaseProcess] = []
        self._tasks: mp.queues.Queue | None = None
        self._results: mp.queues.Queue | None = None
        self._next_task = 0

    @property
    def running(self) -> bool:
        """Whether worker processes are live."""
        return bool(self._workers)

    def start(self) -> None:
        """Allocate the shared block and fork the workers."""
        if self.running:
            return
        methods = mp.get_all_start_methods()
        context = mp.get_context("fork" if "fork" in methods else "spawn")
        self._views = SharedStateViews.create(
            self.statics.num_datasets, self.statics.num_nodes
        )
        self._tasks = context.Queue()
        self._results = context.Queue()
        for _ in range(self.num_workers):
            process = context.Process(
                target=_worker_main,
                args=(
                    self._views.name,
                    self.statics.num_datasets,
                    self.statics.num_nodes,
                    self.statics,
                    self._tasks,
                    self._results,
                ),
                daemon=True,
            )
            process.start()
            self._workers.append(process)

    def close(self) -> None:
        """Stop workers, drop queues, destroy the shared block."""
        if self._tasks is not None:
            for _ in self._workers:
                with contextlib.suppress(Exception):
                    self._tasks.put(None)
        for process in self._workers:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive teardown
                process.terminate()
                process.join(timeout=5)
        self._workers.clear()
        for queue in (self._tasks, self._results):
            if queue is not None:
                with contextlib.suppress(Exception):
                    queue.close()
                    queue.join_thread()
        self._tasks = self._results = None
        if self._views is not None:
            self._views.close()
            self._views.unlink()
            self._views = None

    def __enter__(self) -> "ScreenPool":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the screening round-trip -----------------------------------------

    def publish(self, state: "ClusterState") -> int:
        """Export the live arrays to shared memory; returns the stamp."""
        if self._views is None:
            raise RuntimeError("pool is not started")
        view = snapshot_state(state, self.statics)
        self._views.publish(
            view.generation, view.free_ghz, view.up, view.slots_left, view.presence
        )
        return view.generation

    def screen(self, rows: ScreenRows, generation: int) -> tuple[np.ndarray, int]:
        """Screen ``rows`` across the workers against generation ``generation``.

        Shards the pair rows contiguously, fans them out, and reassembles
        the verdict vector.  Returns ``(pair_ok, oldest_generation)`` —
        the caller compares the generation against the live state and
        re-screens when a worker saw an older view.
        """
        if self._tasks is None or self._results is None:
            raise RuntimeError("pool is not started")
        total = len(rows)
        if total == 0:
            return np.zeros(0, dtype=bool), generation
        shards = min(self.num_workers, total)
        bounds = np.linspace(0, total, shards + 1).astype(np.intp)
        task_ids = []
        for s in range(shards):
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            shard = ScreenRows(
                query_row=rows.query_row[lo:hi],
                dataset_idx=rows.dataset_idx[lo:hi],
                home=rows.home[lo:hi],
                alpha=rows.alpha[lo:hi],
                rate=rows.rate[lo:hi],
                deadline_s=rows.deadline_s[lo:hi],
            )
            task_id = self._next_task
            self._next_task += 1
            task_ids.append((task_id, lo, hi))
            self._tasks.put((task_id, generation, shard))
        pair_ok = np.zeros(total, dtype=bool)
        oldest = generation
        expect = {task_id: (lo, hi) for task_id, lo, hi in task_ids}
        while expect:
            result: ScreenResult = self._results.get()
            span = expect.pop(result.task_id, None)
            if span is None:  # pragma: no cover - stale task from a re-screen
                continue
            lo, hi = span
            pair_ok[lo:hi] = result.pair_ok
            if result.generation < oldest:
                oldest = result.generation
        return pair_ok, oldest


def default_workers() -> int:
    """A sensible worker count: the CPUs left after the gateway's own."""
    return max(1, (os.cpu_count() or 1) - 1)
