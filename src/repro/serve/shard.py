"""Sharded control plane: partition placement nodes across gateways.

One admission gateway serializes every placement decision through a
single event loop, so aggregate decision throughput is capped by one
core.  This module scales the control plane *out* instead of up:

* :class:`ShardPlan` partitions the instance's placement nodes into
  ``N`` disjoint, non-empty groups — by region label when the topology
  carries them, else anchored on data centers (each cloudlet follows its
  minimum-delay DC), else round-robin;
* :class:`ShardCluster` runs one :class:`~repro.serve.gateway.AdmissionGateway`
  per group (each scoped to its node subset via
  ``GatewayConfig.shard_nodes``) behind a
  :class:`~repro.serve.router.FrontRouter`, all on dedicated event-loop
  threads, for the synchronous CLI/bench harnesses.

Partitioning is a pure function of the instance and the shard count —
every participant (router, benches, tests) derives the identical plan,
so no membership coordination protocol is needed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.instance import ProblemInstance
from repro.serve.gateway import AdmissionGateway, GatewayConfig, GatewayThread
from repro.serve.router import FrontRouter, RouterConfig, RouterThread
from repro.util.validation import ValidationError

__all__ = ["ShardCluster", "ShardPlan"]


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of the placement nodes into shards.

    Attributes
    ----------
    num_shards:
        Number of groups (>= 1).
    members:
        ``members[s]`` is shard ``s``'s node ids, a disjoint cover of
        the instance's placement nodes, each tuple in placement order.
    method:
        How the partition was derived: ``"single"`` (one shard),
        ``"region"`` (grouped by topology region labels),
        ``"dc-anchored"`` (each cloudlet follows its minimum-delay data
        center), or ``"round-robin"`` (fallback).
    """

    num_shards: int
    members: tuple[tuple[int, ...], ...]
    method: str

    def shard_of_node(self) -> dict[int, int]:
        """Map each placement node id to its shard index."""
        return {v: s for s, nodes in enumerate(self.members) for v in nodes}

    @classmethod
    def build(cls, instance: ProblemInstance, num_shards: int) -> "ShardPlan":
        """Partition ``instance``'s placement nodes into ``num_shards`` groups.

        The strategy ladder (first applicable wins):

        1. ``num_shards == 1`` — everything in one shard (``"single"``).
        2. Every placement node carries a non-empty region label and
           there are at least ``num_shards`` distinct regions — regions
           are sorted and dealt round-robin onto shards, keeping each
           region's nodes together (``"region"``).
        3. At least ``num_shards`` data centers — DCs are dealt onto
           shards in placement order and every cloudlet joins the shard
           of its minimum-delay DC, ties broken by the lower DC id
           (``"dc-anchored"``).
        4. Otherwise placement node ``i`` goes to shard ``i % N``
           (``"round-robin"``).

        Raises
        ------
        ValidationError
            When ``num_shards`` < 1 or exceeds the placement node count
            (an empty shard would serve nothing).
        """
        placement = instance.topology.placement_nodes
        n = int(num_shards)
        if n < 1:
            raise ValidationError(f"num_shards must be >= 1, got {num_shards}")
        if n > len(placement):
            raise ValidationError(
                f"num_shards={n} exceeds the {len(placement)} placement nodes"
            )
        if n == 1:
            return cls(num_shards=1, members=(tuple(placement),), method="single")

        topology = instance.topology
        assign: dict[int, int] = {}
        regions = [topology.spec(v).region for v in placement]
        distinct = sorted(set(regions))
        if all(regions) and len(distinct) >= n:
            region_shard = {r: i % n for i, r in enumerate(distinct)}
            for v, r in zip(placement, regions):
                assign[v] = region_shard[r]
            method = "region"
        elif len(topology.data_centers) >= n:
            paths = instance.paths
            dcs = [v for v in placement if v in set(topology.data_centers)]
            dc_shard = {dc: j % n for j, dc in enumerate(dcs)}
            for v in placement:
                if v in dc_shard:
                    assign[v] = dc_shard[v]
                else:
                    anchor = min(dcs, key=lambda dc: (paths.delay(v, dc), dc))
                    assign[v] = dc_shard[anchor]
            method = "dc-anchored"
        else:
            for i, v in enumerate(placement):
                assign[v] = i % n
            method = "round-robin"

        members = tuple(
            tuple(v for v in placement if assign[v] == s) for s in range(n)
        )
        for s, nodes in enumerate(members):
            if not nodes:  # pragma: no cover - the ladder above forbids it
                raise ValidationError(f"shard {s} of plan {method!r} is empty")
        return cls(num_shards=n, members=members, method=method)


class ShardCluster:
    """One router + ``N`` shard gateways on dedicated loop threads.

    The synchronous composition the CLI and benches drive: each shard
    gateway is the *base* config re-scoped to its plan group (with a
    per-shard checkpoint path when one is set), the router is built from
    the bound shard addresses, and :meth:`start`/:meth:`stop` bring the
    whole ensemble up and down in dependency order.
    """

    def __init__(
        self,
        instance: ProblemInstance,
        plan: ShardPlan,
        base_config: GatewayConfig,
        router_config: RouterConfig | None = None,
    ) -> None:
        if base_config.reopt is not None:
            raise ValidationError(
                "sharded serving does not support the re-optimizer "
                "(its migration authority spans shards)"
            )
        self.instance = instance
        self.plan = plan
        self.router_config = router_config or RouterConfig()
        self.gateways: list[AdmissionGateway] = []
        self._threads: list[GatewayThread] = []
        for sid, nodes in enumerate(plan.members):
            checkpoint = base_config.checkpoint_path
            config = dataclasses.replace(
                base_config,
                port=0,
                shard_nodes=nodes,
                shard_id=sid,
                checkpoint_path=(
                    f"{checkpoint}.shard{sid}" if checkpoint is not None else None
                ),
            )
            self.gateways.append(AdmissionGateway(instance, config))
        self.router: FrontRouter | None = None
        self._router_thread: RouterThread | None = None

    def start(self) -> tuple[str, int]:
        """Start every shard gateway, then the router; returns its address."""
        try:
            for gateway in self.gateways:
                thread = GatewayThread(gateway)
                self._threads.append(thread)
                thread.start()
            shards = [
                (gateway.address, nodes)
                for gateway, nodes in zip(self.gateways, self.plan.members)
            ]
            self.router = FrontRouter(self.instance, shards, self.router_config)
            self._router_thread = RouterThread(self.router)
            return self._router_thread.start()
        except BaseException:
            self.stop()
            raise

    def wait(self, timeout: float | None = None) -> None:
        """Block until the router stops (a shutdown request) or ``timeout``.

        A ``shutdown`` through the router fans out to every shard and
        then stops the router itself, so its thread exiting is the
        ensemble-is-down signal; :meth:`stop` afterwards is a no-op join.
        """
        if self._router_thread is not None and self._router_thread._thread is not None:
            self._router_thread._thread.join(timeout)

    def stop(self) -> None:
        """Stop the router first (no new work), then the shard gateways."""
        if self._router_thread is not None:
            self._router_thread.stop()
            self._router_thread = None
        for thread in self._threads:
            thread.stop()
        self._threads.clear()

    def __enter__(self) -> "ShardCluster":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
