"""Zero-copy shared-memory export of the gateway's hot ``ClusterState``.

The screening pool (:mod:`repro.serve.screenpool`) runs the admission
prefilter in worker *processes*.  Workers must see the arrays the screen
reads — free compute per node, replica presence, remaining ``K`` slots,
and node liveness — without pickling them per batch.  This module maps
those arrays onto one :class:`multiprocessing.shared_memory.SharedMemory`
block with versioned numpy views:

* the **writer** (the gateway's single admission loop) calls
  :meth:`SharedStateViews.publish` with the current state arrays and a
  generation stamp;
* **readers** (pool workers) call :meth:`SharedStateViews.read_snapshot`
  and get a consistent copy plus the generation it belongs to.

Consistency uses a seqlock: a sequence word is bumped to an *odd* value
before the writer touches the arrays and to the next *even* value after.
A reader re-reads whenever the sequence was odd or changed underneath it,
so a torn view is never returned.  The *generation* word is the
:attr:`repro.cluster.state.ClusterState.generation` mutation epoch at
publish time — a worker ships it back with its verdicts, letting the
admission loop detect that a screen ran against a stale view and
re-screen (see the gateway's ``serve.screen`` metrics).

Everything static about the screen — per-node processing delays and
capacities, per-dataset volumes, and the instance's full home→placement
pair-latency matrix — is shipped *once* per worker at fork time as a
:class:`ScreenStatics`; only the four live arrays round-trip through the
shared block.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.core.instance import ProblemInstance

__all__ = ["ScreenStatics", "SharedStateViews", "StateSnapshot"]

#: Header words (int64): [0] seqlock sequence, [1] generation stamp.
_HEADER_WORDS = 2
_HEADER_BYTES = _HEADER_WORDS * 8


@dataclass(frozen=True)
class ScreenStatics:
    """Immutable per-instance arrays the screening kernel indexes.

    All arrays are placement-ordered (column ``i`` is
    ``placement_nodes[i]``); dataset-indexed arrays follow
    ``dataset_ids`` (the instance's sorted dataset ids).  Every element
    is the exact float the scalar accessors return, so screens computed
    from these tables are bit-identical to the gateway's in-process
    prefilter.
    """

    dataset_ids: tuple[int, ...]
    dataset_index: dict[int, int]
    volumes_gb: np.ndarray  # float64[D]
    proc_delays: np.ndarray  # float64[N]
    capacities: np.ndarray  # float64[N]
    home_delays: np.ndarray  # float64[H, N] — row h = delays to home h
    #: Per-dataset flag: origin lives outside this gateway's shard, so
    #: the dataset stays clonable even with zero local copies.  ``None``
    #: for an unscoped gateway (the original single-gateway layout).
    origin_external: np.ndarray | None = None  # bool[D]

    @classmethod
    def from_instance(
        cls,
        instance: ProblemInstance,
        *,
        shard_nodes: tuple[int, ...] | None = None,
    ) -> "ScreenStatics":
        """Extract the static screen tables from ``instance``.

        ``shard_nodes`` marks datasets whose origin is outside the shard
        (see :attr:`origin_external`); the node-indexed tables stay full
        placement length — shard confinement rides on the ``-inf``
        available-compute mask the scoped state publishes.
        """
        dataset_ids = tuple(sorted(instance.datasets))
        volumes = np.fromiter(
            (instance.dataset(d).volume_gb for d in dataset_ids),
            dtype=np.float64,
            count=len(dataset_ids),
        )
        origin_external = None
        if shard_nodes is not None:
            local = frozenset(shard_nodes)
            origin_external = np.fromiter(
                (instance.dataset(d).origin_node not in local for d in dataset_ids),
                dtype=np.bool_,
                count=len(dataset_ids),
            )
        return cls(
            dataset_ids=dataset_ids,
            dataset_index={d: i for i, d in enumerate(dataset_ids)},
            volumes_gb=volumes,
            proc_delays=np.asarray(instance.proc_delays),
            capacities=np.asarray(instance.capacities),
            home_delays=np.asarray(instance.home_delay_matrix),
            origin_external=origin_external,
        )

    @property
    def num_datasets(self) -> int:
        return len(self.dataset_ids)

    @property
    def num_nodes(self) -> int:
        return int(self.proc_delays.shape[0])


@dataclass(frozen=True)
class StateSnapshot:
    """One consistent read of the live views (arrays are private copies)."""

    generation: int
    free_ghz: np.ndarray  # float64[N]
    up: np.ndarray  # bool[N]
    slots_left: np.ndarray  # int64[D]
    presence: np.ndarray  # bool[D, N]

    @property
    def any_down(self) -> bool:
        """Whether any placement node is marked down in this snapshot."""
        return not bool(self.up.all())


def _layout(num_datasets: int, num_nodes: int) -> tuple[dict[str, tuple[int, int]], int]:
    """(field → (offset, nbytes)) map and total block size."""
    fields: dict[str, tuple[int, int]] = {}
    offset = _HEADER_BYTES
    for name, nbytes in (
        ("free_ghz", num_nodes * 8),
        ("up", num_nodes),
        ("slots_left", num_datasets * 8),
        ("presence", num_datasets * num_nodes),
    ):
        fields[name] = (offset, nbytes)
        offset += nbytes
    return fields, offset


class SharedStateViews:
    """The shared block and its typed numpy views (writer or reader side).

    Use :meth:`create` in the owning (gateway) process and :meth:`attach`
    in workers; both sides index the same memory.  The owner must call
    :meth:`unlink` exactly once at teardown; every side calls
    :meth:`close`.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, num_datasets: int, num_nodes: int,
        *, owner: bool,
    ) -> None:
        self._shm = shm
        self._owner = owner
        self.num_datasets = int(num_datasets)
        self.num_nodes = int(num_nodes)
        fields, total = _layout(self.num_datasets, self.num_nodes)
        if shm.size < total:
            raise ValueError(
                f"shared block of {shm.size} bytes is smaller than the "
                f"{total}-byte layout for D={num_datasets}, N={num_nodes}"
            )
        buf = shm.buf
        self._header = np.ndarray((_HEADER_WORDS,), dtype=np.int64, buffer=buf)
        off, _ = fields["free_ghz"]
        self._free = np.ndarray((num_nodes,), dtype=np.float64, buffer=buf, offset=off)
        off, _ = fields["up"]
        self._up = np.ndarray((num_nodes,), dtype=np.bool_, buffer=buf, offset=off)
        off, _ = fields["slots_left"]
        self._slots = np.ndarray(
            (num_datasets,), dtype=np.int64, buffer=buf, offset=off
        )
        off, _ = fields["presence"]
        self._presence = np.ndarray(
            (num_datasets, num_nodes), dtype=np.bool_, buffer=buf, offset=off
        )

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, num_datasets: int, num_nodes: int) -> "SharedStateViews":
        """Allocate a fresh block sized for ``(D, N)`` (writer side)."""
        _, total = _layout(num_datasets, num_nodes)
        shm = shared_memory.SharedMemory(create=True, size=total)
        views = cls(shm, num_datasets, num_nodes, owner=True)
        views._header[:] = 0
        return views

    @classmethod
    def attach(
        cls, name: str, num_datasets: int, num_nodes: int
    ) -> "SharedStateViews":
        """Map an existing block by name (reader side)."""
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, num_datasets, num_nodes, owner=False)

    @property
    def name(self) -> str:
        """OS name of the block — what workers :meth:`attach` by."""
        return self._shm.name

    def close(self) -> None:
        """Drop this process's mapping (the block itself survives)."""
        # Release numpy views of the buffer first, else SharedMemory
        # refuses to close an exported pointer.
        self._header = self._free = self._up = None  # type: ignore[assignment]
        self._slots = self._presence = None  # type: ignore[assignment]
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the block (owner side, after :meth:`close`)."""
        if self._owner:
            self._shm.unlink()

    # -- seqlock protocol --------------------------------------------------

    @property
    def sequence(self) -> int:
        """Current seqlock word (odd = write in progress)."""
        return int(self._header[0])

    @property
    def generation(self) -> int:
        """Generation stamp of the last completed publish."""
        return int(self._header[1])

    def publish(
        self,
        generation: int,
        free_ghz: np.ndarray,
        up: np.ndarray,
        slots_left: np.ndarray,
        presence: np.ndarray,
    ) -> None:
        """Write one consistent view (single-writer only).

        The sequence word goes odd, the arrays land, the sequence word
        goes even: a reader that overlaps the write sees the odd/changed
        sequence and retries.
        """
        self._header[0] += 1  # odd: write in progress
        self._free[:] = free_ghz
        self._up[:] = up
        self._slots[:] = slots_left
        self._presence[:] = presence
        self._header[1] = generation
        self._header[0] += 1  # even: view complete

    def read_snapshot(self, *, max_retries: int = 64) -> StateSnapshot:
        """Copy out one seqlock-consistent view.

        Retries while a write is in flight; raises ``RuntimeError`` only
        if the writer livelocks the reader for ``max_retries`` attempts
        (never observed in practice — publishes are microseconds).
        """
        for attempt in range(max_retries):
            if attempt >= 8:
                time.sleep(5e-5)  # writer is mid-publish: yield the CPU
            seq0 = int(self._header[0])
            if seq0 % 2:  # write in progress
                continue
            snapshot = StateSnapshot(
                generation=int(self._header[1]),
                free_ghz=self._free.copy(),
                up=self._up.copy(),
                slots_left=self._slots.copy(),
                presence=self._presence.copy(),
            )
            if int(self._header[0]) == seq0:
                return snapshot
        raise RuntimeError(
            f"could not obtain a consistent view in {max_retries} attempts"
        )

    def __enter__(self) -> "SharedStateViews":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
        self.unlink()
