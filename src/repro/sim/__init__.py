"""Discrete-event execution of placements, and the §4.3 testbed emulation.

The placement algorithms reason about *analytic* latencies
(``|S_n|·d(v) + |S_n|·α·dt(p)``).  This subpackage actually *runs* a
placement: admitted queries arrive, processing tasks occupy node compute,
intermediate results traverse the explicit minimum-delay paths hop by hop,
and per-query response times are measured.

Two fidelity levels:

* ``contention=False`` (default) — links are pure delay pipes and node
  compute is reserved per the placement; realized latencies equal the
  analytic model exactly, which is how integration tests prove the
  admission logic sound end-to-end.
* ``contention=True`` — transfers serialise FIFO per link and compute
  over-subscription queues, exposing effects the analytic model ignores
  (used by the testbed experiments and robustness ablations).
"""

from repro.sim.engine import Simulator, Event
from repro.sim.faults import (
    FaultConfig,
    FaultEvent,
    FaultInjector,
    FaultReport,
    build_fault_schedule,
)
from repro.sim.resources import FifoResource, ComputePool
from repro.sim.events import PairTrace, QueryOutcome, ExecutionReport
from repro.sim.execution import ExecutionConfig, execute_placement
from repro.sim.testbed import TestbedExperiment, TestbedReport, run_testbed_experiment
from repro.sim.consistency_sim import (
    ConsistencySimConfig,
    ConsistencySimReport,
    simulate_consistency,
)

__all__ = [
    "Simulator",
    "Event",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultReport",
    "build_fault_schedule",
    "FifoResource",
    "ComputePool",
    "PairTrace",
    "QueryOutcome",
    "ExecutionReport",
    "ExecutionConfig",
    "execute_placement",
    "TestbedExperiment",
    "TestbedReport",
    "run_testbed_experiment",
    "ConsistencySimConfig",
    "ConsistencySimReport",
    "simulate_consistency",
]
