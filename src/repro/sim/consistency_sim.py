"""Event-driven replica synchronisation (§2.4 dynamics, simulated).

The analytic :class:`~repro.cluster.consistency.ConsistencyModel` counts
sync operations and shipped volume; this module *plays* them: every
dataset with slave replicas accumulates new data continuously, a sync
fires whenever the accumulation crosses the threshold, and the delta
travels the minimum-delay path to every slave — serialising per link when
contention is enabled, so hot origins reveal themselves as link queues.

Beyond the analytic model it measures **staleness**: the time-average
volume of data a slave has not yet received.  Staleness is what the
threshold really trades against sync frequency (total shipped volume is
threshold-invariant up to rounding), and it is the quantity an operator
tuning §2.4's threshold actually cares about.

The event clock runs in days (the natural horizon unit); transfer
durations are converted from seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cluster.consistency import ConsistencyModel
from repro.core.instance import ProblemInstance
from repro.network.routing import extract_path
from repro.sim.engine import Simulator
from repro.sim.resources import FifoResource
from repro.util.validation import check_positive

__all__ = ["ConsistencySimConfig", "ConsistencySimReport", "simulate_consistency"]

_SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class ConsistencySimConfig:
    """Parameters of the consistency simulation.

    Attributes
    ----------
    model:
        Threshold/growth parameters shared with the analytic model.
    horizon_days:
        Simulated duration.
    contention:
        Serialise sync transfers crossing the same link.
    """

    model: ConsistencyModel = ConsistencyModel()
    horizon_days: float = 30.0
    contention: bool = True

    def __post_init__(self) -> None:
        check_positive("horizon_days", self.horizon_days)


@dataclass(frozen=True)
class ConsistencySimReport:
    """Measured outcome of one consistency simulation.

    Attributes
    ----------
    syncs:
        Update operations fired (per-dataset syncs, matching the analytic
        count).
    shipped_gb:
        Total delta volume delivered to slaves.
    mean_staleness_gb:
        Time-average undelivered volume per slave replica, averaged over
        all slaves (0 when no dataset has slaves).
    max_link_busy_s:
        Busiest link's total transfer occupancy (contention mode only;
        0 otherwise).
    transfer_time_s:
        Σ per-delivery network time.
    """

    syncs: int
    shipped_gb: float
    mean_staleness_gb: float
    max_link_busy_s: float
    transfer_time_s: float


def simulate_consistency(
    instance: ProblemInstance,
    replicas: Mapping[int, tuple[int, ...]],
    config: ConsistencySimConfig | None = None,
) -> ConsistencySimReport:
    """Play threshold-triggered synchronisation over the horizon.

    Parameters
    ----------
    instance:
        Supplies volumes, origins, paths and link delays.
    replicas:
        Dataset id → replica nodes (a solution's
        :attr:`~repro.core.types.PlacementSolution.replicas`).
    config:
        Simulation parameters.
    """
    config = config or ConsistencySimConfig()
    model = config.model
    sim = Simulator()

    links: dict[tuple[int, int], FifoResource] = {}
    if config.contention:
        links = {
            edge: FifoResource(sim, name=f"link{edge}")
            for edge in instance.topology.link_delays
        }

    sync_count = [0]
    shipped = [0.0]
    transfer_time = [0.0]
    # Per-slave staleness accounting: staleness integral accumulates the
    # sawtooth area  ∫ undelivered(t) dt  per (dataset, slave).
    staleness_integral = [0.0]
    num_slaves = 0

    if model.growth_rate_per_day <= 0.0:
        return ConsistencySimReport(0, 0.0, 0.0, 0.0, 0.0)

    period_days = model.threshold / model.growth_rate_per_day

    def deliver(
        d_id: int, origin: int, slave: int, delta_gb: float, fired_at: float
    ) -> None:
        """Ship one delta to one slave along the min-delay path."""
        dataset = instance.dataset(d_id)
        path = extract_path(instance.paths, origin, slave)

        def hop(i: int) -> None:
            if i >= len(path) - 1:
                # Delivered: the slave was missing delta_gb since one full
                # accumulation period before the sync fired; add the
                # sawtooth triangle plus the in-flight rectangle.
                in_flight_days = sim.now - fired_at
                staleness_integral[0] += (
                    0.5 * delta_gb * period_days + delta_gb * in_flight_days
                )
                transfer_time[0] += (sim.now - fired_at) * _SECONDS_PER_DAY
                shipped[0] += delta_gb
                return
            u, v = path[i], path[i + 1]
            duration_days = (
                instance.topology.link_delay(u, v) * delta_gb / _SECONDS_PER_DAY
            )
            if config.contention:
                link = links[(u, v) if u < v else (v, u)]
                link.acquire(
                    duration_days,
                    lambda: sim.schedule_in(duration_days, lambda: hop(i + 1)),
                )
            else:
                sim.schedule_in(duration_days, lambda: hop(i + 1))

        hop(0)

    for d_id, nodes in replicas.items():
        dataset = instance.dataset(d_id)
        origin = dataset.origin_node
        slaves = [v for v in nodes if v != origin]
        if not slaves:
            continue
        num_slaves += len(slaves)
        delta_gb = model.threshold * dataset.volume_gb
        n_syncs = model.syncs_over(config.horizon_days)

        def fire(d=d_id, o=origin, sl=tuple(slaves), dg=delta_gb) -> None:
            sync_count[0] += 1
            for slave in sl:
                deliver(d, o, slave, dg, sim.now)

        for i in range(1, n_syncs + 1):
            sim.schedule(i * period_days, fire)

    sim.run()
    mean_staleness = (
        staleness_integral[0] / (config.horizon_days * num_slaves)
        if num_slaves
        else 0.0
    )
    max_busy = max(
        (link.total_busy_s * _SECONDS_PER_DAY for link in links.values()),
        default=0.0,
    )
    return ConsistencySimReport(
        syncs=sync_count[0],
        shipped_gb=shipped[0],
        mean_staleness_gb=mean_staleness,
        max_link_busy_s=max_busy,
        transfer_time_s=transfer_time[0],
    )
