"""Minimal deterministic discrete-event engine.

A binary-heap event queue with a monotonically increasing sequence number
as tie-break, so simultaneous events fire in schedule order and every run
is exactly reproducible.  Callbacks schedule further events; the engine
knows nothing about queries or networks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.obs import get_registry

__all__ = ["Event", "Simulator"]


@dataclass(order=True, frozen=True)
class Event:
    """One scheduled callback.

    Ordering is by ``(time, seq)``: earlier time first, FIFO among
    simultaneous events.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class Simulator:
    """Deterministic event loop.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(1.5, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.5]
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events fired so far."""
        return self._processed

    def schedule(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at absolute ``time`` (>= now)."""
        if time < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        heapq.heappush(self._queue, Event(max(time, self._now), next(self._seq), action))

    def schedule_in(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` after a relative ``delay`` (>= 0)."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.schedule(self._now + delay, action)

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> None:
        """Process events in order until the queue drains.

        Parameters
        ----------
        until:
            Stop once the next event is strictly later (that event stays
            queued).
        max_events:
            Safety valve against runaway schedules.  The budget is
            **per call**: each ``run()`` may fire up to ``max_events``
            events regardless of how many earlier calls on the same
            simulator processed (:attr:`events_processed` keeps the
            cumulative total across calls).
        """
        # Observability is resolved once per run; with the default null
        # registry the loop body carries no instrumentation at all.
        obs = get_registry()
        observe = obs.observe if obs.enabled else None
        fired = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                break
            event = heapq.heappop(self._queue)
            self._now = event.time
            self._processed += 1
            fired += 1
            if fired > max_events:
                raise RuntimeError(f"exceeded {max_events} events; runaway schedule?")
            if observe is not None:
                observe("sim.queue_depth", float(len(self._queue)))
            event.action()
        if observe is not None:
            obs.inc("sim.events", fired)
        if until is not None and self._now < until:
            self._now = until
