"""Telemetry records produced by placement execution."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PairTrace", "QueryOutcome", "ExecutionReport"]


@dataclass(frozen=True)
class PairTrace:
    """Timeline of one (query, dataset) evaluation.

    Attributes
    ----------
    dataset_id, node:
        What ran where.
    started_s, processed_s, delivered_s:
        Absolute times: processing start, processing end (= transfer
        start), and arrival of the intermediate result at the home node.
    """

    dataset_id: int
    node: int
    started_s: float
    processed_s: float
    delivered_s: float


@dataclass(frozen=True)
class QueryOutcome:
    """Measured execution of one admitted query.

    Attributes
    ----------
    query_id:
        The query.
    arrival_s:
        When it arrived.
    response_s:
        Measured response latency — max over demanded datasets of
        (delivery time − arrival).
    deadline_s:
        Its QoS requirement.
    pairs:
        Per-dataset traces.
    """

    query_id: int
    arrival_s: float
    response_s: float
    deadline_s: float
    pairs: tuple[PairTrace, ...] = field(default_factory=tuple)

    @property
    def met_deadline(self) -> bool:
        """Whether the measured response beat the QoS deadline."""
        return self.response_s <= self.deadline_s * (1.0 + 1e-9)


@dataclass(frozen=True)
class ExecutionReport:
    """Aggregate result of executing a placement.

    Attributes
    ----------
    outcomes:
        One record per executed (admitted) query.
    makespan_s:
        Time the last intermediate result was delivered.
    events:
        Events processed by the engine.
    """

    outcomes: tuple[QueryOutcome, ...]
    makespan_s: float
    events: int

    @property
    def num_executed(self) -> int:
        """Queries executed."""
        return len(self.outcomes)

    @property
    def deadline_violations(self) -> int:
        """Queries whose measured latency exceeded their deadline."""
        return sum(1 for o in self.outcomes if not o.met_deadline)

    @property
    def mean_response_s(self) -> float:
        """Mean measured response latency (0 when nothing ran)."""
        if not self.outcomes:
            return 0.0
        return sum(o.response_s for o in self.outcomes) / len(self.outcomes)

    @property
    def max_response_s(self) -> float:
        """Worst measured response latency (0 when nothing ran)."""
        return max((o.response_s for o in self.outcomes), default=0.0)
