"""Execute a placement solution in the discrete-event simulator.

For every admitted query: at its arrival time, each demanded dataset's
processing task starts at its assigned node (duration ``|S_n|·d(v)``,
holding ``|S_n|·r_m`` GHz); on completion the intermediate result
(``α·|S_n]`` GB) traverses the explicit minimum-delay path hop by hop
(each hop takes ``dt(e)·α·|S_n|``); when the last dataset's result reaches
the home node the query completes.

In contention-free mode this realises the analytic latency model exactly —
the integration tests assert measured == analytic and no admitted query
misses its deadline.  With ``contention=True``, transfers crossing the same
link serialise and compute over-subscription queues, quantifying how far
the analytic admission is from a loaded system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instance import ProblemInstance
from repro.core.types import PlacementSolution
from repro.network.routing import extract_path
from repro.obs import get_registry
from repro.sim.engine import Simulator
from repro.sim.events import ExecutionReport, PairTrace, QueryOutcome
from repro.sim.resources import ComputePool, FifoResource
from repro.util.rng import spawn_rng
from repro.util.validation import check_non_negative

__all__ = ["ExecutionConfig", "execute_placement"]


@dataclass(frozen=True)
class ExecutionConfig:
    """Execution parameters.

    Attributes
    ----------
    contention:
        ``False``: pure-delay links, per-placement compute reservation
        (analytic fidelity).  ``True``: FIFO links and queued compute.
    arrival:
        ``"simultaneous"`` — all queries arrive at t=0 (the regime the
        proactive placement admits for); ``"poisson"`` — exponential
        inter-arrivals with mean ``mean_interarrival_s``.
    mean_interarrival_s:
        Mean gap for Poisson arrivals.
    seed:
        Arrival-draw seed (Poisson mode only).
    """

    contention: bool = False
    arrival: str = "simultaneous"
    mean_interarrival_s: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival not in ("simultaneous", "poisson"):
            raise ValueError(f"unknown arrival mode {self.arrival!r}")
        check_non_negative("mean_interarrival_s", self.mean_interarrival_s)


def _arrival_times(
    config: ExecutionConfig, query_ids: list[int]
) -> dict[int, float]:
    """Arrival time per executed query."""
    if config.arrival == "simultaneous":
        return {q: 0.0 for q in query_ids}
    rng = spawn_rng(config.seed, "sim/arrivals")
    gaps = rng.exponential(config.mean_interarrival_s, size=len(query_ids))
    times = np.cumsum(gaps)
    return {q: float(t) for q, t in zip(query_ids, times)}


def execute_placement(
    instance: ProblemInstance,
    solution: PlacementSolution,
    config: ExecutionConfig | None = None,
) -> ExecutionReport:
    """Run every admitted query of ``solution`` through the event simulator.

    Returns
    -------
    ExecutionReport
        Measured response times, one outcome per admitted query.
    """
    config = config or ExecutionConfig()
    obs = get_registry()
    sim = Simulator()
    topo = instance.topology

    pools: dict[int, ComputePool] = {}
    links: dict[tuple[int, int], FifoResource] = {}
    if config.contention:
        pools = {
            v: ComputePool(sim, topo.capacity(v), name=topo.spec(v).name)
            for v in instance.placement_nodes
        }
        links = {
            edge: FifoResource(sim, name=f"link{edge}")
            for edge in topo.link_delays
        }

    executed = sorted(solution.admitted)
    arrivals = _arrival_times(config, executed)

    # Mutable completion state per query.
    pending: dict[int, int] = {}
    deliveries: dict[int, list[PairTrace]] = {q: [] for q in executed}
    outcomes: list[QueryOutcome] = []

    def finish_pair(q_id: int, trace: PairTrace) -> None:
        deliveries[q_id].append(trace)
        pending[q_id] -= 1
        if pending[q_id] == 0:
            query = instance.query(q_id)
            response = max(
                t.delivered_s for t in deliveries[q_id]
            ) - arrivals[q_id]
            if obs.enabled:
                obs.observe("sim.query_response_s", response)
                if response > query.deadline_s:
                    obs.inc("sim.deadline_violations")
            outcomes.append(
                QueryOutcome(
                    query_id=q_id,
                    arrival_s=arrivals[q_id],
                    response_s=response,
                    deadline_s=query.deadline_s,
                    pairs=tuple(
                        sorted(deliveries[q_id], key=lambda t: t.dataset_id)
                    ),
                )
            )

    def start_transfer(
        q_id: int, d_id: int, node: int, started: float, processed: float
    ) -> None:
        """Ship the intermediate result along the explicit best path."""
        query = instance.query(q_id)
        dataset = instance.dataset(d_id)
        result_gb = query.alpha_for(d_id) * dataset.volume_gb
        path = extract_path(instance.paths, node, query.home_node)

        def hop(i: int) -> None:
            if i >= len(path) - 1:
                finish_pair(
                    q_id,
                    PairTrace(
                        dataset_id=d_id,
                        node=node,
                        started_s=started,
                        processed_s=processed,
                        delivered_s=sim.now,
                    ),
                )
                return
            u, v = path[i], path[i + 1]
            duration = topo.link_delay(u, v) * result_gb
            if config.contention:
                link = links[(u, v) if u < v else (v, u)]
                link.acquire(duration, lambda: sim.schedule_in(duration, lambda: hop(i + 1)))
            else:
                sim.schedule_in(duration, lambda: hop(i + 1))

        hop(0)

    def start_pair(q_id: int, d_id: int, node: int) -> None:
        query = instance.query(q_id)
        dataset = instance.dataset(d_id)
        proc_duration = dataset.volume_gb * topo.proc_delay(node)
        demand_ghz = dataset.volume_gb * query.compute_rate
        started = sim.now

        def run() -> None:
            begin = sim.now
            sim.schedule_in(
                proc_duration,
                lambda: start_transfer(q_id, d_id, node, started, begin + proc_duration),
            )

        if config.contention:
            pools[node].acquire(demand_ghz, proc_duration, run)
        else:
            run()

    for q_id in executed:
        query = instance.query(q_id)
        served = [
            (d_id, a.node)
            for (qq, d_id), a in solution.assignments.items()
            if qq == q_id
        ]
        pending[q_id] = len(served)
        for d_id, node in sorted(served):
            sim.schedule(
                arrivals[q_id],
                lambda q=q_id, d=d_id, n=node: start_pair(q, d, n),
            )
        if not served:  # defensive: admitted queries always have pairs
            pending[q_id] = 0
            outcomes.append(
                QueryOutcome(q_id, arrivals[q_id], 0.0, query.deadline_s)
            )

    with obs.span(
        "sim.execute_placement",
        queries=len(executed),
        contention=config.contention,
    ):
        sim.run()
    outcomes.sort(key=lambda o: o.query_id)
    return ExecutionReport(
        outcomes=tuple(outcomes),
        makespan_s=sim.now,
        events=sim.events_processed,
    )
