"""Seeded fault injection for online sessions (availability under churn).

The paper motivates replication with availability — datasets are copied so
the edge cloud stays "highly available, reliable and scalable" (§2.3) —
but :mod:`repro.core.repair` only tests that claim statically: it knocks
nodes out of a *finished* placement and repairs once.  This module makes
failures *events*: node crashes and recoveries are drawn from a seeded
renewal process and scheduled into the same :class:`~repro.sim.engine.Simulator`
that drives query arrivals, so queries arrive, crash into, and fail over
around live faults.

Division of labour:

* :func:`build_fault_schedule` — a pure function from
  ``(nodes, horizon, config)`` to a fault-event sequence; the whole
  schedule is derived up front from ``FaultConfig.seed`` so the same seed
  reproduces the identical fault trace regardless of what the workload
  does.
* :class:`FaultInjector` — wires the schedule into a simulator, applies
  crash/recover semantics to a fault-aware
  :class:`~repro.cluster.state.ClusterState` (mark down, evict in-flight
  allocations, destroy non-origin replicas), tracks the time-weighted
  availability curve, and aggregates the :class:`FaultReport`.
* The *failover policy* (which queries retry where, with what backoff)
  lives in ``OnlineSession`` (:mod:`repro.core.online`), which reuses
  :func:`repro.core.repair.best_failover_candidate` — the same
  surviving-replica rule as the static repair pass.

Crash semantics mirror ``repair_placement``: non-origin replicas on a
crashed node are destroyed (their ``K`` slots free up), while the origin's
ledger entry survives — the authoritative copy still occupies a slot and
returns to service when its node recovers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.obs import get_registry
from repro.util.rng import spawn_rng
from repro.util.validation import check_non_negative, check_positive

if TYPE_CHECKING:  # avoid sim → cluster → core import cycles at runtime
    from repro.cluster.state import ClusterState
    from repro.sim.engine import Simulator

__all__ = [
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultReport",
    "build_fault_schedule",
    "integrate_curve",
]


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection parameters for an online session.

    Attributes
    ----------
    mean_time_to_failure_s:
        Mean gap of the cluster-wide crash renewal process (exponential).
        Each crash picks a victim uniformly among the currently-up nodes.
    mean_downtime_s:
        Mean node downtime per crash (exponential).
    seed:
        Schedule seed; the entire fault trace is a pure function of
        ``(placement nodes, horizon, this config)``.
    max_failures:
        Cap on the number of crashes injected (``None`` = unlimited
        within the horizon).
    min_up_nodes:
        Crash draws that would leave fewer than this many nodes up are
        skipped (the draw still consumes its gap, keeping later events
        identical).
    failover_retries:
        How many times a query's failed failover is retried before the
        query is interrupted.
    failover_backoff_s:
        Base retry delay; attempt ``k`` waits ``backoff · 2^k`` (bounded
        exponential backoff).
    """

    mean_time_to_failure_s: float = 5.0
    mean_downtime_s: float = 1.0
    seed: int = 0
    max_failures: int | None = None
    min_up_nodes: int = 1
    failover_retries: int = 3
    failover_backoff_s: float = 0.05

    def __post_init__(self) -> None:
        check_positive("mean_time_to_failure_s", self.mean_time_to_failure_s)
        check_positive("mean_downtime_s", self.mean_downtime_s)
        if self.max_failures is not None and self.max_failures < 0:
            raise ValueError(
                f"max_failures must be >= 0 or None, got {self.max_failures}"
            )
        if self.min_up_nodes < 1:
            raise ValueError(
                f"min_up_nodes must be >= 1, got {self.min_up_nodes}"
            )
        if self.failover_retries < 0:
            raise ValueError(
                f"failover_retries must be >= 0, got {self.failover_retries}"
            )
        check_non_negative("failover_backoff_s", self.failover_backoff_s)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault transition.

    ``kind`` is ``"crash"`` or ``"recover"``; events sort by
    ``(time, kind, node)``, so a crash precedes a recovery at the same
    instant.
    """

    time: float
    kind: str
    node: int


@dataclass(frozen=True)
class FaultReport:
    """Aggregate fault + failover outcome of one online session.

    Attributes
    ----------
    schedule:
        The injected fault events, in firing order.
    crashes, recoveries:
        Transition counts actually fired.
    availability_curve:
        Step function ``(time, up_fraction)`` of the fraction of
        placement nodes up, starting at ``(0.0, 1.0)``.
    time_weighted_availability:
        Integral of the curve over the session divided by its duration
        (1.0 when no time elapses).
    mttr_s:
        Mean service-repair time over successful failovers: crash instant
        → lost pairs re-served (0.0 when there were none).
    failovers_attempted, failovers_succeeded:
        Per-query failover transactions tried / committed (retries count
        as new attempts).
    queries_interrupted:
        Admitted queries whose lost service was never fully restored
        (retries exhausted, or the hold ended while pairs were pending).
    queries_recovered:
        Admitted queries that lost pairs and completed with full service
        after failover.
    degraded_arrivals, degraded_admitted:
        Arrivals (and admissions among them) that landed while at least
        one node was down.
    degraded_throughput:
        ``degraded_admitted / degraded_arrivals`` (1.0 when no arrival
        landed during an outage).
    """

    schedule: tuple[FaultEvent, ...]
    crashes: int
    recoveries: int
    availability_curve: tuple[tuple[float, float], ...]
    time_weighted_availability: float
    mttr_s: float
    failovers_attempted: int
    failovers_succeeded: int
    queries_interrupted: int
    queries_recovered: int
    degraded_arrivals: int
    degraded_admitted: int
    degraded_throughput: float


def build_fault_schedule(
    nodes: Sequence[int], horizon: float, config: FaultConfig
) -> tuple[FaultEvent, ...]:
    """Draw the crash/recover schedule for ``nodes`` over ``[0, horizon)``.

    Crashes arrive as an exponential renewal process with mean
    ``mean_time_to_failure_s``; each picks a victim uniformly among the
    nodes up at that instant and takes it down for an exponential
    downtime.  Recoveries may land beyond ``horizon`` (every crash is
    paired with its recovery).  Pure and deterministic: the same
    arguments always return the identical schedule.
    """
    check_non_negative("horizon", horizon)
    rng = spawn_rng(config.seed, "faults/schedule")
    up = set(int(v) for v in nodes)
    pending: list[tuple[float, int]] = []  # (recovery time, node)
    events: list[FaultEvent] = []
    crashes = 0
    t = 0.0
    while config.max_failures is None or crashes < config.max_failures:
        t += float(rng.exponential(config.mean_time_to_failure_s))
        if t >= horizon:
            break
        while pending and pending[0][0] <= t:
            _, back = heapq.heappop(pending)
            up.add(back)
        if len(up) <= config.min_up_nodes:
            continue  # too degraded to crash another node; skip this draw
        ordered = sorted(up)
        victim = ordered[int(rng.integers(0, len(ordered)))]
        downtime = float(rng.exponential(config.mean_downtime_s))
        events.append(FaultEvent(t, "crash", victim))
        events.append(FaultEvent(t + downtime, "recover", victim))
        up.remove(victim)
        heapq.heappush(pending, (t + downtime, victim))
        crashes += 1
    return tuple(sorted(events, key=lambda e: (e.time, e.kind, e.node)))


class FaultInjector:
    """Applies a fault schedule to a live cluster inside a simulator.

    Parameters
    ----------
    sim, state:
        The session's event engine and (fault-aware) cluster state.
    schedule:
        Events to inject, from :func:`build_fault_schedule`.
    on_pairs_lost:
        Callback ``(node, evicted_tags)`` fired after a crash is applied;
        the session maps the evicted ``(query_id, dataset_id)`` tags to
        running queries and drives failover.
    """

    def __init__(
        self,
        sim: "Simulator",
        state: "ClusterState",
        schedule: Sequence[FaultEvent],
        on_pairs_lost: Callable[[int, tuple[object, ...]], None],
    ) -> None:
        self._sim = sim
        self._state = state
        self.schedule = tuple(schedule)
        self._on_pairs_lost = on_pairs_lost
        self._total_nodes = len(state.nodes)
        self._fired: list[FaultEvent] = []
        self._curve: list[tuple[float, float]] = [(0.0, 1.0)]
        self._repair_delays: list[float] = []
        self.crashes = 0
        self.recoveries = 0
        self.failovers_attempted = 0
        self.failovers_succeeded = 0
        self.queries_interrupted = 0
        self.queries_recovered = 0
        self.degraded_arrivals = 0
        self.degraded_admitted = 0

    def arm(self) -> None:
        """Schedule every fault event into the simulator."""
        for event in self.schedule:
            self._sim.schedule(event.time, lambda e=event: self._fire(e))

    # -- event application -------------------------------------------------

    def _fire(self, event: FaultEvent) -> None:
        obs = get_registry()
        state = self._state
        self._fired.append(event)
        if event.kind == "crash":
            state.mark_down(event.node)
            evicted = state.evict_allocations(event.node)
            dropped = state.drop_replicas(event.node)
            self.crashes += 1
            obs.inc("faults.crashes")
            obs.inc("faults.allocations_lost", len(evicted))
            obs.inc("faults.replicas_lost", len(dropped))
            self._record_point()
            self._on_pairs_lost(event.node, evicted)
        else:
            state.mark_up(event.node)
            self.recoveries += 1
            obs.inc("faults.recoveries")
            self._record_point()

    def _record_point(self) -> None:
        frac = 1.0 - len(self._state.down_nodes()) / self._total_nodes
        self._curve.append((self._sim.now, frac))

    # -- session accounting ------------------------------------------------

    def note_arrival(self, degraded: bool) -> None:
        """Record one arrival; ``degraded`` while any node is down."""
        if degraded:
            self.degraded_arrivals += 1

    def note_admission(self, degraded: bool) -> None:
        """Record one admission; ``degraded`` while any node is down."""
        if degraded:
            self.degraded_admitted += 1

    def note_failover(self, success: bool, repair_delay_s: float) -> None:
        """Record one failover transaction attempt and its outcome."""
        self.failovers_attempted += 1
        if success:
            self.failovers_succeeded += 1
            self._repair_delays.append(repair_delay_s)
            get_registry().observe("faults.repair_s", repair_delay_s)

    def note_interrupted(self) -> None:
        """Record an admitted query whose service was never restored."""
        self.queries_interrupted += 1
        get_registry().inc("online.interrupted")

    def note_recovered(self) -> None:
        """Record an admitted query that completed after failing over."""
        self.queries_recovered += 1
        get_registry().inc("online.recovered")

    # -- reporting ---------------------------------------------------------

    def report(self, end_time: float) -> FaultReport:
        """Assemble the :class:`FaultReport` for a session ending now."""
        return FaultReport(
            schedule=tuple(self._fired),
            crashes=self.crashes,
            recoveries=self.recoveries,
            availability_curve=tuple(self._curve),
            time_weighted_availability=_integrate_curve(self._curve, end_time),
            mttr_s=(
                sum(self._repair_delays) / len(self._repair_delays)
                if self._repair_delays
                else 0.0
            ),
            failovers_attempted=self.failovers_attempted,
            failovers_succeeded=self.failovers_succeeded,
            queries_interrupted=self.queries_interrupted,
            queries_recovered=self.queries_recovered,
            degraded_arrivals=self.degraded_arrivals,
            degraded_admitted=self.degraded_admitted,
            degraded_throughput=(
                self.degraded_admitted / self.degraded_arrivals
                if self.degraded_arrivals
                else 1.0
            ),
        )


def integrate_curve(
    curve: Sequence[tuple[float, float]], end_time: float
) -> float:
    """Time-weighted mean of a right-continuous step function on [0, end].

    Shared by the node-fault availability report and the link-dynamics
    availability report (:mod:`repro.network.dynamics`).
    """
    if end_time <= 0.0:
        return 1.0
    area = 0.0
    for (t0, frac), (t1, _) in zip(curve, curve[1:]):
        area += frac * (max(0.0, min(t1, end_time) - t0))
    last_t, last_frac = curve[-1]
    if end_time > last_t:
        area += last_frac * (end_time - last_t)
    return area / end_time


#: Backwards-compatible private alias (pre-dynamics internal name).
_integrate_curve = integrate_curve
