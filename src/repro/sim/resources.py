"""Simulation resources: FIFO links and capacity-limited compute pools.

Both resources express "hold some capacity for a duration, then release",
with waiters queued FIFO.  They drive all contention effects in
``contention=True`` executions; in contention-free mode the execution layer
bypasses them entirely.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.sim.engine import Simulator
from repro.util.validation import check_non_negative, check_positive

__all__ = ["FifoResource", "ComputePool"]


class FifoResource:
    """A unit-capacity resource (e.g. a link) serving holds FIFO.

    ``acquire(duration, then)`` runs ``then`` once the hold *starts*; the
    resource frees itself ``duration`` later.  Used to serialise transfers
    crossing the same physical link.

    ``total_busy_s`` accrues when a hold *completes*, so a run stopped
    mid-hold (``Simulator.run(until=...)``) never reports busy time that
    has not actually elapsed yet.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self._sim = sim
        self.name = name
        self._busy = False
        self._hold_s = 0.0
        self._waiters: deque[tuple[float, Callable[[], None]]] = deque()
        self.total_busy_s = 0.0

    @property
    def busy(self) -> bool:
        """Whether a hold is in progress."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Holds waiting to start."""
        return len(self._waiters)

    def acquire(self, duration: float, then: Callable[[], None]) -> None:
        """Request a hold of ``duration``; ``then`` fires when it starts."""
        check_non_negative("duration", duration)
        if self._busy:
            self._waiters.append((duration, then))
            return
        self._start(duration, then)

    def _start(self, duration: float, then: Callable[[], None]) -> None:
        self._busy = True
        self._hold_s = duration
        then()
        self._sim.schedule_in(duration, self._release)

    def _release(self) -> None:
        self._busy = False
        self.total_busy_s += self._hold_s
        self._hold_s = 0.0
        if self._waiters:
            duration, then = self._waiters.popleft()
            self._start(duration, then)


class ComputePool:
    """A node's compute, shared by concurrent tasks up to ``capacity_ghz``.

    Tasks request an amount of GHz for a duration; requests that do not fit
    wait FIFO (head-of-line blocking, like a slot scheduler) until running
    tasks release enough capacity.
    """

    def __init__(self, sim: Simulator, capacity_ghz: float, name: str = "") -> None:
        check_positive("capacity_ghz", capacity_ghz)
        self._sim = sim
        self.name = name
        self.capacity_ghz = capacity_ghz
        self._in_use = 0.0
        self._waiters: deque[tuple[float, float, Callable[[], None]]] = deque()
        self.peak_ghz = 0.0
        self.ghz_seconds = 0.0

    @property
    def in_use_ghz(self) -> float:
        """Compute currently held by running tasks."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Tasks waiting for capacity."""
        return len(self._waiters)

    def acquire(
        self, amount_ghz: float, duration: float, then: Callable[[], None]
    ) -> None:
        """Hold ``amount_ghz`` for ``duration``; ``then`` fires at start.

        Raises
        ------
        ValueError
            If a single request exceeds the pool's total capacity (it
            could never run).
        """
        check_non_negative("amount_ghz", amount_ghz)
        check_non_negative("duration", duration)
        if amount_ghz > self.capacity_ghz * (1 + 1e-9):
            raise ValueError(
                f"task needs {amount_ghz} GHz but pool {self.name!r} has "
                f"{self.capacity_ghz}"
            )
        self._waiters.append((amount_ghz, duration, then))
        self._pump()

    def _pump(self) -> None:
        while self._waiters:
            amount, duration, then = self._waiters[0]
            if self._in_use + amount > self.capacity_ghz * (1 + 1e-9):
                return  # head of line does not fit yet
            self._waiters.popleft()
            self._in_use += amount
            self.peak_ghz = max(self.peak_ghz, self._in_use)
            self.ghz_seconds += amount * duration
            then()
            self._sim.schedule_in(duration, lambda a=amount: self._finish(a))

    def _finish(self, amount: float) -> None:
        self._in_use -= amount
        if self._in_use < 0.0:
            self._in_use = 0.0
        self._pump()
