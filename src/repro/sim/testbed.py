"""End-to-end emulation of the §4.3 testbed experiment.

The paper's testbed: 20 DigitalOcean VMs across four regions, a local
controller, real mobile-app usage data split into datasets by creation
time, and three analytics query families.  This module reproduces the
whole pipeline on the emulated substrate:

1. build the geo testbed topology (:mod:`repro.topology.testbed`),
2. synthesise the usage trace and split it into datasets
   (:mod:`repro.workload.trace`),
3. generate analytics queries (:mod:`repro.workload.analytics`),
4. run a placement algorithm (the controller's job),
5. execute the admitted queries in the event simulator with link/compute
   contention (the "real" run), and
6. *actually evaluate* each admitted analytics query against the trace —
   verifying that evaluating on replicas returns byte-identical results to
   evaluating on origins (replication must not change answers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.core.base import PlacementAlgorithm
from repro.core.instance import ProblemInstance
from repro.core.metrics import SolutionMetrics, evaluate_solution, verify_solution
from repro.core.types import PlacementSolution
from repro.sim.events import ExecutionReport
from repro.sim.execution import ExecutionConfig, execute_placement
from repro.topology.testbed import TestbedConfig, digitalocean_testbed
from repro.util.rng import spawn_rng
from repro.util.validation import check_positive
from repro.workload.analytics import (
    AnalyticsQueryKind,
    execute_analytics,
    trace_queries,
)
from repro.workload.params import PaperDefaults
from repro.workload.trace import TraceConfig, generate_usage_trace, split_trace_by_time

__all__ = ["TestbedExperiment", "TestbedReport", "run_testbed_experiment"]


@dataclass(frozen=True)
class TestbedExperiment:
    """Configuration of one testbed run.

    Attributes
    ----------
    testbed:
        VM fleet shape (defaults to the paper's 4 DC + 16 cloudlets).
    trace:
        Synthetic usage-trace shape.
    params:
        Workload parameter ranges (``K``, ``F``, deadline scaling, ...).
    num_datasets:
        Time windows the trace is split into.
    num_queries:
        Analytics queries issued.
    seed:
        Root seed; every component derives an independent stream.
    """

    testbed: TestbedConfig = field(default_factory=TestbedConfig)
    trace: TraceConfig = field(default_factory=lambda: TraceConfig(num_users=800))
    params: PaperDefaults = field(default_factory=PaperDefaults)
    num_datasets: int = 12
    num_queries: int = 50
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("num_datasets", self.num_datasets)
        check_positive("num_queries", self.num_queries)


@dataclass(frozen=True)
class TestbedReport:
    """Everything one testbed run produced.

    Attributes
    ----------
    solution:
        The placement decisions.
    metrics:
        The paper's volume/throughput metrics.
    execution:
        Measured response times from the contention-aware event run.
    analytics_checked:
        Admitted analytics queries whose results were recomputed.
    analytics_identical:
        How many of those matched the origin-data ground truth exactly
        (must equal ``analytics_checked``).
    """

    solution: PlacementSolution
    metrics: SolutionMetrics
    execution: ExecutionReport
    analytics_checked: int
    analytics_identical: int

    @property
    def results_faithful(self) -> bool:
        """Replica evaluation returned ground-truth results for every query."""
        return self.analytics_checked == self.analytics_identical


def _check_analytics(
    instance: ProblemInstance,
    solution: PlacementSolution,
    trace,
    segments: list[tuple[int, int]],
    kinds: list[AnalyticsQueryKind],
) -> tuple[int, int]:
    """Re-evaluate admitted analytics queries; count exact matches.

    "Evaluating on replicas" touches the same immutable trace windows as
    "evaluating on origins" (replication copies data, never alters it), so
    the assertion is that the per-window partials the placement routes are
    the same windows the ground truth uses — i.e. the assignment covers
    exactly the demanded windows.
    """
    checked = identical = 0
    for q_id in sorted(solution.admitted):
        query = instance.query(q_id)
        kind = kinds[q_id]
        served_windows = sorted(
            d for (qq, d) in solution.assignments if qq == q_id
        )
        ground = execute_analytics(
            kind, trace, segments, list(query.demanded), app=3
        )
        via_replicas = execute_analytics(
            kind, trace, segments, served_windows, app=3
        )
        checked += 1
        if np.array_equal(ground, via_replicas):
            identical += 1
    return checked, identical


def run_testbed_experiment(
    algorithm: PlacementAlgorithm,
    experiment: TestbedExperiment | None = None,
) -> TestbedReport:
    """Run the full §4.3 pipeline for one algorithm.

    The placement is verified against every ILP constraint before
    execution; the event run uses contention so the report's response
    times reflect a loaded system.
    """
    experiment = experiment or TestbedExperiment()
    seed = experiment.seed

    topology = digitalocean_testbed(experiment.testbed, seed=seed)
    trace = generate_usage_trace(
        experiment.trace, spawn_rng(seed, "testbed/trace")
    )
    datasets, segments = split_trace_by_time(
        trace,
        experiment.num_datasets,
        topology,
        spawn_rng(seed, "testbed/datasets"),
        experiment.params,
    )
    queries, kinds = trace_queries(
        topology,
        datasets,
        spawn_rng(seed, "testbed/queries"),
        experiment.params,
        count=experiment.num_queries,
    )
    instance = ProblemInstance(
        topology=topology,
        datasets=datasets,
        queries=queries,
        max_replicas=experiment.params.max_replicas,
    )

    solution = algorithm.solve(instance)
    verify_solution(instance, solution)
    metrics = evaluate_solution(instance, solution)
    execution = execute_placement(
        instance, solution, ExecutionConfig(contention=True)
    )
    checked, identical = _check_analytics(
        instance, solution, trace, segments, kinds
    )
    return TestbedReport(
        solution=solution,
        metrics=metrics,
        execution=execution,
        analytics_checked=checked,
        analytics_identical=identical,
    )
