"""Two-tier edge-cloud topologies.

This subpackage builds the network substrate of the paper's system model
(Fig. 1): base stations, WMAN switches, edge cloudlets co-located with
switches, and remote data centers reached through gateway switches, joined
by links carrying a per-unit-data transmission delay.

Generators
----------
* :func:`repro.topology.twotier.generate_two_tier` — random two-tier edge
  clouds in the style the paper produces with GT-ITM (flat random linking
  with probability 0.2, plus connectivity repair).
* :func:`repro.topology.waxman.waxman_graph` — a from-scratch Waxman
  generator (the other GT-ITM flat model), used in ablations.
* :func:`repro.topology.testbed.digitalocean_testbed` — the geo-distributed
  testbed of §4.3 (4 data-center VMs + 16 cloudlet VMs across San
  Francisco, New York, Toronto and Singapore), with link delays derived
  from great-circle distances.
"""

from repro.topology.nodes import NodeKind, NodeSpec
from repro.topology.twotier import (
    EdgeCloudTopology,
    TwoTierConfig,
    generate_two_tier,
    example_figure1,
)
from repro.topology.waxman import waxman_graph, gnp_connected_graph
from repro.topology.delays import (
    DelayModel,
    UniformLinkDelays,
    DistanceLinkDelays,
    assign_link_delays,
)
from repro.topology.geo import GeoPoint, great_circle_km, propagation_delay_s
from repro.topology.testbed import TestbedConfig, digitalocean_testbed, REGIONS
from repro.topology.transit_stub import TransitStubConfig, generate_transit_stub
from repro.topology.render import (
    render_summary,
    render_map,
    render_adjacency,
    render_topology,
)

__all__ = [
    "NodeKind",
    "NodeSpec",
    "EdgeCloudTopology",
    "TwoTierConfig",
    "generate_two_tier",
    "example_figure1",
    "waxman_graph",
    "gnp_connected_graph",
    "DelayModel",
    "UniformLinkDelays",
    "DistanceLinkDelays",
    "assign_link_delays",
    "GeoPoint",
    "great_circle_km",
    "propagation_delay_s",
    "TestbedConfig",
    "digitalocean_testbed",
    "REGIONS",
    "TransitStubConfig",
    "generate_transit_stub",
    "render_summary",
    "render_map",
    "render_adjacency",
    "render_topology",
]
