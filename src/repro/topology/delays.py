"""Link-delay assignment models.

Each link ``e`` carries a per-unit-data transmission delay ``dt(e)`` in
seconds per GB (§2.1).  The paper draws topologies with GT-ITM and assigns
delays implicitly through "transfer delay in real cables"; we provide two
concrete models:

* :class:`UniformLinkDelays` — delay drawn uniformly per link class
  (WMAN-internal links are fast; gateway→data-center links cross the
  Internet and are an order of magnitude slower).  This is the default for
  the simulation experiments.
* :class:`DistanceLinkDelays` — delay proportional to Euclidean distance
  between endpoints plus a per-hop constant; used for geo testbeds and
  ablations where layout matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.topology.nodes import NodeKind, NodeSpec
from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "DelayModel",
    "UniformLinkDelays",
    "DistanceLinkDelays",
    "assign_link_delays",
    "is_internet_link",
]


def is_internet_link(a: NodeSpec, b: NodeSpec) -> bool:
    """Whether the link between ``a`` and ``b`` crosses the Internet.

    In the two-tier model, any link incident to a data center traverses the
    wide-area Internet via a gateway; everything else stays inside the WMAN.
    """
    return NodeKind.DATA_CENTER in (a.kind, b.kind)


class DelayModel(Protocol):
    """Strategy producing ``dt(e)`` for a link between two nodes."""

    def link_delay(
        self, a: NodeSpec, b: NodeSpec, rng: np.random.Generator
    ) -> float:
        """Per-unit-data delay in seconds/GB for link ``(a, b)``."""
        ...


@dataclass(frozen=True)
class UniformLinkDelays:
    """Uniform per-class link delays (the simulation default).

    Attributes
    ----------
    wman_low, wman_high:
        Delay range (s/GB) for links inside the WMAN (switch/cloudlet/BS).
    internet_low, internet_high:
        Delay range (s/GB) for gateway→data-center links.
    """

    wman_low: float = 0.01
    wman_high: float = 0.05
    internet_low: float = 0.30
    internet_high: float = 0.55

    def __post_init__(self) -> None:
        check_positive("wman_low", self.wman_low)
        check_positive("internet_low", self.internet_low)
        if self.wman_high < self.wman_low:
            raise ValueError("wman_high must be >= wman_low")
        if self.internet_high < self.internet_low:
            raise ValueError("internet_high must be >= internet_low")

    def link_delay(self, a: NodeSpec, b: NodeSpec, rng: np.random.Generator) -> float:
        if is_internet_link(a, b):
            return float(rng.uniform(self.internet_low, self.internet_high))
        return float(rng.uniform(self.wman_low, self.wman_high))


@dataclass(frozen=True)
class DistanceLinkDelays:
    """Link delay proportional to Euclidean distance between endpoints.

    ``dt(e) = base + per_unit_distance * dist(a, b)``, with an extra
    ``internet_penalty`` added on Internet links.
    """

    base: float = 0.005
    per_unit_distance: float = 0.05
    internet_penalty: float = 0.10

    def __post_init__(self) -> None:
        check_positive("base", self.base)
        check_non_negative("per_unit_distance", self.per_unit_distance)
        check_non_negative("internet_penalty", self.internet_penalty)

    def link_delay(self, a: NodeSpec, b: NodeSpec, rng: np.random.Generator) -> float:
        dist = float(np.hypot(a.x - b.x, a.y - b.y))
        delay = self.base + self.per_unit_distance * dist
        if is_internet_link(a, b):
            delay += self.internet_penalty
        return delay


def assign_link_delays(
    nodes: list[NodeSpec],
    edges: list[tuple[int, int]],
    model: DelayModel,
    rng: np.random.Generator,
) -> dict[tuple[int, int], float]:
    """Assign a delay to every edge under ``model``.

    Returns a dict keyed by the normalised ``(min(u, v), max(u, v))`` pair.
    """
    delays: dict[tuple[int, int], float] = {}
    for u, v in edges:
        key = (u, v) if u < v else (v, u)
        delays[key] = model.link_delay(nodes[u], nodes[v], rng)
    return delays
