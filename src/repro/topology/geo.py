"""Geographic helpers for the geo-distributed testbed.

The §4.3 testbed leases VMs in San Francisco, New York, Toronto and
Singapore.  The only way geography enters the algorithms is through
inter-node delay, so we model it from first principles: great-circle
distance → propagation delay at roughly two-thirds the speed of light in
fibre, plus a serialisation component per GB set by the link bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_in_range, check_positive

__all__ = ["GeoPoint", "great_circle_km", "propagation_delay_s", "transfer_delay_s_per_gb"]

#: Mean Earth radius (km).
EARTH_RADIUS_KM = 6371.0

#: Effective signal speed in optical fibre (km/s), ≈ 2/3 of c.
FIBRE_SPEED_KM_S = 2.0e5

#: Routing inflation factor: real paths are not great circles.
PATH_STRETCH = 1.4


@dataclass(frozen=True)
class GeoPoint:
    """A latitude/longitude pair in degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        check_in_range("lat", self.lat, -90.0, 90.0)
        check_in_range("lon", self.lon, -180.0, 180.0)


def great_circle_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points (haversine formula).

    >>> sf = GeoPoint(37.77, -122.42); nyc = GeoPoint(40.71, -74.01)
    >>> 4000 < great_circle_km(sf, nyc) < 4200
    True
    """
    phi1, phi2 = math.radians(a.lat), math.radians(b.lat)
    dphi = phi2 - phi1
    dlam = math.radians(b.lon - a.lon)
    h = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def propagation_delay_s(a: GeoPoint, b: GeoPoint) -> float:
    """One-way propagation delay between two points over stretched fibre."""
    return PATH_STRETCH * great_circle_km(a, b) / FIBRE_SPEED_KM_S


def transfer_delay_s_per_gb(
    a: GeoPoint,
    b: GeoPoint,
    *,
    bandwidth_gbps: float = 1.0,
    rtt_handshakes: float = 8.0,
) -> float:
    """Per-GB transfer delay between two geographic points.

    The per-unit-data delay ``dt(e)`` of §2.1 combines serialisation at the
    link bandwidth with a propagation term amortised over the transfer
    (long-haul TCP pays several round trips per flow; ``rtt_handshakes``
    controls how many are charged per GB).

    Parameters
    ----------
    bandwidth_gbps:
        Link bandwidth in gigabits per second.
    rtt_handshakes:
        Propagation round-trips charged per GB transferred.
    """
    check_positive("bandwidth_gbps", bandwidth_gbps)
    check_positive("rtt_handshakes", rtt_handshakes)
    serialisation = 8.0 / bandwidth_gbps  # seconds to push one GB
    propagation = 2.0 * propagation_delay_s(a, b) * rtt_handshakes
    return serialisation + propagation
