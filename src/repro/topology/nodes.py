"""Node taxonomy for the two-tier edge cloud.

The paper's system model distinguishes four node roles.  Only cloudlets and
data centers are *placement nodes* (they hold dataset replicas and evaluate
queries); switches and base stations participate in routing and user
attachment respectively.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_positive

__all__ = ["NodeKind", "NodeSpec"]


class NodeKind(enum.Enum):
    """Role of a node in the two-tier edge cloud ``G = (BS ∪ SW ∪ CL ∪ DC, E)``."""

    BASE_STATION = "base_station"
    SWITCH = "switch"
    CLOUDLET = "cloudlet"
    DATA_CENTER = "data_center"

    @property
    def is_placement(self) -> bool:
        """Whether this kind of node may hold replicas and evaluate queries."""
        return self in (NodeKind.CLOUDLET, NodeKind.DATA_CENTER)

    @property
    def short(self) -> str:
        """Two-letter prefix used in display names (``dc``, ``cl``, ``sw``, ``bs``)."""
        return {
            NodeKind.BASE_STATION: "bs",
            NodeKind.SWITCH: "sw",
            NodeKind.CLOUDLET: "cl",
            NodeKind.DATA_CENTER: "dc",
        }[self]


@dataclass(frozen=True)
class NodeSpec:
    """Immutable description of one node.

    Attributes
    ----------
    node_id:
        Dense integer id, unique within a topology.
    kind:
        Role of the node.
    name:
        Human-readable name such as ``"dc0"`` or ``"cl17"``.
    capacity_ghz:
        Computing capacity ``B(v)`` in GHz.  Zero for non-placement nodes.
    proc_delay_s_per_gb:
        Per-unit-data processing delay ``d(v)`` in seconds per GB.  Zero for
        non-placement nodes.
    x, y:
        Layout coordinates (unit square for synthetic topologies; longitude
        and latitude for geo testbeds).  Used by distance-based delay models.
    region:
        Optional region label for geo testbeds (e.g. ``"nyc"``).
    """

    node_id: int
    kind: NodeKind
    name: str
    capacity_ghz: float = 0.0
    proc_delay_s_per_gb: float = 0.0
    x: float = 0.0
    y: float = 0.0
    region: str = ""

    def __post_init__(self) -> None:
        check_non_negative("capacity_ghz", self.capacity_ghz)
        check_non_negative("proc_delay_s_per_gb", self.proc_delay_s_per_gb)
        if self.kind.is_placement:
            check_positive("capacity_ghz (placement node)", self.capacity_ghz)
            check_positive(
                "proc_delay_s_per_gb (placement node)", self.proc_delay_s_per_gb
            )
        elif self.capacity_ghz != 0.0:
            raise ValueError(
                f"non-placement node {self.name!r} must have zero capacity, "
                f"got {self.capacity_ghz}"
            )

    @property
    def is_placement(self) -> bool:
        """Whether this node may hold replicas and evaluate queries."""
        return self.kind.is_placement
