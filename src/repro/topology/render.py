"""Text rendering of edge-cloud topologies (Figs. 1 and 6, in ASCII).

The paper's Fig. 1 (system model) and Fig. 6 (testbed) are diagrams; this
module renders any :class:`~repro.topology.twotier.EdgeCloudTopology` as

* a roster/summary block (per-tier counts, capacity totals, delay ranges),
* a coordinate map — nodes plotted on a character grid by their layout
  coordinates, labelled ``D``/``c``/``s``/``b`` per role,
* an adjacency sketch for small topologies (each node's neighbours).
"""

from __future__ import annotations

import numpy as np

from repro.topology.nodes import NodeKind
from repro.topology.twotier import EdgeCloudTopology
from repro.util.validation import check_positive

__all__ = ["render_summary", "render_map", "render_adjacency", "render_topology"]

_GLYPH = {
    NodeKind.DATA_CENTER: "D",
    NodeKind.CLOUDLET: "c",
    NodeKind.SWITCH: "s",
    NodeKind.BASE_STATION: "b",
}


def render_summary(topology: EdgeCloudTopology) -> str:
    """Per-tier roster with capacity and delay statistics."""
    delays = list(topology.link_delays.values())
    lines = ["=== topology summary ==="]
    for kind in NodeKind:
        ids = topology.of_kind(kind)
        if not ids:
            continue
        line = f"{kind.value:13s}: {len(ids):3d}"
        if kind.is_placement:
            caps = [topology.capacity(v) for v in ids]
            line += (
                f"  capacity {sum(caps):8.1f} GHz "
                f"(min {min(caps):6.1f}, max {max(caps):6.1f})"
            )
        lines.append(line)
    lines.append(
        f"links        : {topology.num_edges:3d}  "
        f"dt(e) ∈ [{min(delays):.3f}, {max(delays):.3f}] s/GB"
        if delays
        else "links        :   0"
    )
    return "\n".join(lines)


def render_map(
    topology: EdgeCloudTopology, *, width: int = 60, height: int = 20
) -> str:
    """Plot nodes on a character grid by their layout coordinates.

    Data centers = ``D``, cloudlets = ``c``, switches = ``s``, base
    stations = ``b``; collisions keep the most "important" glyph
    (D > s > c > b).
    """
    check_positive("width", width)
    check_positive("height", height)
    xs = np.array([s.x for s in topology.nodes])
    ys = np.array([s.y for s in topology.nodes])
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    priority = {"D": 3, "s": 2, "c": 1, "b": 0}
    for spec in topology.nodes:
        col = int((spec.x - x_lo) / x_span * (width - 1))
        row = int((y_hi - spec.y) / y_span * (height - 1))
        glyph = _GLYPH[spec.kind]
        if priority[glyph] >= priority.get(grid[row][col], -1):
            grid[row][col] = glyph
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    legend = "D=data center  c=cloudlet  s=switch  b=base station"
    return f"{border}\n{body}\n{border}\n{legend}"


def render_adjacency(topology: EdgeCloudTopology, *, max_nodes: int = 40) -> str:
    """Per-node neighbour lists (small topologies only)."""
    check_positive("max_nodes", max_nodes)
    if topology.num_nodes > max_nodes:
        return (
            f"(adjacency omitted: {topology.num_nodes} nodes "
            f"> max_nodes={max_nodes})"
        )
    lines = ["=== adjacency ==="]
    for spec in topology.nodes:
        neighbours = sorted(topology.graph.neighbors(spec.node_id))
        names = ", ".join(topology.spec(v).name for v in neighbours)
        lines.append(f"{spec.name:8s} — {names}")
    return "\n".join(lines)


def render_topology(topology: EdgeCloudTopology) -> str:
    """Summary + map + (small-topology) adjacency in one report."""
    parts = [render_summary(topology), "", render_map(topology)]
    adjacency = render_adjacency(topology)
    if not adjacency.startswith("(adjacency omitted"):
        parts += ["", adjacency]
    return "\n".join(parts)
