"""Geo-distributed testbed topology (paper §4.3).

The paper leases 20 DigitalOcean VMs — 4 acting as data centers and 16 as
cloudlets — across San Francisco, New York, Toronto and Singapore, plus a
local controller and two switches (Fig. 6).  The algorithms only observe
node capacities and inter-node delays, so we reconstruct the testbed from
public geography: every VM attaches to one of the two lab switches, and the
switch→VM link delay is derived from the great-circle distance between the
lab and the VM's region (see :mod:`repro.topology.geo`).  Data-center VMs
pay an extra wide-area penalty, preserving the two-tier structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.geo import GeoPoint, transfer_delay_s_per_gb
from repro.topology.nodes import NodeKind, NodeSpec
from repro.topology.twotier import EdgeCloudTopology
from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError, check_positive

__all__ = ["REGIONS", "LAB_LOCATION", "TestbedConfig", "digitalocean_testbed"]

#: DigitalOcean regions used in §4.3, with approximate coordinates.
REGIONS: dict[str, GeoPoint] = {
    "sfo": GeoPoint(37.77, -122.42),   # San Francisco
    "nyc": GeoPoint(40.71, -74.01),    # New York
    "tor": GeoPoint(43.65, -79.38),    # Toronto
    "sgp": GeoPoint(1.35, 103.82),     # Singapore
}

#: The controller / switches sit in the authors' lab (Dalian, China).
LAB_LOCATION = GeoPoint(38.91, 121.60)


@dataclass(frozen=True)
class TestbedConfig:
    """Parameters of the emulated DigitalOcean testbed.

    Defaults reproduce §4.3: 4 data-center VMs (one per region), 16
    cloudlet VMs (four per region) and 2 switches.  VM capacities keep the
    simulation's DC≫cloudlet ratio at leased-VM scale.
    """

    cloudlets_per_region: int = 4
    data_centers_per_region: int = 1
    num_switches: int = 2
    dc_capacity: tuple[float, float] = (50.0, 100.0)
    cl_capacity: tuple[float, float] = (4.0, 8.0)
    dc_proc_delay: tuple[float, float] = (0.01, 0.03)
    cl_proc_delay: tuple[float, float] = (0.03, 0.10)
    lan_delay_s_per_gb: float = 0.004
    wan_bandwidth_gbps: float = 1.0
    dc_extra_delay_s_per_gb: float = 0.05

    def __post_init__(self) -> None:
        check_positive("cloudlets_per_region", self.cloudlets_per_region)
        check_positive("data_centers_per_region", self.data_centers_per_region)
        check_positive("num_switches", self.num_switches)
        check_positive("lan_delay_s_per_gb", self.lan_delay_s_per_gb)
        for name in ("dc_capacity", "cl_capacity", "dc_proc_delay", "cl_proc_delay"):
            low, high = getattr(self, name)
            check_positive(f"{name}[0]", low)
            if high < low:
                raise ValidationError(f"{name} range is inverted: ({low}, {high})")


def digitalocean_testbed(
    config: TestbedConfig | None = None,
    *,
    seed: int = 0,
    regions: dict[str, GeoPoint] | None = None,
) -> EdgeCloudTopology:
    """Build the emulated §4.3 testbed as an :class:`EdgeCloudTopology`.

    Every VM connects to both lab switches (redundant uplinks, as in the
    paper's Fig. 6); the switches are bridged by a LAN link.  The per-GB
    delay of a VM's uplink is the geographic transfer delay from the lab to
    the VM's region, with the wide-area penalty added for data-center VMs.

    Parameters
    ----------
    config:
        Testbed shape and capacity parameters.
    seed:
        Seed for capacity/processing-delay draws (geography is fixed).
    regions:
        Override the region map (name → location); defaults to §4.3's four.
    """
    config = config or TestbedConfig()
    regions = regions or REGIONS
    rng = spawn_rng(seed, "testbed/capacities")

    specs: list[NodeSpec] = []
    nid = 0
    for region_name, point in regions.items():
        for i in range(config.data_centers_per_region):
            specs.append(
                NodeSpec(
                    node_id=nid,
                    kind=NodeKind.DATA_CENTER,
                    name=f"dc-{region_name}{i}",
                    capacity_ghz=float(rng.uniform(*config.dc_capacity)),
                    proc_delay_s_per_gb=float(rng.uniform(*config.dc_proc_delay)),
                    x=point.lon,
                    y=point.lat,
                    region=region_name,
                )
            )
            nid += 1
        for i in range(config.cloudlets_per_region):
            specs.append(
                NodeSpec(
                    node_id=nid,
                    kind=NodeKind.CLOUDLET,
                    name=f"cl-{region_name}{i}",
                    capacity_ghz=float(rng.uniform(*config.cl_capacity)),
                    proc_delay_s_per_gb=float(rng.uniform(*config.cl_proc_delay)),
                    x=point.lon,
                    y=point.lat,
                    region=region_name,
                )
            )
            nid += 1

    switch_ids: list[int] = []
    for i in range(config.num_switches):
        specs.append(
            NodeSpec(
                node_id=nid,
                kind=NodeKind.SWITCH,
                name=f"sw{i}",
                x=LAB_LOCATION.lon,
                y=LAB_LOCATION.lat,
                region="lab",
            )
        )
        switch_ids.append(nid)
        nid += 1

    delays: dict[tuple[int, int], float] = {}
    # Bridge the switches with a LAN link.
    for a, b in zip(switch_ids, switch_ids[1:]):
        delays[(a, b)] = config.lan_delay_s_per_gb
    # Uplink every VM to every switch.
    for s in specs:
        if s.kind is NodeKind.SWITCH:
            continue
        wan = transfer_delay_s_per_gb(
            LAB_LOCATION, regions[s.region], bandwidth_gbps=config.wan_bandwidth_gbps
        )
        if s.kind is NodeKind.DATA_CENTER:
            wan += config.dc_extra_delay_s_per_gb
        for sw in switch_ids:
            key = (min(s.node_id, sw), max(s.node_id, sw))
            delays[key] = wan
    return EdgeCloudTopology(specs, delays)
