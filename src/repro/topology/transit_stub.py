"""GT-ITM transit-stub topologies for the two-tier edge cloud.

The paper generates topologies "by the GT-ITM tool" [8].  Besides the flat
random model (:mod:`repro.topology.waxman`, the evaluation default), GT-ITM
is best known for its hierarchical **transit-stub** model [Zegura et al.
1996]: a connected transit core, each transit node sponsoring several stub
domains.  This module provides that model as an alternative generator for
robustness studies: transit nodes become the WMAN switch fabric, stub
domains become cloudlet clusters, and data centers hang off randomly
chosen transit nodes through gateway links.

The structural difference from the flat model — stub traffic must climb
into the transit core to reach other domains — lengthens inter-domain
paths and strengthens locality, which is exactly the property ablations
want to vary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.topology.delays import DelayModel, UniformLinkDelays, assign_link_delays
from repro.topology.nodes import NodeKind, NodeSpec
from repro.topology.twotier import EdgeCloudTopology
from repro.topology.waxman import gnp_connected_graph
from repro.util.rng import spawn_rng
from repro.util.validation import ValidationError, check_fraction, check_positive

__all__ = ["TransitStubConfig", "generate_transit_stub"]


@dataclass(frozen=True)
class TransitStubConfig:
    """Parameters of the transit-stub construction.

    Attributes
    ----------
    num_transit:
        Switches in the transit core (connected G(n, p) among themselves).
    stubs_per_transit:
        Stub domains sponsored by each transit node.
    cloudlets_per_stub:
        Cloudlets per stub domain (connected G(n, p) internally, one
        uplink to the sponsoring transit node).
    num_data_centers:
        Data centers, each attached to one random transit node.
    transit_link_prob, stub_link_prob:
        Intra-core / intra-stub connectivity.
    capacity and processing-delay ranges:
        As in :class:`~repro.topology.twotier.TwoTierConfig`.
    """

    num_transit: int = 4
    stubs_per_transit: int = 2
    cloudlets_per_stub: int = 3
    num_data_centers: int = 6
    transit_link_prob: float = 0.5
    stub_link_prob: float = 0.6
    dc_capacity: tuple[float, float] = (200.0, 700.0)
    cl_capacity: tuple[float, float] = (8.0, 16.0)
    dc_proc_delay: tuple[float, float] = (0.005, 0.02)
    cl_proc_delay: tuple[float, float] = (0.02, 0.08)
    delay_model: DelayModel = field(default_factory=UniformLinkDelays)

    def __post_init__(self) -> None:
        check_positive("num_transit", self.num_transit)
        check_positive("stubs_per_transit", self.stubs_per_transit)
        check_positive("cloudlets_per_stub", self.cloudlets_per_stub)
        check_positive("num_data_centers", self.num_data_centers)
        check_fraction("transit_link_prob", self.transit_link_prob)
        check_fraction("stub_link_prob", self.stub_link_prob)
        for name in ("dc_capacity", "cl_capacity", "dc_proc_delay", "cl_proc_delay"):
            low, high = getattr(self, name)
            check_positive(f"{name}[0]", low)
            if high < low:
                raise ValidationError(f"{name} range is inverted: ({low}, {high})")

    @property
    def num_cloudlets(self) -> int:
        """Total cloudlets across all stub domains."""
        return self.num_transit * self.stubs_per_transit * self.cloudlets_per_stub


def generate_transit_stub(
    config: TransitStubConfig | None = None,
    *,
    seed: int = 0,
) -> EdgeCloudTopology:
    """Generate a transit-stub two-tier edge cloud.

    Layout: transit switches on an inner ring, each stub domain's
    cloudlets clustered around its sponsor, data centers on an outer ring
    (so distance-based delay models see the hierarchy).
    """
    config = config or TransitStubConfig()
    rng = spawn_rng(seed, "transit-stub/nodes")
    rng_links = spawn_rng(seed, "transit-stub/links")
    rng_delays = spawn_rng(seed, "transit-stub/delays")

    specs: list[NodeSpec] = []
    nid = 0

    # Transit core on an inner ring.
    transit_ids: list[int] = []
    for t in range(config.num_transit):
        angle = 2.0 * np.pi * t / config.num_transit
        specs.append(
            NodeSpec(
                node_id=nid,
                kind=NodeKind.SWITCH,
                name=f"transit{t}",
                x=0.5 + 0.2 * np.cos(angle),
                y=0.5 + 0.2 * np.sin(angle),
            )
        )
        transit_ids.append(nid)
        nid += 1

    edges: list[tuple[int, int]] = []
    core_positions = np.array([[specs[i].x, specs[i].y] for i in transit_ids])
    _, core_edges = gnp_connected_graph(
        config.num_transit, config.transit_link_prob, rng_links, core_positions
    )
    edges.extend((transit_ids[u], transit_ids[v]) for u, v in core_edges)

    # Stub domains: cloudlet clusters, internally connected, one uplink.
    for t, sponsor in enumerate(transit_ids):
        for s in range(config.stubs_per_transit):
            base_angle = 2.0 * np.pi * (
                t * config.stubs_per_transit + s
            ) / (config.num_transit * config.stubs_per_transit)
            cx = 0.5 + 0.42 * np.cos(base_angle)
            cy = 0.5 + 0.42 * np.sin(base_angle)
            stub_ids: list[int] = []
            for c in range(config.cloudlets_per_stub):
                specs.append(
                    NodeSpec(
                        node_id=nid,
                        kind=NodeKind.CLOUDLET,
                        name=f"cl-t{t}s{s}c{c}",
                        capacity_ghz=float(rng.uniform(*config.cl_capacity)),
                        proc_delay_s_per_gb=float(
                            rng.uniform(*config.cl_proc_delay)
                        ),
                        x=cx + float(rng.normal(0.0, 0.03)),
                        y=cy + float(rng.normal(0.0, 0.03)),
                    )
                )
                stub_ids.append(nid)
                nid += 1
            positions = np.array([[specs[i].x, specs[i].y] for i in stub_ids])
            _, stub_edges = gnp_connected_graph(
                len(stub_ids), config.stub_link_prob, rng_links, positions
            )
            edges.extend((stub_ids[u], stub_ids[v]) for u, v in stub_edges)
            # Exactly one stub→transit uplink (the transit-stub signature).
            uplink = stub_ids[int(rng_links.integers(len(stub_ids)))]
            edges.append((sponsor, uplink))

    # Data centers on an outer ring, one gateway link each.
    for d in range(config.num_data_centers):
        angle = 2.0 * np.pi * d / config.num_data_centers
        specs.append(
            NodeSpec(
                node_id=nid,
                kind=NodeKind.DATA_CENTER,
                name=f"dc{d}",
                capacity_ghz=float(rng.uniform(*config.dc_capacity)),
                proc_delay_s_per_gb=float(rng.uniform(*config.dc_proc_delay)),
                x=0.5 + 2.0 * np.cos(angle),
                y=0.5 + 2.0 * np.sin(angle),
            )
        )
        gateway = transit_ids[int(rng_links.integers(len(transit_ids)))]
        edges.append((gateway, nid))
        nid += 1

    delays = assign_link_delays(specs, edges, config.delay_model, rng_delays)
    return EdgeCloudTopology(specs, delays)
