"""Shared utilities: seeded RNG management, unit helpers, validation.

These helpers are deliberately dependency-light; every other subpackage may
import from here, but :mod:`repro.util` imports nothing from the rest of the
library.
"""

from repro.util.rng import RngStream, spawn_rng, derive_seed
from repro.util.units import (
    GB,
    GHZ,
    MS,
    gb,
    ghz,
    ms_to_s,
    s_to_ms,
    format_volume,
    format_delay,
)
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_fraction,
    check_in_range,
    check_type,
    ValidationError,
)

__all__ = [
    "RngStream",
    "spawn_rng",
    "derive_seed",
    "GB",
    "GHZ",
    "MS",
    "gb",
    "ghz",
    "ms_to_s",
    "s_to_ms",
    "format_volume",
    "format_delay",
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_in_range",
    "check_type",
    "ValidationError",
]
