"""Deterministic random-number management.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` owned by the caller.  To keep experiments
reproducible *and* statistically independent across components, we derive
child seeds from a root seed with :func:`derive_seed`, which hashes the root
seed together with a string label.  The same ``(seed, label)`` pair always
produces the same stream; distinct labels produce independent streams.

This mirrors the ``numpy.random.SeedSequence.spawn`` discipline recommended
for parallel workloads, but with human-readable labels so a component's
stream does not depend on the *order* in which sibling components were
created.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["derive_seed", "spawn_rng", "RngStream"]


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a stable 63-bit child seed from ``root_seed`` and ``label``.

    The derivation is a SHA-256 hash of the decimal seed and the UTF-8
    label, so it is stable across Python processes and platforms (unlike
    :func:`hash`, which is salted per-process for strings).

    Parameters
    ----------
    root_seed:
        Any Python integer (negative values allowed; they are canonicalised
        into the hash input).
    label:
        Component label, e.g. ``"topology"`` or ``"queries/42"``.

    Returns
    -------
    int
        A non-negative integer < 2**63 suitable for seeding
        :class:`numpy.random.Generator`.
    """
    payload = f"{root_seed}:{label}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


def spawn_rng(root_seed: int, label: str) -> np.random.Generator:
    """Create an independent :class:`numpy.random.Generator` for ``label``."""
    return np.random.default_rng(derive_seed(root_seed, label))


@dataclass
class RngStream:
    """A labelled hierarchy of deterministic RNG streams.

    ``RngStream(seed).child("topology").generator()`` always yields the same
    stream for the same seed, regardless of what other children were created
    first.

    Examples
    --------
    >>> root = RngStream(42)
    >>> g1 = root.child("a").generator()
    >>> g2 = RngStream(42).child("a").generator()
    >>> float(g1.random()) == float(g2.random())
    True
    """

    seed: int
    path: str = ""
    _cache: dict = field(default_factory=dict, repr=False)

    def child(self, label: str) -> "RngStream":
        """Return a child stream; children with the same label are identical."""
        if "/" in label:
            raise ValueError(f"label may not contain '/': {label!r}")
        key = f"{self.path}/{label}" if self.path else label
        if key not in self._cache:
            self._cache[key] = RngStream(self.seed, key)
        return self._cache[key]

    def generator(self) -> np.random.Generator:
        """Materialise a fresh generator for this stream's label path."""
        return spawn_rng(self.seed, self.path or "root")

    def derived_seed(self) -> int:
        """The integer seed this stream's generator is constructed from."""
        return derive_seed(self.seed, self.path or "root")
