"""Unit conventions used throughout the library.

The paper's quantities and the units we adopt:

===========================  =======================================
Quantity                     Unit
===========================  =======================================
Dataset volume ``|S_n|``     gigabytes (GB)
Compute capacity ``B(v)``    gigahertz (GHz)
Compute rate ``r_m``         GHz allocated per GB scanned
Processing delay ``d(v)``    seconds per GB
Link delay ``dt(e)``         seconds per GB transferred on the link
Deadline ``d_qm``            seconds
===========================  =======================================

All internal arithmetic is in these base units (GB, GHz, seconds); the
constants and helpers here exist to make call sites self-documenting and to
render human-readable reports.
"""

from __future__ import annotations

__all__ = [
    "GB",
    "GHZ",
    "MS",
    "gb",
    "ghz",
    "ms_to_s",
    "s_to_ms",
    "format_volume",
    "format_delay",
]

#: One gigabyte, the base volume unit.
GB: float = 1.0

#: One gigahertz, the base compute unit.
GHZ: float = 1.0

#: One millisecond expressed in the base time unit (seconds).
MS: float = 1e-3


def gb(value: float) -> float:
    """Express ``value`` gigabytes in base volume units (identity helper)."""
    return value * GB


def ghz(value: float) -> float:
    """Express ``value`` gigahertz in base compute units (identity helper)."""
    return value * GHZ


def ms_to_s(value_ms: float) -> float:
    """Convert milliseconds to seconds."""
    return value_ms * MS


def s_to_ms(value_s: float) -> float:
    """Convert seconds to milliseconds."""
    return value_s / MS


def format_volume(volume_gb: float) -> str:
    """Render a volume as a compact human-readable string.

    >>> format_volume(3.0)
    '3.00 GB'
    >>> format_volume(2048.0)
    '2.00 TB'
    """
    if volume_gb >= 1024.0:
        return f"{volume_gb / 1024.0:.2f} TB"
    return f"{volume_gb:.2f} GB"


def format_delay(delay_s: float) -> str:
    """Render a delay as a compact human-readable string.

    >>> format_delay(0.0425)
    '42.5 ms'
    >>> format_delay(3.5)
    '3.50 s'
    """
    if delay_s < 1.0:
        return f"{s_to_ms(delay_s):.1f} ms"
    return f"{delay_s:.2f} s"
