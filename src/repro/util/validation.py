"""Argument validation helpers.

The library validates aggressively at construction boundaries (problem
instances, topologies, workloads) so that algorithm code can assume clean
inputs and stay branch-free on hot paths, per the optimisation guidance of
"make it work reliably before making it fast".
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ValidationError",
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_in_range",
    "check_type",
]


class ValidationError(ValueError):
    """Raised when a constructor argument violates the library's contracts."""


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if not value >= 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float, *, inclusive_low: bool = False) -> float:
    """Require ``value`` in ``(0, 1]`` (or ``[0, 1]`` with ``inclusive_low``)."""
    low_ok = value >= 0 if inclusive_low else value > 0
    if not (low_ok and value <= 1):
        bracket = "[0, 1]" if inclusive_low else "(0, 1]"
        raise ValidationError(f"{name} must be in {bracket}, got {value!r}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Require ``low <= value <= high``; return it for chaining."""
    if not (low <= value <= high):
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_type(name: str, value: Any, expected: type) -> Any:
    """Require ``isinstance(value, expected)``; return it for chaining."""
    if not isinstance(value, expected):
        raise ValidationError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value
