"""Workload generation: datasets, queries, and the mobile-usage trace.

Two workload families are provided:

* **Parametric** (§4.1) — datasets and queries drawn from the paper's
  simulation ranges (:class:`repro.workload.params.PaperDefaults`), via
  :func:`repro.workload.datasets.generate_datasets` and
  :func:`repro.workload.queries.generate_queries`.
* **Trace-driven** (§4.3) — a synthetic mobile-app usage trace standing in
  for the paper's proprietary 3M-user dataset
  (:mod:`repro.workload.trace`), split into datasets by creation time, with
  the paper's three analytics query families actually executable over it
  (:mod:`repro.workload.analytics`).
"""

from repro.workload.params import PaperDefaults
from repro.workload.datasets import generate_datasets
from repro.workload.queries import generate_queries, generate_workload
from repro.workload.trace import (
    UsageTrace,
    TraceConfig,
    generate_usage_trace,
    split_trace_by_time,
)
from repro.workload.forecast import (
    DemandForecaster,
    ForecastConfig,
    ewma_forecast,
    fit_zipf_exponent,
    region_labels,
    trace_window_counts,
    zipf_weight_forecast,
)
from repro.workload.arrivals import poisson_arrivals, diurnal_arrivals
from repro.workload.summary import InstanceProfile, profile_instance, render_profile
from repro.workload.scenarios import (
    ScenarioInstance,
    smart_city_scenario,
    iot_telemetry_scenario,
    media_analytics_scenario,
)
from repro.workload.queryplan import (
    FilterOp,
    AggregateOp,
    QueryPlan,
    execute_plan,
    execute_distributed,
    estimated_selectivity,
)
from repro.workload.analytics import (
    AnalyticsQueryKind,
    top_k_apps,
    usage_by_hour,
    app_usage_pattern,
    execute_analytics,
    trace_queries,
)

__all__ = [
    "PaperDefaults",
    "generate_datasets",
    "generate_queries",
    "generate_workload",
    "UsageTrace",
    "TraceConfig",
    "generate_usage_trace",
    "split_trace_by_time",
    "DemandForecaster",
    "ForecastConfig",
    "ewma_forecast",
    "fit_zipf_exponent",
    "region_labels",
    "trace_window_counts",
    "zipf_weight_forecast",
    "AnalyticsQueryKind",
    "top_k_apps",
    "usage_by_hour",
    "app_usage_pattern",
    "execute_analytics",
    "trace_queries",
    "poisson_arrivals",
    "diurnal_arrivals",
    "InstanceProfile",
    "profile_instance",
    "render_profile",
    "ScenarioInstance",
    "smart_city_scenario",
    "iot_telemetry_scenario",
    "media_analytics_scenario",
    "FilterOp",
    "AggregateOp",
    "QueryPlan",
    "execute_plan",
    "execute_distributed",
    "estimated_selectivity",
]
