"""Executable analytics queries over the usage trace (§4.3).

The paper's testbed issues three query families against the mobile-usage
datasets: "the most popular applications, at what time the found
applications would be used, and the usage pattern of some mobile
applications".  We implement all three as vectorised NumPy aggregations so
integration tests can verify a placement end-to-end: evaluating a query on
*replicas* must produce exactly the result of evaluating it on the
*original* datasets.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.core.types import Dataset, Query
from repro.topology.twotier import EdgeCloudTopology
from repro.util.validation import ValidationError, check_positive
from repro.workload.params import PaperDefaults
from repro.workload.queries import _draw_home
from repro.workload.trace import UsageTrace

__all__ = [
    "AnalyticsQueryKind",
    "top_k_apps",
    "usage_by_hour",
    "app_usage_pattern",
    "execute_analytics",
    "trace_queries",
]


class AnalyticsQueryKind(enum.Enum):
    """The three §4.3 query families."""

    TOP_K_APPS = "top_k_apps"
    USAGE_BY_HOUR = "usage_by_hour"
    APP_USAGE_PATTERN = "app_usage_pattern"


def _gather(
    trace: UsageTrace, segments: Sequence[tuple[int, int]], window_ids: Sequence[int]
) -> np.ndarray:
    """Event indices belonging to the demanded time windows."""
    if not window_ids:
        raise ValidationError("analytics query demands no trace windows")
    parts = [np.arange(*segments[w]) for w in window_ids]
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.intp)


def top_k_apps(
    trace: UsageTrace,
    segments: Sequence[tuple[int, int]],
    window_ids: Sequence[int],
    k: int = 10,
) -> np.ndarray:
    """Ids of the ``k`` most-used apps in the demanded windows.

    Usage is measured in events; ties break toward the lower app id so the
    result is deterministic.
    """
    check_positive("k", k)
    idx = _gather(trace, segments, window_ids)
    if idx.size == 0:
        return np.empty(0, dtype=np.int64)
    counts = np.bincount(trace.app[idx])
    order = np.lexsort((np.arange(len(counts)), -counts))
    return order[: min(k, int((counts > 0).sum()))].astype(np.int64)


def usage_by_hour(
    trace: UsageTrace,
    segments: Sequence[tuple[int, int]],
    window_ids: Sequence[int],
    app: int | None = None,
) -> np.ndarray:
    """Event counts per hour-of-day (length-24 vector), optionally per app.

    Answers "at what time the found applications would be used".
    """
    idx = _gather(trace, segments, window_ids)
    if app is not None:
        idx = idx[trace.app[idx] == app]
    hours = ((trace.timestamp_s[idx] % 86400.0) // 3600.0).astype(np.intp)
    return np.bincount(hours, minlength=24).astype(np.int64)


def app_usage_pattern(
    trace: UsageTrace,
    segments: Sequence[tuple[int, int]],
    window_ids: Sequence[int],
    app: int,
) -> np.ndarray:
    """Total usage duration (seconds) per day for one app.

    The vector spans from day 0 to the last day with any event in the
    demanded windows.
    """
    idx = _gather(trace, segments, window_ids)
    idx = idx[trace.app[idx] == app]
    if idx.size == 0:
        return np.zeros(0)
    days = (trace.timestamp_s[idx] // 86400.0).astype(np.intp)
    return np.bincount(days, weights=trace.duration_s[idx])


def execute_analytics(
    kind: AnalyticsQueryKind,
    trace: UsageTrace,
    segments: Sequence[tuple[int, int]],
    window_ids: Sequence[int],
    *,
    k: int = 10,
    app: int | None = None,
) -> np.ndarray:
    """Dispatch one analytics query and return its result array."""
    if kind is AnalyticsQueryKind.TOP_K_APPS:
        return top_k_apps(trace, segments, window_ids, k=k)
    if kind is AnalyticsQueryKind.USAGE_BY_HOUR:
        return usage_by_hour(trace, segments, window_ids, app=app)
    if kind is AnalyticsQueryKind.APP_USAGE_PATTERN:
        if app is None:
            raise ValidationError("app_usage_pattern requires an app id")
        return app_usage_pattern(trace, segments, window_ids, app=app)
    raise ValidationError(f"unknown analytics kind: {kind}")  # pragma: no cover


def trace_queries(
    topology: EdgeCloudTopology,
    datasets: dict[int, Dataset],
    rng: np.random.Generator,
    params: PaperDefaults | None = None,
    *,
    count: int = 50,
) -> tuple[list[Query], list[AnalyticsQueryKind]]:
    """Generate placement queries mirroring the §4.3 analytics workload.

    Each query demands a *contiguous* run of time-window datasets (analytics
    over a date range), with modest selectivity (aggregates ship partial
    counts, not raw events).  Returns the queries plus the analytics kind of
    each, so testbed runs can actually execute them.
    """
    params = params or PaperDefaults()
    check_positive("count", count)
    if not datasets:
        raise ValidationError("trace_queries needs a non-empty dataset collection")
    n = len(datasets)
    kinds = list(AnalyticsQueryKind)
    f_low, f_high = params.datasets_per_query
    f_high = min(f_high, n)
    f_low = min(f_low, f_high)

    queries: list[Query] = []
    chosen_kinds: list[AnalyticsQueryKind] = []
    for m in range(count):
        f = int(rng.integers(f_low, f_high + 1))
        start = int(rng.integers(0, n - f + 1))
        demanded = tuple(range(start, start + f))
        # Aggregation queries ship compact partials: keep α in the lower
        # half of the configured selectivity range.
        a_lo, a_hi = params.selectivity
        a_hi = a_lo + (a_hi - a_lo) / 2.0
        selectivity = tuple(float(a) for a in rng.uniform(a_lo, a_hi, size=f))
        pivot = max(datasets[d].volume_gb for d in demanded)
        deadline = pivot * float(rng.uniform(*params.deadline_s_per_gb))
        kind = kinds[int(rng.integers(len(kinds)))]
        queries.append(
            Query(
                query_id=m,
                home_node=_draw_home(topology, rng, params.cloudlet_home_fraction),
                demanded=demanded,
                selectivity=selectivity,
                compute_rate=float(rng.uniform(*params.compute_rate)),
                deadline_s=deadline,
                name=f"{kind.value}-{m}",
            )
        )
        chosen_kinds.append(kind)
    return queries, chosen_kinds
