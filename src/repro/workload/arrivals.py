"""Arrival processes for online sessions.

The batch experiments evaluate all queries at once; the online extension
(:mod:`repro.core.online`) plays them as a stream.  This module supplies
arrival processes:

* :func:`poisson_arrivals` — homogeneous Poisson (the online default),
* :func:`diurnal_arrivals` — an inhomogeneous process following the same
  hour-of-day activity profile as the usage trace (evening peak), so
  query load and data-generation load share a clock.

Both return sorted absolute arrival times in seconds.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive
from repro.workload.trace import _DIURNAL_WEIGHTS

__all__ = ["poisson_arrivals", "diurnal_arrivals"]


def poisson_arrivals(
    count: int,
    mean_interarrival_s: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """``count`` homogeneous Poisson arrival times."""
    check_positive("count", count)
    check_positive("mean_interarrival_s", mean_interarrival_s)
    return np.cumsum(rng.exponential(mean_interarrival_s, size=count))


def diurnal_arrivals(
    count: int,
    span_s: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """``count`` arrivals over ``[0, span_s)`` following the diurnal profile.

    Hours are drawn from the trace generator's hour-of-day weights
    (morning bump, strong evening peak) repeated over as many days as
    ``span_s`` covers; position within the hour is uniform.
    """
    check_positive("count", count)
    check_positive("span_s", span_s)
    num_days = max(1, int(np.ceil(span_s / 86_400.0)))
    hour_weights = _DIURNAL_WEIGHTS / _DIURNAL_WEIGHTS.sum()
    day = rng.integers(0, num_days, size=count)
    hour = rng.choice(24, size=count, p=hour_weights)
    within = rng.random(count) * 3600.0
    times = day * 86_400.0 + hour * 3600.0 + within
    times = times[times < span_s]
    while times.size < count:  # top up draws clipped by the span
        extra_day = rng.integers(0, num_days, size=count)
        extra_hour = rng.choice(24, size=count, p=hour_weights)
        extra = extra_day * 86_400.0 + extra_hour * 3600.0 + rng.random(count) * 3600.0
        times = np.concatenate([times, extra[extra < span_s]])
    return np.sort(times[:count])
