"""Parametric dataset generation (§4.1).

Datasets are the unit of replication: each has a volume in the paper's
[1, 6] GB range and an *origin node* where its authoritative copy lives
(mostly remote data centers, where legacy services generate their logs;
some at cloudlets, per §2.2).
"""

from __future__ import annotations

import numpy as np

from repro.core.types import Dataset
from repro.topology.twotier import EdgeCloudTopology
from repro.util.validation import ValidationError
from repro.workload.params import PaperDefaults

__all__ = ["generate_datasets"]


def generate_datasets(
    topology: EdgeCloudTopology,
    rng: np.random.Generator,
    params: PaperDefaults | None = None,
    *,
    count: int | None = None,
) -> dict[int, Dataset]:
    """Draw a dataset collection ``S`` for ``topology``.

    Parameters
    ----------
    topology:
        Supplies candidate origin nodes (data centers and cloudlets).
    rng:
        Source of randomness; pass a stream derived per experiment repeat.
    params:
        Parameter ranges; defaults to the paper's.
    count:
        Fix ``|S|`` instead of drawing it from ``params.num_datasets``.

    Returns
    -------
    dict[int, Dataset]
        Dataset id → dataset, ids dense from 0.
    """
    params = params or PaperDefaults()
    if count is None:
        low, high = params.num_datasets
        count = int(rng.integers(low, high + 1))
    if count <= 0:
        raise ValidationError(f"dataset count must be positive, got {count}")

    dcs = topology.data_centers
    cls_ = topology.cloudlets
    if not dcs and not cls_:
        raise ValidationError("topology has no placement nodes")

    volumes = rng.uniform(*params.dataset_volume_gb, size=count)
    datasets: dict[int, Dataset] = {}
    for n in range(count):
        # Origin: data center with probability dc_origin_fraction, else
        # cloudlet (falling back when a tier is absent).
        use_dc = bool(dcs) and (
            not cls_ or rng.random() < params.dc_origin_fraction
        )
        pool = dcs if use_dc else cls_
        origin = int(pool[int(rng.integers(len(pool)))])
        datasets[n] = Dataset(
            dataset_id=n,
            volume_gb=float(volumes[n]),
            origin_node=origin,
            name=f"S{n}",
        )
    return datasets
