"""Demand forecasting over sliding usage windows (ROADMAP item 3).

The paper's motivating asset is a 3M-user mobile-usage trace whose whole
point is *proactive* replication: knowing where demand will be before it
arrives.  This module supplies the forecasting half of that loop; the
serving half (converting forecasts into replica pre-placements) lives in
:mod:`repro.serve.preplacer`.

Two estimators are provided, both operating on per-(region, dataset)
counts bucketed over a sliding window:

* **EWMA** — an exponentially weighted moving average across the window's
  buckets; tracks smooth drift (diurnal rotation) and ramps (flash
  crowds) with one knob.
* **Windowed Zipf** — pools the window's counts per region, fits a Zipf
  exponent to the ranked tail by log-log least squares, and redistributes
  the EWMA-predicted regional demand along the fitted Zipf shape
  (reusing the public :func:`~repro.workload.trace.zipf_weights`).  This
  regularises sparse windows: a dataset seen twice in a thin sample gets
  the weight its *rank* earns, not the noisy empirical ratio.

Regions are label-based (``NodeSpec.region``) when the topology defines
them, and degrade to per-node granularity otherwise (the two-tier
generator leaves region labels empty — each home node then forecasts for
itself, which is the finest spatial resolution available).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.topology.twotier import EdgeCloudTopology
from repro.util.validation import (
    ValidationError,
    check_non_negative,
    check_positive,
)
from repro.workload.trace import UsageTrace, zipf_weights

__all__ = [
    "DemandForecaster",
    "ForecastConfig",
    "ewma_forecast",
    "fit_zipf_exponent",
    "region_labels",
    "trace_window_counts",
    "zipf_weight_forecast",
]

_ESTIMATORS = ("ewma", "zipf")

#: Fitted Zipf exponents are clipped into this range: below it the fit
#: degenerates to uniform, above it to a delta — both outside anything
#: the usage-trace generator (default 1.2) or the load factory produce.
_EXPONENT_BOUNDS = (0.1, 4.0)


@dataclass(frozen=True)
class ForecastConfig:
    """Sliding-window shape and estimator of a :class:`DemandForecaster`.

    Attributes
    ----------
    bucket:
        Observations folded into one window bucket before it closes.
    num_buckets:
        Closed buckets retained; ``bucket × num_buckets`` is the sliding
        window the estimators see.
    alpha:
        EWMA smoothing weight of the newest bucket, in ``(0, 1]``.
    estimator:
        ``"ewma"`` or ``"zipf"`` (see the module docstring).
    """

    bucket: int = 32
    num_buckets: int = 8
    alpha: float = 0.5
    estimator: str = "ewma"

    def __post_init__(self) -> None:
        check_positive("bucket", self.bucket)
        check_positive("num_buckets", self.num_buckets)
        if not 0.0 < self.alpha <= 1.0:
            raise ValidationError(
                f"alpha must be in (0, 1], got {self.alpha}"
            )
        if self.estimator not in _ESTIMATORS:
            raise ValidationError(
                f"estimator must be one of {_ESTIMATORS}, got {self.estimator!r}"
            )


def ewma_forecast(buckets: np.ndarray, alpha: float) -> np.ndarray:
    """EWMA level after folding ``buckets`` oldest-first.

    ``buckets`` stacks per-bucket counts along axis 0 (any trailing
    shape); the returned level — the next-bucket prediction — has the
    trailing shape.  A single bucket predicts itself.
    """
    stack = np.asarray(buckets, dtype=np.float64)
    if stack.shape[0] == 0:
        raise ValidationError("ewma_forecast needs at least one bucket")
    level = stack[0]
    for t in range(1, stack.shape[0]):
        level = alpha * stack[t] + (1.0 - alpha) * level
    return level


def fit_zipf_exponent(counts: np.ndarray, default: float = 1.0) -> float:
    """Zipf exponent of ranked ``counts`` by log-log least squares.

    Counts are sorted descending; zero entries are outside the support
    and are dropped before fitting.  With fewer than two positive ranks
    (or a flat head) there is nothing to regress — ``default`` is
    returned.  The fit is clipped to a sane range so a degenerate window
    can never produce a delta or uniform forecast.
    """
    arr = np.asarray(counts, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError(f"counts must be 1-D, got shape {arr.shape}")
    if np.any(arr < 0):
        raise ValidationError("counts must be non-negative")
    ranked = np.sort(arr)[::-1]
    ranked = ranked[ranked > 0]
    if ranked.size < 2 or ranked[0] == ranked[-1]:
        return float(default)
    log_rank = np.log(np.arange(1, ranked.size + 1, dtype=np.float64))
    log_count = np.log(ranked)
    slope = np.polyfit(log_rank, log_count, 1)[0]
    lo, hi = _EXPONENT_BOUNDS
    return float(np.clip(-slope, lo, hi))


def zipf_weight_forecast(
    counts: np.ndarray, exponent: float | None = None
) -> np.ndarray:
    """Zipf-regularised popularity forecast over one window's counts.

    The observed ranking is kept (ties broken by index, stable) but the
    *weights* come from the public :func:`~repro.workload.trace.
    zipf_weights` shape at the fitted (or given) exponent — the same
    heavy-tailed family the trace generator and load factory draw from.
    An all-zero window forecasts uniform.
    """
    arr = np.asarray(counts, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError(f"counts must be 1-D, got shape {arr.shape}")
    if np.any(arr < 0):
        raise ValidationError("counts must be non-negative")
    if arr.size == 0:
        raise ValidationError("counts must be non-empty")
    if arr.sum() <= 0:
        return np.full(arr.size, 1.0 / arr.size)
    if exponent is None:
        exponent = fit_zipf_exponent(arr)
    order = np.argsort(-arr, kind="stable")
    out = np.empty(arr.size)
    out[order] = zipf_weights(arr.size, exponent)
    return out


def region_labels(topology: EdgeCloudTopology) -> dict[int, str]:
    """Region label per node: ``NodeSpec.region``, or per-node fallback.

    Geo testbeds label their nodes (``"nyc"``); the two-tier generator
    leaves labels empty, in which case every node is its own region
    (``"n<id>"``) — the finest granularity a forecaster can use.
    """
    labels: dict[int, str] = {}
    for spec in topology.nodes:
        labels[spec.node_id] = spec.region or f"n{spec.node_id}"
    return labels


def trace_window_counts(
    trace: UsageTrace, window_s: float, num_apps: int | None = None
) -> np.ndarray:
    """Per-window app-usage counts of a usage trace, shape ``[W, A]``.

    Windows are consecutive ``window_s``-second spans from ``t = 0``.
    Relies on the trace being time-sorted (the :class:`UsageTrace`
    contract, enforced since the generator-side sort fix) — unsorted
    timestamps would scatter one wall-clock window across many rows.
    """
    check_positive("window_s", window_s)
    if num_apps is None:
        num_apps = int(trace.app.max()) + 1 if len(trace) else 1
    check_positive("num_apps", num_apps)
    if len(trace) == 0:
        return np.zeros((1, num_apps), dtype=np.int64)
    check_non_negative("timestamp_s[0]", float(trace.timestamp_s[0]))
    window = (trace.timestamp_s // window_s).astype(np.int64)
    num_windows = int(window[-1]) + 1
    flat = np.bincount(
        window * num_apps + trace.app, minlength=num_windows * num_apps
    )
    return flat.reshape(num_windows, num_apps)


class DemandForecaster:
    """Sliding-window per-(region, dataset) demand counter + forecaster.

    ``observe`` feeds one demand event (a submitted query demanding one
    dataset from one region); every ``config.bucket`` observations the
    current bucket closes and the oldest falls out of the window.  The
    forecast is the estimator's predicted next-bucket count matrix,
    shape ``[num_regions, num_datasets]``.
    """

    def __init__(
        self,
        regions: tuple[str, ...] | list[str],
        num_datasets: int,
        config: ForecastConfig | None = None,
    ) -> None:
        if not regions:
            raise ValidationError("forecaster needs at least one region")
        if len(set(regions)) != len(regions):
            raise ValidationError("region labels must be unique")
        check_positive("num_datasets", num_datasets)
        self.config = config or ForecastConfig()
        self.regions = tuple(regions)
        self.num_datasets = num_datasets
        self._region_index = {r: i for i, r in enumerate(self.regions)}
        self._shape = (len(self.regions), num_datasets)
        self._current = np.zeros(self._shape, dtype=np.float64)
        self._current_count = 0
        self._buckets: deque[np.ndarray] = deque(
            maxlen=self.config.num_buckets
        )
        self._observed = 0

    @property
    def observed(self) -> int:
        """Demand events seen since construction (never windowed away)."""
        return self._observed

    @property
    def window_observed(self) -> int:
        """Demand events currently inside the sliding window."""
        return self._current_count + sum(
            int(b.sum()) for b in self._buckets
        )

    def observe(self, region: str, dataset_index: int, weight: float = 1.0) -> None:
        """Count one demand event; unknown regions are ignored.

        (A query homed outside the forecaster's region roster — e.g. a
        node added after construction — must not crash the serving path;
        it simply contributes no signal.)
        """
        r = self._region_index.get(region)
        if r is None:
            return
        if not 0 <= dataset_index < self.num_datasets:
            raise ValidationError(
                f"dataset_index {dataset_index} outside 0..{self.num_datasets - 1}"
            )
        self._current[r, dataset_index] += weight
        self._current_count += 1
        self._observed += 1
        if self._current_count >= self.config.bucket:
            self.roll()

    def roll(self) -> None:
        """Close the current bucket (no-op when it is empty)."""
        if self._current_count == 0:
            return
        self._buckets.append(self._current)
        self._current = np.zeros(self._shape, dtype=np.float64)
        self._current_count = 0

    def _window_stack(self) -> np.ndarray:
        """Closed buckets plus the partial current one, oldest first."""
        stack = list(self._buckets)
        if self._current_count > 0:
            stack.append(self._current)
        if not stack:
            stack = [np.zeros(self._shape, dtype=np.float64)]
        return np.stack(stack)

    def forecast(self) -> np.ndarray:
        """Predicted next-bucket demand counts, shape ``[R, N]``.

        ``"ewma"`` smooths each (region, dataset) cell independently.
        ``"zipf"`` keeps the EWMA's predicted per-region *totals* but
        redistributes each region's mass along the Zipf shape fitted to
        its pooled window counts (see the module docstring).
        """
        stack = self._window_stack()
        level = ewma_forecast(stack, self.config.alpha)
        if self.config.estimator == "ewma":
            return level
        pooled = stack.sum(axis=0)
        out = np.zeros(self._shape)
        region_totals = level.sum(axis=1)
        for r in range(self._shape[0]):
            if region_totals[r] <= 0:
                continue
            out[r] = region_totals[r] * zipf_weight_forecast(pooled[r])
        return out
