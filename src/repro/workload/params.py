"""The paper's §4.1 simulation parameters, in one tunable place.

Every range quoted in the paper's experimental-environment paragraph has a
field here; fields not stated explicitly in the paper (selectivity range,
deadline scaling, origin mix) are documented with the modelling choice
made.  Experiments construct workloads exclusively through this object so
that sweeps (network size, ``F``, ``K``) change exactly one knob.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import ValidationError, check_fraction, check_positive

__all__ = ["PaperDefaults"]


@dataclass(frozen=True)
class PaperDefaults:
    """Workload parameter set with the paper's defaults.

    Attributes
    ----------
    num_datasets:
        Range for ``|S|`` — "randomly drawn in the range of [5, 20]".
    num_queries:
        Range for ``|Q|`` — "[10, 100]".
    dataset_volume_gb:
        Range for ``|S_n|`` — "[1, 6] GB".
    compute_rate:
        Range for ``r_m`` — "[0.75, 1.25] GHz" per GB.
    datasets_per_query:
        Range for the number of datasets a query demands — "[1, 7]".
        The upper bound is the sweep variable ``F`` in Figs. 4 and 7.
    max_replicas:
        Default ``K``; the sweep variable of Figs. 5 and 8.
    selectivity:
        Range for ``α_{nm}`` (not stated in the paper beyond
        ``0 < α ≤ 1`` [21]).  The default upper half keeps intermediate
        results heavy enough that wide-area transfers matter, which is the
        regime the paper's evaluation exhibits (remote data centers are
        delay-infeasible for a large share of queries).
    deadline_s_per_gb:
        The paper sets each query's deadline proportional to the volume it
        demands ("the QoS ... depends on the size of dataset demanded by
        the query"); since demanded datasets are evaluated in parallel, the
        deadline is the *largest* demanded dataset's volume times a rate
        drawn from this range (seconds per GB).  The default range is
        calibrated so the paper's regime holds: QoS binds, cloudlet compute
        is scarce, and the evaluation's algorithm ordering emerges.
    dc_origin_fraction:
        Probability that a dataset originates in a data center rather than
        a cloudlet (§2.2: big data is generated both at remote data centers
        and at cloudlets; most legacy services live in the cloud).
    cloudlet_home_fraction:
        Probability that a query's home location is a cloudlet (users sit
        at the network edge).
    """

    num_datasets: tuple[int, int] = (5, 20)
    num_queries: tuple[int, int] = (10, 100)
    dataset_volume_gb: tuple[float, float] = (1.0, 6.0)
    compute_rate: tuple[float, float] = (0.75, 1.25)
    datasets_per_query: tuple[int, int] = (1, 7)
    max_replicas: int = 3
    selectivity: tuple[float, float] = (0.4, 1.0)
    deadline_s_per_gb: tuple[float, float] = (0.04, 0.18)
    dc_origin_fraction: float = 0.7
    cloudlet_home_fraction: float = 0.8

    def __post_init__(self) -> None:
        for name in (
            "num_datasets",
            "num_queries",
            "dataset_volume_gb",
            "compute_rate",
            "datasets_per_query",
            "selectivity",
            "deadline_s_per_gb",
        ):
            low, high = getattr(self, name)
            check_positive(f"{name}[0]", low)
            if high < low:
                raise ValidationError(f"{name} range is inverted: ({low}, {high})")
        check_positive("max_replicas", self.max_replicas)
        check_fraction("dc_origin_fraction", self.dc_origin_fraction, inclusive_low=True)
        check_fraction(
            "cloudlet_home_fraction", self.cloudlet_home_fraction, inclusive_low=True
        )
        if self.selectivity[1] > 1.0:
            raise ValidationError("selectivity upper bound must be <= 1")

    # -- sweep helpers ----------------------------------------------------

    def with_max_datasets_per_query(self, f: int) -> "PaperDefaults":
        """Clamp the demanded-datasets range to ``[min, F]`` (Figs. 4, 7)."""
        check_positive("f", f)
        low = min(self.datasets_per_query[0], f)
        return replace(self, datasets_per_query=(low, f))

    def single_dataset(self) -> "PaperDefaults":
        """The special case: every query demands exactly one dataset."""
        return replace(self, datasets_per_query=(1, 1))

    def with_max_replicas(self, k: int) -> "PaperDefaults":
        """Set ``K`` (Figs. 5, 8)."""
        check_positive("k", k)
        return replace(self, max_replicas=k)

    def with_num_queries(self, low: int, high: int | None = None) -> "PaperDefaults":
        """Fix the query-count range (scaling benches)."""
        high = low if high is None else high
        return replace(self, num_queries=(low, high))

    def with_num_datasets(self, low: int, high: int | None = None) -> "PaperDefaults":
        """Fix the dataset-count range (scaling benches)."""
        high = low if high is None else high
        return replace(self, num_datasets=(low, high))
