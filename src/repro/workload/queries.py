"""Parametric query generation (§4.1) and whole-workload convenience.

Each query draws a home location (mostly cloudlets — users sit at the
edge), a demanded dataset subset of size up to ``F``, per-dataset
selectivities, a compute rate ``r_m`` and a QoS deadline proportional to
its demanded volume ("to avoid some users who demand more dataset require
the same delay as users who demand few dataset", §4.1).
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import ProblemInstance
from repro.core.types import Dataset, Query
from repro.topology.twotier import EdgeCloudTopology
from repro.util.validation import ValidationError
from repro.workload.datasets import generate_datasets
from repro.workload.params import PaperDefaults

__all__ = ["generate_queries", "generate_workload"]


def _draw_home(
    topology: EdgeCloudTopology,
    rng: np.random.Generator,
    cloudlet_fraction: float,
) -> int:
    """Draw a query home location: cloudlet-biased over placement nodes."""
    cls_ = topology.cloudlets
    dcs = topology.data_centers
    use_cl = bool(cls_) and (not dcs or rng.random() < cloudlet_fraction)
    pool = cls_ if use_cl else dcs
    return int(pool[int(rng.integers(len(pool)))])


def generate_queries(
    topology: EdgeCloudTopology,
    datasets: dict[int, Dataset],
    rng: np.random.Generator,
    params: PaperDefaults | None = None,
    *,
    count: int | None = None,
) -> list[Query]:
    """Draw the query set ``Q`` against an existing dataset collection.

    Parameters
    ----------
    topology:
        Supplies home-location candidates.
    datasets:
        The collection ``S`` the queries may demand from.
    rng:
        Source of randomness.
    params:
        Parameter ranges; defaults to the paper's.
    count:
        Fix ``|Q|`` instead of drawing from ``params.num_queries``.
    """
    params = params or PaperDefaults()
    if not datasets:
        raise ValidationError("cannot generate queries over an empty dataset set")
    if count is None:
        low, high = params.num_queries
        count = int(rng.integers(low, high + 1))
    if count <= 0:
        raise ValidationError(f"query count must be positive, got {count}")

    ids = np.fromiter(datasets.keys(), dtype=np.intp)
    f_low, f_high = params.datasets_per_query
    f_high = min(f_high, len(ids))
    f_low = min(f_low, f_high)

    queries: list[Query] = []
    for m in range(count):
        f = int(rng.integers(f_low, f_high + 1))
        demanded = tuple(
            int(d) for d in rng.choice(ids, size=f, replace=False)
        )
        selectivity = tuple(
            float(a) for a in rng.uniform(*params.selectivity, size=f)
        )
        # Datasets are evaluated in parallel (§2.3): the largest demanded
        # dataset dominates the response time, so the QoS deadline scales
        # with it ("the QoS ... depends on the size of dataset demanded").
        pivot = max(datasets[d].volume_gb for d in demanded)
        deadline = pivot * float(rng.uniform(*params.deadline_s_per_gb))
        queries.append(
            Query(
                query_id=m,
                home_node=_draw_home(topology, rng, params.cloudlet_home_fraction),
                demanded=demanded,
                selectivity=selectivity,
                compute_rate=float(rng.uniform(*params.compute_rate)),
                deadline_s=deadline,
                name=f"q{m}",
            )
        )
    return queries


def generate_workload(
    topology: EdgeCloudTopology,
    rng: np.random.Generator,
    params: PaperDefaults | None = None,
    *,
    num_datasets: int | None = None,
    num_queries: int | None = None,
) -> ProblemInstance:
    """Draw a complete :class:`~repro.core.instance.ProblemInstance`.

    Convenience wrapper combining :func:`generate_datasets`,
    :func:`generate_queries` and the ``K`` bound from ``params``.
    """
    params = params or PaperDefaults()
    datasets = generate_datasets(topology, rng, params, count=num_datasets)
    queries = generate_queries(topology, datasets, rng, params, count=num_queries)
    return ProblemInstance(
        topology=topology,
        datasets=datasets,
        queries=queries,
        max_replicas=params.max_replicas,
    )
