"""Logical analytics plans: scan → filter → aggregate, merged at home.

§2.2 describes query evaluation as extracting *intermediate results* from
each demanded dataset (possibly at different nodes) and aggregating them
at the query's home location.  This module gives that story executable
semantics beyond the three fixed §4.3 query families:

* a :class:`QueryPlan` is ``Scan(windows) → Filter* → Aggregate``,
* :func:`execute_plan` evaluates it centrally over the trace,
* :func:`execute_distributed` evaluates each demanded window *separately*
  (what a serving replica node does), ships the partial vectors, and
  merges them at home.

The key algebraic property — tested, and relied on by the whole placement
story — is that distributed evaluation is exact: per-window partials sum
to the central answer, because the supported aggregates are commutative
monoids over disjoint event sets.

:func:`estimated_selectivity` grounds the paper's ``α_{nm}`` in something
measurable: the bytes of a plan's partial result relative to the bytes of
the window it scanned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.util.validation import ValidationError, check_positive
from repro.workload.trace import UsageTrace

__all__ = [
    "FilterOp",
    "AggregateOp",
    "QueryPlan",
    "execute_plan",
    "execute_distributed",
    "estimated_selectivity",
]

_GROUPS = ("app", "hour", "day")
_MEASURES = ("count", "duration", "bytes")


@dataclass(frozen=True)
class FilterOp:
    """A conjunctive event filter.

    Attributes
    ----------
    app:
        Keep only events of this app id (``None`` = no app filter).
    user:
        Keep only events of this user id.
    hour_range:
        Keep events whose hour-of-day lies in ``[start, stop)``; wraps
        past midnight when ``start > stop``.
    """

    app: int | None = None
    user: int | None = None
    hour_range: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.hour_range is not None:
            a, b = self.hour_range
            if not (0 <= a < 24 and 0 <= b <= 24):
                raise ValidationError(f"hour_range out of bounds: {self.hour_range}")

    def mask(self, trace: UsageTrace, idx: np.ndarray) -> np.ndarray:
        """Boolean mask over ``idx`` selecting the surviving events."""
        keep = np.ones(idx.shape[0], dtype=bool)
        if self.app is not None:
            keep &= trace.app[idx] == self.app
        if self.user is not None:
            keep &= trace.user[idx] == self.user
        if self.hour_range is not None:
            hours = (trace.timestamp_s[idx] % 86400.0) // 3600.0
            a, b = self.hour_range
            keep &= (hours >= a) & (hours < b) if a <= b else (hours >= a) | (hours < b)
        return keep


@dataclass(frozen=True)
class AggregateOp:
    """Group-by aggregation over filtered events.

    Attributes
    ----------
    group_by:
        ``"app"``, ``"hour"`` (of day) or ``"day"``.
    measure:
        ``"count"`` (events), ``"duration"`` (seconds) or ``"bytes"``.
    size:
        Dense output-vector length (group ids ≥ size are dropped); hour
        grouping forces 24.
    """

    group_by: str = "app"
    measure: str = "count"
    size: int = 256

    def __post_init__(self) -> None:
        if self.group_by not in _GROUPS:
            raise ValidationError(f"group_by must be one of {_GROUPS}")
        if self.measure not in _MEASURES:
            raise ValidationError(f"measure must be one of {_MEASURES}")
        check_positive("size", self.size)

    @property
    def width(self) -> int:
        """Length of the dense result vector."""
        return 24 if self.group_by == "hour" else self.size

    def keys(self, trace: UsageTrace, idx: np.ndarray) -> np.ndarray:
        """Group key per event."""
        if self.group_by == "app":
            return trace.app[idx]
        if self.group_by == "hour":
            return ((trace.timestamp_s[idx] % 86400.0) // 3600.0).astype(np.int64)
        return (trace.timestamp_s[idx] // 86400.0).astype(np.int64)

    def weights(self, trace: UsageTrace, idx: np.ndarray) -> np.ndarray | None:
        """Per-event weight, or ``None`` for plain counting."""
        if self.measure == "count":
            return None
        if self.measure == "duration":
            return trace.duration_s[idx]
        return trace.nbytes[idx].astype(np.float64)


@dataclass(frozen=True)
class QueryPlan:
    """A logical analytics plan over trace windows.

    Attributes
    ----------
    windows:
        Dataset (time-window) ids the plan scans — its ``S(q_m)``.
    filters:
        Conjunctive filters applied after the scan.
    aggregate:
        The terminal aggregation.
    """

    windows: tuple[int, ...]
    filters: tuple[FilterOp, ...] = field(default_factory=tuple)
    aggregate: AggregateOp = field(default_factory=AggregateOp)

    def __post_init__(self) -> None:
        if not self.windows:
            raise ValidationError("a plan must scan at least one window")
        if len(set(self.windows)) != len(self.windows):
            raise ValidationError("duplicate windows in plan")


def _window_result(
    plan: QueryPlan,
    trace: UsageTrace,
    segments: Sequence[tuple[int, int]],
    window: int,
) -> np.ndarray:
    """Partial result of one window: the unit of distributed evaluation."""
    start, stop = segments[window]
    idx = np.arange(start, stop)
    for f in plan.filters:
        idx = idx[f.mask(trace, idx)]
    agg = plan.aggregate
    out = np.zeros(agg.width)
    if idx.size == 0:
        return out
    keys = agg.keys(trace, idx)
    weights = agg.weights(trace, idx)
    keep = keys < agg.width
    binned = np.bincount(
        keys[keep],
        weights=None if weights is None else weights[keep],
        minlength=agg.width,
    )
    out[: len(binned)] += binned[: agg.width]
    return out


def execute_plan(
    plan: QueryPlan,
    trace: UsageTrace,
    segments: Sequence[tuple[int, int]],
) -> np.ndarray:
    """Central (single-site) evaluation: scan all windows at once."""
    result = np.zeros(plan.aggregate.width)
    for window in plan.windows:
        result += _window_result(plan, trace, segments, window)
    return result


def execute_distributed(
    plan: QueryPlan,
    trace: UsageTrace,
    segments: Sequence[tuple[int, int]],
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Replica-style evaluation: per-window partials merged at home.

    Returns ``(merged, partials)`` where ``partials[i]`` is the
    intermediate result the serving node of window ``plan.windows[i]``
    would ship.  ``merged`` equals :func:`execute_plan`'s answer exactly
    (the aggregates are commutative monoids over disjoint events).
    """
    partials = [
        _window_result(plan, trace, segments, w) for w in plan.windows
    ]
    merged = np.sum(partials, axis=0) if partials else np.zeros(
        plan.aggregate.width
    )
    return merged, partials


def estimated_selectivity(
    plan: QueryPlan,
    trace: UsageTrace,
    segments: Sequence[tuple[int, int]],
    *,
    floor: float = 0.01,
) -> dict[int, float]:
    """Per-window ``α``: partial-result bytes over scanned-window bytes.

    The partial is a dense float64 vector (8 bytes/entry); a window's
    bytes are its events' payloads.  Clamped to ``[floor, 1]`` so the
    value is usable directly as a :class:`~repro.core.types.Query`
    selectivity.
    """
    if not 0.0 < floor <= 1.0:
        raise ValidationError(f"floor must be in (0, 1], got {floor}")
    alphas: dict[int, float] = {}
    for w in plan.windows:
        start, stop = segments[w]
        window_bytes = float(trace.nbytes[start:stop].sum())
        partial_bytes = 8.0 * plan.aggregate.width
        alpha = partial_bytes / window_bytes if window_bytes > 0 else 1.0
        alphas[w] = min(1.0, max(floor, alpha))
    return alphas
