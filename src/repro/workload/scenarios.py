"""Pre-canned workload scenarios for the paper's motivating applications.

§1 motivates the problem with emerging edge applications; this module
ships ready-made instances for three of them, so examples, tests and
demos don't hand-roll workloads:

* :func:`smart_city_scenario` — camera/sensor archives ingested at
  cloudlets, three QoS tiers (alerts, dashboards, planning studies),
* :func:`iot_telemetry_scenario` — many small sensor datasets generated
  at the edge, aggregation-heavy queries with mid deadlines,
* :func:`media_analytics_scenario` — few very large media datasets in
  the cloud, high-selectivity feature-extraction queries.

Each returns a validated :class:`~repro.core.instance.ProblemInstance`
plus a tag per query naming its tier/class, and is deterministic in its
seed.
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import ProblemInstance
from repro.core.types import Dataset, Query
from repro.topology.twotier import EdgeCloudTopology, TwoTierConfig, generate_two_tier
from repro.util.rng import spawn_rng
from repro.util.validation import check_positive

__all__ = [
    "ScenarioInstance",
    "smart_city_scenario",
    "iot_telemetry_scenario",
    "media_analytics_scenario",
]


class ScenarioInstance:
    """A scenario's instance plus per-query class tags.

    Attributes
    ----------
    instance:
        The placement problem.
    tags:
        Query id → class label (e.g. ``"alert"``).
    name:
        Scenario name.
    """

    def __init__(
        self, name: str, instance: ProblemInstance, tags: dict[int, str]
    ) -> None:
        self.name = name
        self.instance = instance
        self.tags = dict(tags)

    def queries_of(self, tag: str) -> list[int]:
        """Query ids carrying ``tag``."""
        return [q for q, t in self.tags.items() if t == tag]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScenarioInstance({self.name!r}, Q={self.instance.num_queries}, "
            f"S={self.instance.num_datasets})"
        )


def _pick(pool, rng: np.random.Generator) -> int:
    return int(pool[int(rng.integers(len(pool)))])


def smart_city_scenario(seed: int = 0, *, num_queries: int = 80) -> ScenarioInstance:
    """Camera/sensor archives at cloudlets, three QoS tiers.

    Tiers: ``alert`` (sub-100ms/GB deadlines, tiny results),
    ``dashboard`` (mid), ``planning`` (relaxed, large results).
    """
    check_positive("num_queries", num_queries)
    rng = spawn_rng(seed, "scenario/smart-city")
    topology = generate_two_tier(
        TwoTierConfig(num_data_centers=4, num_cloudlets=20, num_switches=2),
        seed=seed,
    )
    datasets = {
        n: Dataset(
            dataset_id=n,
            volume_gb=float(rng.uniform(2.0, 6.0)),
            origin_node=_pick(topology.cloudlets, rng),
            name=f"district-{n}",
        )
        for n in range(12)
    }
    tiers = {
        "alert": (0.05, 0.10, 0.35),
        "dashboard": (0.15, 0.45, 0.40),
        "planning": (0.50, 0.90, 0.25),
    }
    return _tiered(
        "smart-city", topology, datasets, tiers, rng, num_queries, max_f=3
    )


def iot_telemetry_scenario(seed: int = 0, *, num_queries: int = 100) -> ScenarioInstance:
    """Many small sensor datasets at the extreme edge, rollup-style queries.

    Tiers: ``realtime`` rollups vs ``batch`` history scans.
    """
    check_positive("num_queries", num_queries)
    rng = spawn_rng(seed, "scenario/iot")
    topology = generate_two_tier(
        TwoTierConfig(num_data_centers=3, num_cloudlets=28, num_switches=3),
        seed=seed,
    )
    datasets = {
        n: Dataset(
            dataset_id=n,
            volume_gb=float(rng.uniform(0.5, 2.0)),
            origin_node=_pick(topology.cloudlets, rng),
            name=f"sensor-feed-{n}",
        )
        for n in range(24)
    }
    tiers = {
        "realtime": (0.08, 0.15, 0.6),
        "batch": (0.40, 0.60, 0.4),
    }
    return _tiered("iot-telemetry", topology, datasets, tiers, rng, num_queries, max_f=6)


def media_analytics_scenario(seed: int = 0, *, num_queries: int = 50) -> ScenarioInstance:
    """Few huge media datasets in the cloud, heavy feature extraction.

    Tiers: ``interactive`` clip queries vs ``pipeline`` full-corpus passes.
    """
    check_positive("num_queries", num_queries)
    rng = spawn_rng(seed, "scenario/media")
    topology = generate_two_tier(
        TwoTierConfig(num_data_centers=6, num_cloudlets=12, num_switches=2),
        seed=seed,
    )
    datasets = {
        n: Dataset(
            dataset_id=n,
            volume_gb=float(rng.uniform(8.0, 16.0)),
            origin_node=_pick(topology.data_centers, rng),
            name=f"media-corpus-{n}",
        )
        for n in range(6)
    }
    tiers = {
        "interactive": (0.10, 0.25, 0.5),
        "pipeline": (0.60, 0.85, 0.5),
    }
    return _tiered("media-analytics", topology, datasets, tiers, rng, num_queries, max_f=2)


def _tiered(
    name: str,
    topology: EdgeCloudTopology,
    datasets: dict[int, Dataset],
    tiers: dict[str, tuple[float, float, float]],
    rng: np.random.Generator,
    num_queries: int,
    *,
    max_f: int,
) -> ScenarioInstance:
    """Shared tiered-query construction.

    ``tiers`` maps label → (deadline s/GB, selectivity, probability).
    """
    labels = list(tiers)
    probs = np.array([tiers[t][2] for t in labels])
    probs = probs / probs.sum()
    ids = np.fromiter(datasets.keys(), dtype=np.intp)

    queries: list[Query] = []
    tags: dict[int, str] = {}
    for m in range(num_queries):
        tier = labels[int(rng.choice(len(labels), p=probs))]
        rate, alpha, _ = tiers[tier]
        f = int(rng.integers(1, min(max_f, len(ids)) + 1))
        demanded = tuple(int(d) for d in rng.choice(ids, size=f, replace=False))
        pivot = max(datasets[d].volume_gb for d in demanded)
        queries.append(
            Query(
                query_id=m,
                home_node=_pick(topology.cloudlets, rng),
                demanded=demanded,
                selectivity=tuple(alpha for _ in demanded),
                compute_rate=float(rng.uniform(0.75, 1.25)),
                deadline_s=pivot * rate,
                name=f"{tier}-{m}",
            )
        )
        tags[m] = tier
    instance = ProblemInstance(
        topology=topology, datasets=datasets, queries=queries, max_replicas=3
    )
    return ScenarioInstance(name, instance, tags)
