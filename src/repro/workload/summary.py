"""Instance diagnostics: what regime is this workload actually in?

Calibrating the paper's evaluation regime (EXPERIMENTS.md) needs answers
to questions the raw instance doesn't surface: how much of the demand
could *any* placement serve within deadline?  How often are data centers
delay-feasible?  How tight is cloudlet compute against demand?  This
module computes that profile; the CLI exposes it as ``describe``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instance import ProblemInstance

__all__ = ["InstanceProfile", "profile_instance", "render_profile"]


@dataclass(frozen=True)
class InstanceProfile:
    """Regime diagnostics for one problem instance.

    Attributes
    ----------
    num_queries, num_datasets, num_placement_nodes:
        Instance dimensions.
    total_demand_gb:
        Σ demanded volumes over all queries.
    total_compute_demand_ghz:
        Compute needed to serve every pair (``Σ |S_n|·r_m``).
    cloudlet_capacity_ghz, dc_capacity_ghz:
        Aggregate capacities per tier.
    mean_feasible_nodes_per_pair:
        Average count of delay-feasible nodes over all (query, dataset)
        pairs — the QoS tightness dial.
    dc_feasible_pair_fraction:
        Fraction of pairs for which at least one *data center* meets the
        deadline — the greedy trap dial (low = DCs useless).
    unservable_pair_fraction:
        Pairs no node can serve in time (intrinsically infeasible).
    unservable_query_fraction:
        Queries with at least one unservable pair (can never be admitted).
    """

    num_queries: int
    num_datasets: int
    num_placement_nodes: int
    total_demand_gb: float
    total_compute_demand_ghz: float
    cloudlet_capacity_ghz: float
    dc_capacity_ghz: float
    mean_feasible_nodes_per_pair: float
    dc_feasible_pair_fraction: float
    unservable_pair_fraction: float
    unservable_query_fraction: float

    @property
    def compute_pressure(self) -> float:
        """Total compute demand over cloudlet capacity (>1 ⇒ DCs or
        rejections must absorb the excess)."""
        if self.cloudlet_capacity_ghz == 0:
            return float("inf")
        return self.total_compute_demand_ghz / self.cloudlet_capacity_ghz


def profile_instance(instance: ProblemInstance) -> InstanceProfile:
    """Compute the regime profile of ``instance`` (vectorised per pair)."""
    topo = instance.topology
    dc_mask = np.array(
        [v in set(topo.data_centers) for v in instance.placement_nodes]
    )
    proc = instance.proc_delays

    feasible_counts: list[int] = []
    dc_feasible = 0
    unservable_pairs = 0
    unservable_queries = 0
    total_pairs = 0
    compute_demand = 0.0
    demand_gb = 0.0

    for query in instance.queries:
        home_vec = instance.home_delay_vectors[query.home_node]
        query_unservable = False
        for d_id, alpha in zip(query.demanded, query.selectivity):
            volume = instance.dataset(d_id).volume_gb
            demand_gb += volume
            compute_demand += volume * query.compute_rate
            latency = volume * (proc + alpha * home_vec)
            ok = latency <= query.deadline_s
            count = int(ok.sum())
            feasible_counts.append(count)
            total_pairs += 1
            if count == 0:
                unservable_pairs += 1
                query_unservable = True
            if bool((ok & dc_mask).any()):
                dc_feasible += 1
        if query_unservable:
            unservable_queries += 1

    return InstanceProfile(
        num_queries=instance.num_queries,
        num_datasets=instance.num_datasets,
        num_placement_nodes=instance.num_placement_nodes,
        total_demand_gb=demand_gb,
        total_compute_demand_ghz=compute_demand,
        cloudlet_capacity_ghz=sum(topo.capacity(v) for v in topo.cloudlets),
        dc_capacity_ghz=sum(topo.capacity(v) for v in topo.data_centers),
        mean_feasible_nodes_per_pair=(
            float(np.mean(feasible_counts)) if feasible_counts else 0.0
        ),
        dc_feasible_pair_fraction=(
            dc_feasible / total_pairs if total_pairs else 0.0
        ),
        unservable_pair_fraction=(
            unservable_pairs / total_pairs if total_pairs else 0.0
        ),
        unservable_query_fraction=(
            unservable_queries / instance.num_queries
            if instance.num_queries
            else 0.0
        ),
    )


def render_profile(profile: InstanceProfile) -> str:
    """Human-readable regime report."""
    lines = [
        "=== instance profile ===",
        f"dimensions       : {profile.num_queries} queries, "
        f"{profile.num_datasets} datasets, "
        f"{profile.num_placement_nodes} placement nodes",
        f"demand           : {profile.total_demand_gb:.1f} GB "
        f"({profile.total_compute_demand_ghz:.1f} GHz to serve everything)",
        f"capacity         : cloudlets {profile.cloudlet_capacity_ghz:.1f} GHz, "
        f"data centers {profile.dc_capacity_ghz:.1f} GHz",
        f"compute pressure : {profile.compute_pressure:.2f}× cloudlet capacity",
        f"QoS tightness    : {profile.mean_feasible_nodes_per_pair:.1f} "
        f"delay-feasible nodes per pair (of {profile.num_placement_nodes})",
        f"DC feasibility   : {profile.dc_feasible_pair_fraction:.0%} of pairs "
        f"can use a data center",
        f"unservable       : {profile.unservable_pair_fraction:.0%} of pairs, "
        f"{profile.unservable_query_fraction:.0%} of queries "
        f"(infeasible at any node)",
    ]
    return "\n".join(lines)
