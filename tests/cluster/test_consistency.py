"""Tests for the threshold-based consistency model."""

import pytest

from repro.cluster.consistency import ConsistencyModel, SyncReport
from repro.core import make_algorithm
from repro.util.validation import ValidationError


class TestSyncsOver:
    def test_basic_counting(self):
        model = ConsistencyModel(threshold=0.1, growth_rate_per_day=0.05)
        # 30 days × 5%/day = 150% growth → 15 syncs at 10% threshold.
        assert model.syncs_over(30.0) == 15

    def test_no_growth_no_syncs(self):
        model = ConsistencyModel(threshold=0.1, growth_rate_per_day=0.0)
        assert model.syncs_over(365.0) == 0

    def test_looser_threshold_fewer_syncs(self):
        tight = ConsistencyModel(threshold=0.05)
        loose = ConsistencyModel(threshold=0.5)
        assert tight.syncs_over(30.0) > loose.syncs_over(30.0)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValidationError):
            ConsistencyModel(threshold=0.0)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValidationError):
            ConsistencyModel().syncs_over(0.0)


class TestReport:
    def test_origin_only_placement_costs_nothing(self, paper_instance):
        model = ConsistencyModel()
        replicas = {
            d: (ds.origin_node,) for d, ds in paper_instance.datasets.items()
        }
        report = model.report(paper_instance, replicas)
        assert report == SyncReport(0, 0.0, 0.0)

    def test_cost_scales_with_replicas(self, paper_instance):
        model = ConsistencyModel()
        solution = make_algorithm("appro-g").solve(paper_instance)
        one = model.report(paper_instance, solution.replicas)
        # Doubling the horizon roughly doubles everything.
        two = model.report(paper_instance, solution.replicas, horizon_days=60.0)
        assert two.syncs >= 2 * one.syncs - len(solution.replicas)
        assert two.shipped_gb >= one.shipped_gb * 1.9

    def test_shipped_volume_formula(self, paper_instance):
        model = ConsistencyModel(threshold=0.25, growth_rate_per_day=0.05)
        d0 = next(iter(paper_instance.datasets.values()))
        other = next(
            v
            for v in paper_instance.placement_nodes
            if v != d0.origin_node
        )
        replicas = {d0.dataset_id: (d0.origin_node, other)}
        report = model.report(paper_instance, replicas, horizon_days=30.0)
        syncs = model.syncs_over(30.0)  # floor(1.5/0.25) = 6
        assert report.syncs == syncs
        assert report.shipped_gb == pytest.approx(syncs * 0.25 * d0.volume_gb)
        assert report.transfer_cost_s == pytest.approx(
            syncs
            * 0.25
            * d0.volume_gb
            * paper_instance.paths.delay(d0.origin_node, other)
        )

    def test_report_addition(self):
        a = SyncReport(1, 2.0, 3.0)
        b = SyncReport(4, 5.0, 6.0)
        assert a + b == SyncReport(5, 7.0, 9.0)
