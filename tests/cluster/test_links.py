"""Tests for per-link bandwidth ledgers."""

import pytest

from repro.cluster.links import LinkBudgetError, LinkLedger


@pytest.fixture()
def ledger(small_topology):
    return LinkLedger(small_topology, budget_gb=10.0)


@pytest.fixture()
def a_path(small_topology):
    """Some real 2+ node path in the topology."""
    (u, v), _ = next(iter(small_topology.link_delays.items()))
    return [u, v]


class TestConstruction:
    def test_uniform_budget(self, small_topology, ledger):
        for (u, v) in small_topology.link_delays:
            assert ledger.capacity(u, v) == 10.0
            assert ledger.available(u, v) == 10.0

    def test_per_link_budgets(self, small_topology):
        budgets = {e: 5.0 for e in small_topology.link_delays}
        ledger = LinkLedger(small_topology, budgets)
        u, v = next(iter(budgets))
        assert ledger.capacity(u, v) == 5.0

    def test_missing_link_budget_rejected(self, small_topology):
        with pytest.raises(LinkBudgetError):
            LinkLedger(small_topology, {})

    def test_non_positive_budget_rejected(self, small_topology):
        with pytest.raises(Exception):
            LinkLedger(small_topology, 0.0)


class TestAllocation:
    def test_allocate_and_release(self, ledger, a_path):
        u, v = a_path
        ledger.allocate_path("t", a_path, 4.0)
        assert ledger.available(u, v) == pytest.approx(6.0)
        ledger.release("t")
        assert ledger.available(u, v) == pytest.approx(10.0)

    def test_symmetric_lookup(self, ledger, a_path):
        u, v = a_path
        ledger.allocate_path("t", a_path, 4.0)
        assert ledger.available(v, u) == pytest.approx(6.0)

    def test_over_budget_rejected_atomically(self, ledger, a_path):
        ledger.allocate_path("a", a_path, 8.0)
        u, v = a_path
        with pytest.raises(LinkBudgetError):
            ledger.allocate_path("b", a_path, 3.0)
        assert ledger.available(u, v) == pytest.approx(2.0)

    def test_duplicate_tag_rejected(self, ledger, a_path):
        ledger.allocate_path("a", a_path, 1.0)
        with pytest.raises(LinkBudgetError):
            ledger.allocate_path("a", a_path, 1.0)

    def test_release_unknown_tag_rejected(self, ledger):
        with pytest.raises(LinkBudgetError):
            ledger.release("ghost")

    def test_path_fits(self, ledger, a_path):
        assert ledger.path_fits(a_path, 10.0)
        assert not ledger.path_fits(a_path, 10.1)

    def test_single_node_path_trivially_fits(self, ledger):
        assert ledger.path_fits([0], 1e9)

    def test_utilization(self, ledger, a_path):
        ledger.allocate_path("a", a_path, 5.0)
        util = ledger.utilization()
        u, v = a_path
        key = (min(u, v), max(u, v))
        assert util[key] == pytest.approx(0.5)


class TestSnapshot:
    def test_snapshot_restore(self, ledger, a_path):
        ledger.allocate_path("a", a_path, 2.0)
        snap = ledger.snapshot()
        ledger.allocate_path("b", a_path, 3.0)
        ledger.restore(snap)
        u, v = a_path
        assert ledger.available(u, v) == pytest.approx(8.0)
        ledger.release("a")  # still present after restore
        with pytest.raises(LinkBudgetError):
            ledger.release("b")  # rolled back
