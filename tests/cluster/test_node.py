"""Tests for per-node compute accounting."""

import pytest

from repro.cluster.node import CapacityError, ComputeNode


class TestConstruction:
    def test_basic(self):
        node = ComputeNode(0, 10.0)
        assert node.available_ghz == 10.0
        assert node.allocated_ghz == 0.0
        assert node.utilization == 0.0

    def test_reservation(self):
        node = ComputeNode(0, 10.0, reserved_ghz=4.0)
        assert node.available_ghz == 6.0
        assert node.utilization == pytest.approx(0.4)

    def test_over_reservation_rejected(self):
        with pytest.raises(CapacityError):
            ComputeNode(0, 10.0, reserved_ghz=11.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(Exception):
            ComputeNode(0, 0.0)


class TestAllocate:
    def test_allocate_and_release(self):
        node = ComputeNode(0, 10.0)
        node.allocate("a", 4.0)
        assert node.allocated_ghz == 4.0
        assert node.available_ghz == 6.0
        freed = node.release("a")
        assert freed == 4.0
        assert node.available_ghz == 10.0

    def test_exact_fit(self):
        node = ComputeNode(0, 10.0)
        node.allocate("a", 10.0)
        assert node.available_ghz == pytest.approx(0.0)

    def test_over_allocation_rejected(self):
        node = ComputeNode(0, 10.0)
        node.allocate("a", 8.0)
        with pytest.raises(CapacityError):
            node.allocate("b", 3.0)
        # failed allocation leaves state unchanged
        assert node.allocated_ghz == 8.0

    def test_duplicate_tag_rejected(self):
        node = ComputeNode(0, 10.0)
        node.allocate("a", 1.0)
        with pytest.raises(CapacityError):
            node.allocate("a", 1.0)

    def test_release_unknown_tag_rejected(self):
        node = ComputeNode(0, 10.0)
        with pytest.raises(CapacityError):
            node.release("ghost")

    def test_can_fit(self):
        node = ComputeNode(0, 10.0)
        node.allocate("a", 7.0)
        assert node.can_fit(3.0)
        assert not node.can_fit(3.1)

    def test_zero_allocation_allowed(self):
        node = ComputeNode(0, 10.0)
        node.allocate("z", 0.0)
        assert node.allocated_ghz == 0.0
        node.release("z")

    def test_tuple_tags(self):
        node = ComputeNode(0, 10.0)
        node.allocate((1, 2), 2.0)
        node.allocate((1, 3), 2.0)
        assert node.allocation_tags() == ((1, 2), (1, 3))
        node.release((1, 2))
        assert node.allocation_tags() == ((1, 3),)


class TestSnapshot:
    def test_snapshot_restore(self):
        node = ComputeNode(0, 10.0)
        node.allocate("a", 2.0)
        snap = node.snapshot()
        node.allocate("b", 3.0)
        node.restore(snap)
        assert node.allocated_ghz == 2.0
        assert node.allocation_tags() == ("a",)

    def test_snapshot_is_copy(self):
        node = ComputeNode(0, 10.0)
        node.allocate("a", 2.0)
        snap = node.snapshot()
        node.release("a")
        assert snap == {"a": 2.0}
