"""Tests for the replica ledger."""

import pytest

from repro.cluster.replicas import ReplicaError, ReplicaStore
from repro.core.types import Dataset


@pytest.fixture()
def datasets():
    return {
        0: Dataset(dataset_id=0, volume_gb=2.0, origin_node=10),
        1: Dataset(dataset_id=1, volume_gb=3.0, origin_node=11),
    }


@pytest.fixture()
def store(datasets):
    return ReplicaStore(datasets, max_replicas=3)


class TestSeeding:
    def test_origin_seeded(self, store):
        assert store.nodes(0) == {10}
        assert store.origin(0) == 10
        assert store.count(0) == 1

    def test_total_replicas(self, store):
        assert store.total_replicas() == 2


class TestPlace:
    def test_place_and_query(self, store):
        store.place(0, 20)
        assert store.has(0, 20)
        assert store.count(0) == 2
        assert store.remaining_slots(0) == 1

    def test_duplicate_rejected(self, store):
        store.place(0, 20)
        with pytest.raises(ReplicaError):
            store.place(0, 20)

    def test_k_bound_enforced(self, store):
        store.place(0, 20)
        store.place(0, 21)
        assert store.remaining_slots(0) == 0
        with pytest.raises(ReplicaError):
            store.place(0, 22)

    def test_can_place(self, store):
        assert store.can_place(0, 20)
        assert not store.can_place(0, 10)  # origin already there
        store.place(0, 20)
        store.place(0, 21)
        assert not store.can_place(0, 22)  # K exhausted

    def test_k_counts_origin(self, datasets):
        store = ReplicaStore(datasets, max_replicas=1)
        assert store.remaining_slots(0) == 0
        with pytest.raises(ReplicaError):
            store.place(0, 20)


class TestRemove:
    def test_remove_replica(self, store):
        store.place(0, 20)
        store.remove(0, 20)
        assert not store.has(0, 20)

    def test_origin_permanent(self, store):
        with pytest.raises(ReplicaError):
            store.remove(0, 10)

    def test_remove_missing_rejected(self, store):
        with pytest.raises(ReplicaError):
            store.remove(0, 99)


class TestQueries:
    def test_datasets_on(self, store):
        store.place(0, 20)
        store.place(1, 20)
        assert store.datasets_on(20) == {0, 1}
        assert store.datasets_on(10) == {0}

    def test_replica_map_sorted(self, store):
        store.place(0, 30)
        store.place(0, 5)
        assert store.replica_map()[0] == (5, 10, 30)


class TestSnapshot:
    def test_snapshot_restore(self, store):
        store.place(0, 20)
        snap = store.snapshot()
        store.place(0, 21)
        store.place(1, 21)
        store.restore(snap)
        assert store.nodes(0) == {10, 20}
        assert store.nodes(1) == {11}

    def test_snapshot_is_deep(self, store):
        snap = store.snapshot()
        store.place(0, 20)
        assert 20 not in snap[0]
