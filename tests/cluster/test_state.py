"""Tests for transactional cluster state."""

import pytest

from repro.cluster.node import CapacityError
from repro.cluster.replicas import ReplicaError
from repro.cluster.state import ClusterState
from repro.core.metrics import InvariantViolation


class TestServe:
    def test_serve_places_replica_and_allocates(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        node = tiny_instance.placement_nodes[4]
        assignment = state.serve(query, dataset, node)
        assert assignment.node == node
        assert state.replicas.has(0, node)
        assert state.nodes[node].allocated_ghz == pytest.approx(
            dataset.volume_gb * query.compute_rate
        )

    def test_serve_at_origin_consumes_no_slot(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        before = state.replicas.count(0)
        state.serve(query, dataset, dataset.origin_node)
        assert state.replicas.count(0) == before

    def test_serve_rejects_deadline_violation(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        # Shrink the deadline below any achievable latency.
        import dataclasses

        tight = dataclasses.replace(query, deadline_s=1e-9)
        with pytest.raises(ValueError, match="deadline"):
            state.serve(tight, tiny_instance.dataset(0), tiny_instance.placement_nodes[0])

    def test_serve_rolls_back_replica_on_capacity_error(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(1)
        dataset = tiny_instance.dataset(1)
        node = tiny_instance.placement_nodes[4]
        # Fill the node first.
        state.nodes[node].allocate("filler", state.nodes[node].available_ghz)
        with pytest.raises(CapacityError):
            state.serve(query, dataset, node)
        assert not state.replicas.has(1, node)

    def test_release_returns_compute(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        node = dataset.origin_node
        assignment = state.serve(query, dataset, node)
        state.release(assignment)
        assert state.nodes[node].allocated_ghz == 0.0

    def test_k_exhaustion_raises(self, tiny_instance):
        state = ClusterState(tiny_instance)  # K = 2
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        nodes = [
            v for v in tiny_instance.placement_nodes if v != dataset.origin_node
        ]
        state.replicas.place(0, nodes[0])  # slot 2 of 2 used
        with pytest.raises(ReplicaError):
            state.serve(query, dataset, nodes[1])


class TestFeasibilityHelpers:
    def test_compute_demand(self, tiny_instance):
        state = ClusterState(tiny_instance)
        q = tiny_instance.query(2)
        d = tiny_instance.dataset(1)
        assert state.compute_demand(q, d) == pytest.approx(4.0 * 1.2)

    def test_can_serve_consistent_with_serve(self, tiny_instance):
        state = ClusterState(tiny_instance)
        for q in tiny_instance.queries:
            for d_id in q.demanded:
                d = tiny_instance.dataset(d_id)
                for v in tiny_instance.placement_nodes:
                    if state.can_serve(q, d, v):
                        with state.transaction():
                            state.serve(q, d, v)  # must not raise
                        break

    def test_reserved_fraction(self, tiny_instance):
        state = ClusterState(tiny_instance, reserved_fraction=0.5)
        for v, node in state.nodes.items():
            assert node.available_ghz == pytest.approx(
                0.5 * tiny_instance.topology.capacity(v)
            )

    def test_bad_reserved_fraction(self, tiny_instance):
        with pytest.raises(ValueError):
            ClusterState(tiny_instance, reserved_fraction=1.0)


class TestTransaction:
    def test_rollback_restores_everything(self, tiny_instance):
        state = ClusterState(tiny_instance)
        node = tiny_instance.placement_nodes[5]
        with state.transaction():
            state.serve(tiny_instance.query(0), tiny_instance.dataset(0), node)
            # no commit
        assert not state.replicas.has(0, node)
        assert state.nodes[node].allocated_ghz == 0.0

    def test_commit_keeps_mutations(self, tiny_instance):
        state = ClusterState(tiny_instance)
        node = tiny_instance.placement_nodes[5]
        with state.transaction() as txn:
            state.serve(tiny_instance.query(0), tiny_instance.dataset(0), node)
            txn.commit()
        assert state.replicas.has(0, node)
        assert state.nodes[node].allocated_ghz > 0.0

    def test_rollback_on_exception(self, tiny_instance):
        state = ClusterState(tiny_instance)
        node = tiny_instance.placement_nodes[5]
        with pytest.raises(RuntimeError):
            with state.transaction():
                state.serve(tiny_instance.query(0), tiny_instance.dataset(0), node)
                raise RuntimeError("boom")
        assert not state.replicas.has(0, node)

    def test_rollback_after_partial_serve_failure(self, tiny_instance):
        """A serve that fails mid-transaction after earlier pairs placed
        replicas must leave no trace: the replica store and every node
        ledger roll back together."""
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(1)  # demands datasets 0 and 1
        good = tiny_instance.placement_nodes[4]
        full = tiny_instance.placement_nodes[5]
        state.nodes[full].allocate("filler", state.nodes[full].available_ghz)
        with pytest.raises(CapacityError):
            with state.transaction():
                state.serve(query, tiny_instance.dataset(0), good)
                state.serve(query, tiny_instance.dataset(1), full)  # raises
        assert not state.replicas.has(0, good)
        assert state.nodes[good].allocated_ghz == 0.0
        assert state.nodes[good].allocation_tags() == ()
        # The pre-transaction filler allocation survives the rollback.
        assert state.nodes[full].allocation_tags() == ("filler",)

    def test_nested_state_unaffected_before_transaction(self, tiny_instance):
        state = ClusterState(tiny_instance)
        pre = state.serve(
            tiny_instance.query(0),
            tiny_instance.dataset(0),
            tiny_instance.dataset(0).origin_node,
        )
        with state.transaction():
            state.serve(
                tiny_instance.query(2),
                tiny_instance.dataset(1),
                tiny_instance.dataset(1).origin_node,
            )
        # Pre-transaction allocation survives the rollback.
        assert (pre.query_id, pre.dataset_id) in [
            tag for n in state.nodes.values() for tag in n.allocation_tags()
        ]


class TestLiveness:
    def test_fresh_state_all_up(self, tiny_instance):
        state = ClusterState(tiny_instance)
        assert not state.has_down_nodes
        assert state.down_nodes() == frozenset()
        assert all(state.is_up(v) for v in tiny_instance.placement_nodes)
        assert state.up_mask().all()
        assert state.has_live_copy(0)

    def test_mark_down_then_up(self, tiny_instance):
        state = ClusterState(tiny_instance)
        node = tiny_instance.placement_nodes[4]
        state.mark_down(node)
        assert not state.is_up(node)
        assert state.down_nodes() == frozenset({node})
        idx = tiny_instance.node_index[node]
        assert not state.up_mask()[idx]
        state.mark_up(node)
        assert state.is_up(node)
        assert not state.has_down_nodes

    def test_double_crash_rejected(self, tiny_instance):
        state = ClusterState(tiny_instance)
        node = tiny_instance.placement_nodes[4]
        state.mark_down(node)
        with pytest.raises(ValueError, match="already down"):
            state.mark_down(node)

    def test_mark_up_requires_down(self, tiny_instance):
        state = ClusterState(tiny_instance)
        with pytest.raises(ValueError, match="not down"):
            state.mark_up(tiny_instance.placement_nodes[4])

    def test_unknown_node_rejected(self, tiny_instance):
        state = ClusterState(tiny_instance)
        with pytest.raises(ValueError, match="unknown"):
            state.mark_down(-1)

    def test_down_node_cannot_serve(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        node = tiny_instance.placement_nodes[4]
        assert state.can_serve(query, dataset, node)
        state.mark_down(node)
        assert not state.can_serve(query, dataset, node)
        with pytest.raises(CapacityError, match="down"):
            state.serve(query, dataset, node)

    def test_no_live_copy_blocks_fresh_replica(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        state.mark_down(dataset.origin_node)  # the only copy
        other = tiny_instance.placement_nodes[4]
        assert not state.has_live_copy(0)
        assert not state.can_serve(query, dataset, other)
        with pytest.raises(ReplicaError, match="live copy"):
            state.serve(query, dataset, other)

    def test_surviving_replica_keeps_dataset_serveable(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        node = tiny_instance.placement_nodes[4]
        assignment = state.serve(query, dataset, node)  # clones a replica
        state.release(assignment)
        state.mark_down(dataset.origin_node)
        assert state.has_live_copy(0)
        assert state.can_serve(query, dataset, node)

    def test_can_serve_mask_consistent_under_faults(self, tiny_instance):
        state = ClusterState(tiny_instance)
        state.mark_down(tiny_instance.dataset(0).origin_node)
        state.mark_down(tiny_instance.placement_nodes[4])
        for q in tiny_instance.queries:
            for d_id in q.demanded:
                d = tiny_instance.dataset(d_id)
                mask = state.can_serve_mask(q, d)
                for i, v in enumerate(tiny_instance.placement_nodes):
                    assert mask[i] == state.can_serve(q, d, v)

    def test_evict_allocations(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        node = tiny_instance.placement_nodes[4]
        state.serve(query, dataset, node)
        tags = state.evict_allocations(node)
        assert tags == ((0, 0),)
        assert state.nodes[node].allocated_ghz == 0.0

    def test_drop_replicas_keeps_origin(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        node = tiny_instance.placement_nodes[4]
        state.serve(query, dataset, node)
        assert state.drop_replicas(node) == (0,)
        assert not state.replicas.has(0, node)
        # The origin's ledger entry is never dropped.
        assert state.drop_replicas(dataset.origin_node) == ()
        assert state.replicas.has(0, dataset.origin_node)


class TestReporting:
    def test_total_allocated(self, tiny_instance):
        state = ClusterState(tiny_instance)
        q = tiny_instance.query(0)
        d = tiny_instance.dataset(0)
        state.serve(q, d, d.origin_node)
        assert state.total_allocated() == pytest.approx(
            state.compute_demand(q, d)
        )

    def test_utilization_by_node(self, tiny_instance):
        state = ClusterState(tiny_instance)
        utils = state.utilization_by_node()
        assert set(utils) == set(tiny_instance.placement_nodes)
        assert all(u == 0.0 for u in utils.values())


class TestRollbackLiveness:
    """Transaction rollback interleaved with crash eviction.

    A snapshot taken *before* a crash must not resurrect what the crash
    evicted: rollback re-applies the liveness cleanup for every node that
    is down at rollback time.
    """

    def test_rollback_does_not_resurrect_evicted_allocations(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        victim = dataset.origin_node
        state.serve(query, dataset, victim)
        with state.transaction():
            # Crash arrives while an admission transaction is open.
            state.mark_down(victim)
            state.evict_allocations(victim)
            state.drop_replicas(victim)
            # no commit: the admission aborts
        assert not state.is_up(victim)  # liveness itself is not transactional
        assert state.nodes[victim].allocation_tags() == ()
        assert state.nodes[victim].allocated_ghz == 0.0
        state.check_invariants()

    def test_rollback_does_not_resurrect_dropped_replicas(self, tiny_instance):
        state = ClusterState(tiny_instance)
        dataset = tiny_instance.dataset(0)
        copy_node = next(
            v for v in tiny_instance.placement_nodes if v != dataset.origin_node
        )
        state.replicas.place(0, copy_node)
        with state.transaction():
            state.mark_down(copy_node)
            state.evict_allocations(copy_node)
            state.drop_replicas(copy_node)
        assert not state.replicas.has(0, copy_node)
        state.check_invariants()

    def test_committed_work_on_up_nodes_survives_crash_cleanup(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        safe = tiny_instance.placement_nodes[4]
        victim = tiny_instance.placement_nodes[5]
        state.mark_down(victim)
        with state.transaction() as txn:
            a = state.serve(query, dataset, safe)
            txn.commit()
        assert state.replicas.has(0, safe)
        state.check_invariants([a])


class TestCheckInvariants:
    def test_clean_state_passes(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        a = state.serve(query, dataset, dataset.origin_node)
        state.check_invariants([a], deadlines={0: query.deadline_s})

    def test_detects_corrupt_ledger_total(self, tiny_instance):
        state = ClusterState(tiny_instance)
        node = tiny_instance.placement_nodes[4]
        state.nodes[node]._total = 1.0  # corrupt the running total
        with pytest.raises(InvariantViolation, match="ledger"):
            state.check_invariants()

    def test_detects_over_replication(self, tiny_instance):
        state = ClusterState(tiny_instance)
        nodes = [
            v
            for v in tiny_instance.placement_nodes
            if v != tiny_instance.dataset(0).origin_node
        ]
        for v in nodes[: tiny_instance.max_replicas]:  # one past the bound
            state.replicas._locations[0].add(v)
        with pytest.raises(InvariantViolation, match="copies"):
            state.check_invariants()

    def test_detects_lost_origin(self, tiny_instance):
        state = ClusterState(tiny_instance)
        origin = tiny_instance.dataset(0).origin_node
        state.replicas._locations[0].discard(origin)
        with pytest.raises(InvariantViolation, match="origin"):
            state.check_invariants()

    def test_detects_allocation_on_down_node(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        node = dataset.origin_node
        state.serve(query, dataset, node)
        state._down.add(node)  # bypass mark_down's eviction on purpose
        with pytest.raises(InvariantViolation, match="down"):
            state.check_invariants()

    def test_detects_missing_inflight_backing(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        a = state.serve(query, dataset, dataset.origin_node)
        state.release(a)
        with pytest.raises(InvariantViolation):
            state.check_invariants([a])

    def test_detects_deadline_violation(self, tiny_instance):
        state = ClusterState(tiny_instance)
        query = tiny_instance.query(0)
        dataset = tiny_instance.dataset(0)
        a = state.serve(query, dataset, dataset.origin_node)
        with pytest.raises(InvariantViolation, match="deadline"):
            state.check_invariants([a], deadlines={0: a.latency_s / 2.0})
