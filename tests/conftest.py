"""Shared test fixtures: canonical small topologies, workloads, instances."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

# CI runs every Hypothesis suite derandomized (HYPOTHESIS_PROFILE=ci):
# examples are derived from the test body alone, so a red run reproduces
# locally with the same env var instead of chasing a lost seed.
settings.register_profile("ci", derandomize=True, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

from repro.core.instance import ProblemInstance
from repro.core.types import Dataset, Query
from repro.topology.twotier import EdgeCloudTopology, TwoTierConfig, generate_two_tier
from repro.util.rng import spawn_rng
from repro.workload.params import PaperDefaults
from repro.workload.queries import generate_workload

SMALL_TOPOLOGY = TwoTierConfig(
    num_data_centers=2,
    num_cloudlets=6,
    num_switches=2,
    num_base_stations=2,
)


@pytest.fixture(scope="session")
def paper_topology() -> EdgeCloudTopology:
    """The paper's base topology (6 DC, 24 CL, 2 SW), fixed seed."""
    return generate_two_tier(seed=1)


@pytest.fixture(scope="session")
def small_topology() -> EdgeCloudTopology:
    """A small topology for fast exact/feasibility tests."""
    return generate_two_tier(SMALL_TOPOLOGY, seed=2)


@pytest.fixture(scope="session")
def paper_instance(paper_topology) -> ProblemInstance:
    """Default-parameter workload on the paper topology."""
    return generate_workload(paper_topology, spawn_rng(1, "wl"), PaperDefaults())


@pytest.fixture(scope="session")
def special_instance(paper_topology) -> ProblemInstance:
    """Single-dataset-per-query workload (the -S algorithms' regime)."""
    return generate_workload(
        paper_topology, spawn_rng(1, "wl-s"), PaperDefaults().single_dataset()
    )


@pytest.fixture()
def tiny_instance(small_topology) -> ProblemInstance:
    """A hand-built 2-dataset / 3-query instance with generous deadlines."""
    placement = small_topology.placement_nodes
    datasets = {
        0: Dataset(dataset_id=0, volume_gb=2.0, origin_node=placement[0], name="S0"),
        1: Dataset(dataset_id=1, volume_gb=4.0, origin_node=placement[1], name="S1"),
    }
    queries = [
        Query(
            query_id=0,
            home_node=placement[2],
            demanded=(0,),
            selectivity=(0.5,),
            compute_rate=1.0,
            deadline_s=10.0,
        ),
        Query(
            query_id=1,
            home_node=placement[3],
            demanded=(0, 1),
            selectivity=(0.5, 0.8),
            compute_rate=1.0,
            deadline_s=10.0,
        ),
        Query(
            query_id=2,
            home_node=placement[2],
            demanded=(1,),
            selectivity=(0.9,),
            compute_rate=1.2,
            deadline_s=10.0,
        ),
    ]
    return ProblemInstance(
        topology=small_topology,
        datasets=datasets,
        queries=queries,
        max_replicas=2,
    )
